#!/usr/bin/env python
"""Sharded-serving demo: 4 workers, one seeded crash, full recovery.

Run:
    python examples/serve_demo.py [--points 3000] [--dims 16] \
                                  [--out serve_trace.jsonl]

The script reduces a synthetic dataset, splits it across 4 forked shard
workers (each booting through checkpoint+WAL recovery), and streams KNN
batches through the scatter-gather router.  Shard 2's worker is seeded
to SIGKILL itself mid-stream; the router detects the lost connection,
respawns the worker from its snapshot+WAL, retries, and keeps returning
answers bit-identical to the single-node index throughout.  It then
prints the per-shard health/breaker report and the stitched cross-worker
trace report.  Inspect the trace later with:

    python -m repro.obs.report serve_trace.jsonl
"""

import argparse

import numpy as np

from repro.bench.spec import INDEX_SCHEMES
from repro.data import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.obs.export import read_jsonl
from repro.obs.report import render_report
from repro.obs.tracer import Tracer
from repro.reduction import MMDRReducer
from repro.serve import (
    Router,
    RouterConfig,
    ShardPlanner,
    Supervisor,
    WorkerFaultSpec,
)
from repro.serve.planner import mode_for_scheme
from repro.serve.router import canonicalize_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=3000)
    parser.add_argument("--dims", type=int, default=16)
    parser.add_argument("--scheme", default="iMMDR",
                        choices=sorted(INDEX_SCHEMES))
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--root", default="serve_demo_cluster")
    parser.add_argument("--out", default="serve_trace.jsonl")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=args.dims,
        n_clusters=3,
        retained_dims=4,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    dataset = generate_correlated_clusters(spec, rng)
    reduced = MMDRReducer().reduce(dataset.points, rng)
    workload = sample_queries(dataset.points, 10, rng, k=8)
    print(
        f"dataset: {dataset.n_points} x {dataset.dimensionality}, "
        f"scheme {args.scheme}, {args.shards} shards"
    )

    # Single-node ground truth the merged answers must match exactly.
    single = INDEX_SCHEMES[args.scheme](reduced).knn_batch(
        workload.queries, workload.k
    )
    truth = canonicalize_rows(single.ids, single.distances)

    mode = mode_for_scheme(args.scheme)
    plan = ShardPlanner(args.shards, mode).plan(reduced)
    print(plan.describe())

    supervisor = Supervisor(plan, args.scheme, args.root)
    # Shard 2's worker SIGKILLs itself on its 3rd request — mid-stream.
    supervisor.set_fault_spec(2, WorkerFaultSpec(kill_on_request=3))
    router = Router(supervisor, RouterConfig(deadline_s=15.0))
    supervisor.start()
    tracer = Tracer()
    try:
        for batch in range(args.batches):
            result = router.knn(workload.queries, workload.k, tracer=tracer)
            merged = canonicalize_rows(result.ids, result.distances)
            exact = np.array_equal(merged[0], truth[0]) and np.array_equal(
                merged[1], truth[1]
            )
            print(
                f"batch {batch}: shards={result.shards_answered} "
                f"partial={result.partial} "
                f"exact_vs_single_node={exact} "
                f"wall={result.wall_seconds * 1e3:.1f}ms"
            )

        print("\nper-shard health / breaker report:")
        for sid, info in sorted(router.check_health().items()):
            print(
                f"  shard {sid}: alive={info['alive']} "
                f"responsive={info['responsive']} "
                f"breaker={info['breaker']} spawns={info['spawns']} "
                f"live_count={info['live_count']}"
            )

        counters = router.metrics.counters
        ladder = {
            name: c.value
            for name, c in sorted(counters.items())
            if name.startswith("serve.") and c.value
        }
        print("\nladder counters:", ladder)
    finally:
        router.close()

    n_records = tracer.export_jsonl(args.out)
    print(f"\nwrote {n_records} stitched trace records to {args.out}\n")
    print(render_report(read_jsonl(args.out)))


if __name__ == "__main__":
    main()
