#!/usr/bin/env python
"""Trace demo: instrument an MMDR fit + a KNN query batch end to end.

Run:
    python examples/trace_demo.py [--points 4000] [--dims 32] \
                                  [--out trace.jsonl]

The script fits MMDR with a tracer attached (per-level Generate-Ellipsoid
spans, per-iteration elliptical k-means spans with activity-counter freeze
counts, Dimensionality-Optimization phase timing), builds the extended
iDistance, runs a query workload with the same tracer (per-radius-expansion
and per-partition-probe spans, each carrying its own page-read delta), then
writes everything to a JSONL trace and prints the aggregated per-span
report.  Inspect the file later with:

    python -m repro.obs.report trace.jsonl
"""

import argparse

import numpy as np

from repro import MMDR, ExtendedIDistance, Tracer
from repro.data import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.eval.harness import run_query_batch
from repro.obs.export import read_jsonl
from repro.obs.report import render_report
from repro.reduction import model_to_reduced


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=4000)
    parser.add_argument("--dims", type=int, default=32)
    parser.add_argument("--clusters", type=int, default=3)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="trace.jsonl")
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=args.dims,
        n_clusters=args.clusters,
        retained_dims=6,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    dataset = generate_correlated_clusters(spec, rng)
    print(
        f"dataset: {dataset.n_points} points x {dataset.dimensionality} "
        f"dims, {args.clusters} hidden clusters"
    )

    tracer = Tracer()

    # --- traced MMDR fit ----------------------------------------------
    model = MMDR().fit(dataset.points, rng, tracer=tracer)
    print(
        f"MMDR: {model.n_subspaces} subspaces, dims {model.reduced_dims()},"
        f" coverage {model.coverage():.1%}, {len(tracer.spans)} spans so far"
    )

    # --- traced query batch -------------------------------------------
    index = ExtendedIDistance(model_to_reduced(model))
    workload = sample_queries(
        dataset.points, args.queries, rng, k=10
    )
    cost = run_query_batch(index, workload, tracer=tracer)
    print(
        f"batch: {cost.n_queries} queries, {cost.mean_page_reads:.1f} mean "
        f"page reads, {cost.mean_distance_computations:.0f} mean distance "
        f"computations"
    )

    # --- export + report ----------------------------------------------
    n_records = tracer.export_jsonl(args.out)
    print(f"\nwrote {n_records} records to {args.out}\n")
    print(render_report(read_jsonl(args.out)))


if __name__ == "__main__":
    main()
