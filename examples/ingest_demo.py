#!/usr/bin/env python
"""Continuous-ingestion demo: drift trigger, reorg, mid-swap crash drill.

Run:
    python examples/ingest_demo.py [--points 500] [--dims 8] \
                                   [--scheme iMMDR] [--root ingest_demo_run]

The script bulk-builds generation 1 of an ingestion pipeline from a
synthetic clustered dataset, then streams mutation batches whose inserts
sit *off* the fitted subspaces — the live mean projection error climbs
away from the bulk-build baseline until the drift trigger fires and the
pipeline re-clusters the live set into generation 2, swapping it in with
one atomic ``CURRENT`` pointer replace (queries never block).

It then runs a crash drill: a forked child repeats the workload and is
SIGKILLed in the middle of the swap sequence (an armed
:class:`~repro.ingest.SwapCrashPoint` marks the spot); the parent
reopens the store and prints the recovery report, showing a landing on
exactly one generation — old or new, never a hybrid.  Without ``fork``
the drill degrades to an in-process simulated crash.
"""

import argparse
import os
import signal

import numpy as np

from repro.data import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.ingest import (
    INGEST_SCHEMES,
    IngestPipeline,
    SwapCrashPoint,
    batch_fingerprint,
)
from repro.ingest.generation import CrashError
from repro.reduction import MMDRReducer


def drift_stream(points, reduce_fn, n_inserts, rng):
    """Inserts at cluster members pushed off their fitted subspace —
    in-plane keys stay valid while the projection residual grows."""
    subspaces = reduce_fn(points).subspaces
    n = points.shape[0]
    ops = []
    for i in range(n_inserts):
        sub = subspaces[i % len(subspaces)]
        member = points[int(sub.member_ids[i % sub.member_ids.size])]
        jitter = rng.normal(0.0, 1.0, points.shape[1])
        jitter -= sub.basis @ (sub.basis.T @ jitter)
        jitter *= 0.15 / np.linalg.norm(jitter)
        ops.append(("insert", member + jitter, n + i, 5.0))
    ops += [("delete", rid) for rid in range(max(2, n // 50))]
    return ops


def run_stream(root, points, ops, reduce_fn, scheme, queries, k):
    """The live leg: batched mutations, auto reorg on drift."""
    pipe, boot = IngestPipeline.create(
        root, points, reduce_fn, scheme, auto_reorg=True
    )
    print(
        f"generation {boot.generation} online: "
        f"{pipe.n_live} live vectors, committed_seq={boot.committed_seq}"
    )
    try:
        batch = max(1, len(ops) // 4)
        for start in range(0, len(ops), batch):
            chunk = ops[start:start + batch]
            trigger = pipe.apply_batch(chunk, label="demo_stream")
            worst = max(trigger.scores.values(), default=0.0)
            print(
                f"batch of {len(chunk)}: generation={pipe.generation} "
                f"drift_max={worst:.3f} fired={trigger.fired}"
            )
        for report in pipe.reorg_reports:
            print(
                f"reorg: gen {report.old_generation} -> "
                f"{report.new_generation} over {report.n_points} points, "
                f"{report.swap_writes} guarded writes, drift "
                f"{report.drift_before:.3f} -> {report.drift_after:.3f} "
                f"({report.wall_seconds * 1e3:.0f}ms)"
            )
            for reason in report.reasons:
                print(f"  trigger: {reason}")
        result = pipe.knn_batch(queries, k)
        return batch_fingerprint(result.ids, result.distances)
    finally:
        pipe.close()


def _build_and_crash(root, points, ops, reduce_fn, scheme, at_write):
    """Child body: repeat the workload, die mid-swap."""
    pipe, _ = IngestPipeline.create(
        root, points, reduce_fn, scheme, auto_reorg=False
    )
    for op in ops:
        pipe.apply(op)
    pipe.store.crashpoint = SwapCrashPoint(
        pipe.store.physical_writes + at_write, "after"
    )
    try:
        pipe.reorg()
    except CrashError:
        # A real crash, not an exception unwind: no flush, no atexit.
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(2)  # crashpoint never fired


def crash_drill(root, points, ops, reduce_fn, scheme, queries, k,
                at_write=6):
    print(f"\ncrash drill: SIGKILL at guarded write +{at_write} of the swap")
    if hasattr(os, "fork"):
        pid = os.fork()
        if pid == 0:
            _build_and_crash(root, points, ops, reduce_fn, scheme, at_write)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status), "child exited instead of crashing"
        print(f"child killed by signal {os.WTERMSIG(status)} mid-swap")
    else:  # pragma: no cover - non-fork platforms
        try:
            _build_and_crash(root, points, ops, reduce_fn, scheme, at_write)
        except SystemExit:
            pass
        print("(no fork: simulated the crash in-process)")

    recovered, report = IngestPipeline.open(
        root, reduce_fn=reduce_fn, scheme=scheme, auto_reorg=False
    )
    try:
        result = recovered.knn_batch(queries, k)
        fp = batch_fingerprint(result.ids, result.distances)
    finally:
        recovered.close()
    print(
        f"recovered to generation {report.generation}: "
        f"committed_seq={report.committed_seq} "
        f"ops_replayed={report.ops_replayed} "
        f"oplog_dropped={report.oplog_dropped} "
        f"garbage_collected={list(report.generations_collected)}"
    )
    return report.generation, fp


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=500)
    parser.add_argument("--dims", type=int, default=8)
    parser.add_argument("--inserts", type=int, default=60)
    parser.add_argument("--scheme", default="iMMDR",
                        choices=sorted(INGEST_SCHEMES))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--root", default="ingest_demo_run")
    args = parser.parse_args()

    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=args.dims,
        n_clusters=2,
        retained_dims=2,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    points = generate_correlated_clusters(
        spec, np.random.default_rng(args.seed)
    ).points

    def reduce_fn(p):
        return MMDRReducer().reduce(p, np.random.default_rng(0))

    workload = sample_queries(
        points, 6, np.random.default_rng(5), k=5, method="perturbed"
    )
    ops = drift_stream(
        points, reduce_fn, args.inserts, np.random.default_rng(1234)
    )
    print(
        f"dataset: {args.points} x {args.dims}, scheme {args.scheme}, "
        f"{len(ops)} streamed mutations"
    )

    live_fp = run_stream(
        os.path.join(args.root, "live"), points, ops, reduce_fn,
        args.scheme, workload.queries, workload.k,
    )
    print(f"post-reorg answer fingerprint: {live_fp}")

    generation, fp = crash_drill(
        os.path.join(args.root, "crashed"), points, ops, reduce_fn,
        args.scheme, workload.queries, workload.k,
    )
    print(
        f"crash drill landed on generation {generation} with "
        f"fingerprint {fp} — exactly one generation, no hybrid"
    )


if __name__ == "__main__":
    main()
