#!/usr/bin/env python
"""Side-by-side comparison of MMDR vs LDR vs GDR, end to end.

Reproduces a one-row slice of the paper's evaluation on a single synthetic
dataset: reduction quality (precision at a fixed retained dimensionality)
and the downstream index costs of the Figure 9/10 schemes.

Run:
    python examples/compare_reduction_methods.py [--points 20000] [--dim 20]
"""

import argparse

import numpy as np

from repro import GDRReducer, LDRReducer, MMDRReducer
from repro.data import SyntheticSpec, generate_correlated_clusters, sample_queries
from repro.eval import (
    compare_index_schemes,
    exact_knn,
    format_table,
    precision_at_k,
    reduced_knn,
)
from repro.reduction.base import retarget_dimensionality


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=20,
                        help="retained dimensionality for the comparison")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=64,
        n_clusters=6,
        retained_dims=10,
        variance_r=0.2,
        variance_e=0.012,
        noise_fraction=0.005,
    )
    data = generate_correlated_clusters(spec, rng).points
    workload = sample_queries(data, 50, rng, k=10)
    truth = exact_knn(data, workload.queries, workload.k)

    # --- reduction quality --------------------------------------------
    print(f"precision at {args.dim} retained dimensions:")
    reductions = {}
    rows = []
    for reducer in (MMDRReducer(), LDRReducer(), GDRReducer()):
        base = reducer.reduce(data, np.random.default_rng(args.seed))
        at_dim = retarget_dimensionality(data, base, args.dim)
        reductions[reducer.name] = at_dim
        precision = precision_at_k(
            truth, reduced_knn(at_dim, workload.queries, workload.k)
        )
        rows.append(
            (reducer.name, precision, at_dim.n_subspaces,
             at_dim.outliers.size)
        )
    print(format_table(["method", "precision", "subspaces", "outliers"], rows))

    # --- index costs (Figure 9/10 panel) -------------------------------
    panel = compare_index_schemes(
        reductions["MMDR"], reductions["LDR"], workload
    )
    print("\nper-query index costs (cold cache):")
    print(
        format_table(
            ["scheme", "pages/query", "ms/query", "dist comps/query"],
            [
                (
                    label,
                    f"{cost.mean_page_reads:.0f}",
                    f"{cost.mean_cpu_seconds * 1000:.2f}",
                    f"{cost.mean_distance_computations:.0f}",
                )
                for label, cost in panel.items()
            ],
        )
    )
    print(
        "\nreading guide: iMMDR/iLDR are the paper's extended iDistance on "
        "the MMDR/LDR reductions; gLDR is one Hybrid tree per LDR cluster; "
        "SeqScan reads every reduced page."
    )


if __name__ == "__main__":
    main()
