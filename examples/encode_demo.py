#!/usr/bin/env python
"""Approximate speed tier demo: PQ code scan + exact rerank.

Run:
    python examples/encode_demo.py [--points 8000] [--dims 48]

The script builds the extended iDistance over an MMDR reduction,
attaches a per-partition PQ code layer, then sweeps ``rerank_depth``
and prints recall@K against exact answers next to the logical costs
(cold page reads, distance evaluations) of each setting — the
recall/cost trade-off table from EXPERIMENTS.md, reproduced live.
It finishes with the explain view of one approximate query, showing
where the scan and the rerank each spent their pages.
"""

import argparse

import numpy as np

from repro.data import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.encode import EncoderConfig
from repro.index.idistance import ExtendedIDistance
from repro.obs.explain import render_explain
from repro.reduction import MMDRReducer


def recall_at_k(reference: np.ndarray, got: np.ndarray) -> float:
    total = 0.0
    for ref_row, got_row in zip(reference, got):
        live = ref_row[ref_row >= 0]
        total += (
            1.0
            if live.size == 0
            else np.intersect1d(live, got_row).size / live.size
        )
    return total / reference.shape[0]


def run_mode(index, workload, **knn_kwargs):
    ids, pages, dists = [], 0, 0
    for query in workload.queries:
        index.reset_cache()
        result = index.knn(query, workload.k, **knn_kwargs)
        ids.append(result.ids)
        pages += result.stats.page_reads
        dists += result.stats.distance_computations
    return np.vstack(ids), pages, dists


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8000)
    parser.add_argument("--dims", type=int, default=48)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=args.dims,
        n_clusters=4,
        retained_dims=6,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    dataset = generate_correlated_clusters(
        spec, np.random.default_rng(args.seed)
    )
    reduced = MMDRReducer().reduce(
        dataset.points, np.random.default_rng(0)
    )
    index = ExtendedIDistance(reduced)
    workload = sample_queries(
        dataset.points, args.queries, np.random.default_rng(1),
        k=args.k, method="perturbed",
    )

    layer = index.attach_encoder(
        EncoderConfig(n_subquantizers=4, codebook_size=16), seed=11
    )
    info = layer.describe()
    print(
        f"encoder: {info['partitions']} partition codebooks, "
        f"{info['codes']} codes on {info['code_pages']} pages "
        f"({info['n_subquantizers']} blocks x "
        f"{info['codebook_size']}-row codebooks)"
    )

    exact_ids, exact_pages, exact_dists = run_mode(index, workload)
    print(
        f"\nexact:    pages={exact_pages:6d}  dists={exact_dists:8d}  "
        f"recall=1.0000 (reference)"
    )
    for depth in (1, 2, 4, 8, 16):
        ids, pages, dists = run_mode(
            index, workload, mode="approx", rerank_depth=depth
        )
        print(
            f"depth {depth:2d}: pages={pages:6d}  dists={dists:8d}  "
            f"recall={recall_at_k(exact_ids, ids):.4f}"
        )

    print("\nexplain (mode='approx', scan vs rerank attribution):")
    print(render_explain(index.explain(workload.queries[0], args.k,
                                       mode="approx")))


if __name__ == "__main__":
    main()
