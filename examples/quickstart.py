#!/usr/bin/env python
"""Quickstart: reduce a correlated high-dimensional dataset with MMDR and
answer KNN queries through the extended iDistance.

Run:
    python examples/quickstart.py [--points 8000] [--dims 48]

The script generates an Appendix-A style dataset (elliptical clusters in
rotated subspaces plus a pinch of noise), fits MMDR, prints the discovered
subspace inventory, builds the single-B+-tree index, and compares a few
query answers against exact search.
"""

import argparse

import numpy as np

from repro import MMDR, ExtendedIDistance, model_to_reduced
from repro.data import SyntheticSpec, generate_correlated_clusters
from repro.eval import exact_knn


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8000)
    parser.add_argument("--dims", type=int, default=48)
    parser.add_argument("--clusters", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=args.dims,
        n_clusters=args.clusters,
        retained_dims=6,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    dataset = generate_correlated_clusters(spec, rng)
    print(
        f"dataset: {dataset.n_points} points x {dataset.dimensionality} dims,"
        f" {args.clusters} hidden elliptical clusters"
    )

    # --- 1. discover elliptical subspaces -----------------------------
    model = MMDR().fit(dataset.points, rng)
    print("\n" + model.summary())
    print(f"fit took {model.stats.fit_seconds:.2f}s")

    # --- 2. index every subspace in one B+-tree -----------------------
    index = ExtendedIDistance(model_to_reduced(model))
    print(
        f"\nextended iDistance: {len(index.partitions)} partitions, "
        f"{index.size_pages} pages, stretch constant c={index.c:.3f}"
    )

    # --- 3. query ------------------------------------------------------
    queries = dataset.points[rng.choice(dataset.n_points, 5, replace=False)]
    truth = exact_knn(dataset.points, queries, 10)
    print("\n10-NN for 5 sample queries (index vs exact):")
    for qi, query in enumerate(queries):
        index.reset_cache()
        result = index.knn(query, 10)
        overlap = len(set(result.ids.tolist()) & set(truth[qi].tolist()))
        print(
            f"  query {qi}: {overlap}/10 true neighbors, "
            f"{result.stats.page_reads} page reads, "
            f"{result.stats.distance_computations} distance computations"
        )


if __name__ == "__main__":
    main()
