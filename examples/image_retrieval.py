#!/usr/bin/env python
"""Content-based image retrieval over (simulated) Corel color histograms.

This mirrors the paper's motivating application: 64-dimensional color
histograms, 10-NN retrieval.  The script fits all three reducers (MMDR,
LDR, GDR), measures retrieval precision against exact search, and shows the
per-query index cost for the winner.

Run:
    python examples/image_retrieval.py [--images 14000]
"""

import argparse

import numpy as np

from repro import ExtendedIDistance, GDRReducer, LDRReducer, MMDRReducer
from repro.data import ColorHistogramSpec, generate_color_histograms, sample_queries
from repro.eval import evaluate_precision, format_table, run_query_batch
from repro.reduction.base import retarget_dimensionality


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=14_000)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument(
        "--dim", type=int, default=20,
        help="retained dimensionality for retrieval (paper Fig. 8b "
        "protocol: memberships come from each method's own rules, the "
        "representation width is fixed for comparability)",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    spec = ColorHistogramSpec(n_images=args.images)
    histograms = generate_color_histograms(spec, rng)
    print(
        f"image collection: {histograms.shape[0]} histograms x "
        f"{histograms.shape[1]} bins "
        f"({(histograms == 0).mean():.0%} of attributes exactly zero)"
    )
    workload = sample_queries(histograms, args.queries, rng, k=10)

    rows = []
    reductions = {}
    for reducer in (MMDRReducer(), LDRReducer(), GDRReducer()):
        base = reducer.reduce(histograms, np.random.default_rng(args.seed))
        reduced = retarget_dimensionality(histograms, base, args.dim)
        reductions[reducer.name] = reduced
        report = evaluate_precision(histograms, reduced, workload)
        rows.append(
            (
                report.method,
                report.precision,
                report.n_subspaces,
                f"{report.outlier_fraction:.1%}",
                f"{report.mean_reduced_dim:.1f}",
            )
        )
    print(f"\nretrieval precision at {args.dim} retained dims "
          "(10-NN, 100% = exact search):")
    print(
        format_table(
            ["method", "precision", "subspaces", "outliers", "mean d_r"],
            rows,
        )
    )

    best = max(rows, key=lambda r: r[1])[0]
    index = ExtendedIDistance(reductions[best])
    cost = run_query_batch(index, workload)
    print(
        f"\nextended iDistance on the {best} reduction: "
        f"{cost.mean_page_reads:.0f} pages/query, "
        f"{cost.mean_cpu_seconds * 1000:.2f} ms/query"
    )


if __name__ == "__main__":
    main()
