#!/usr/bin/env python
"""Scalable MMDR on a dataset 'larger than the buffer' (§4.3).

Demonstrates the data-stream variant: the dataset is processed in ε·N-sized
chunks, only small ellipsoids' centroids are kept between chunks, and the
bulk data is scanned sequentially a constant number of times.  The script
compares the streamed model against the in-memory fit and reports the
sequential I/O both incur.

Run:
    python examples/streaming_large_dataset.py [--points 50000]
"""

import argparse

import numpy as np

from repro import MMDR, MMDRConfig, ScalableMMDR
from repro.data import SyntheticSpec, generate_correlated_clusters
from repro.eval import format_table
from repro.storage import CostCounters
from repro.storage.pager import pages_for_vectors


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=50_000)
    parser.add_argument("--dims", type=int, default=64)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    spec = SyntheticSpec(
        n_points=args.points,
        dimensionality=args.dims,
        n_clusters=6,
        retained_dims=8,
        variance_r=0.25,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    data = generate_correlated_clusters(spec, rng).points
    dataset_pages = pages_for_vectors(args.points, args.dims)
    print(
        f"dataset: {args.points} x {args.dims} "
        f"(~{dataset_pages} pages, {dataset_pages * 4 // 1024} MiB)"
    )

    rows = []
    for label, fitter in [
        ("in-memory MMDR", MMDR(MMDRConfig())),
        ("Scalable MMDR", ScalableMMDR(MMDRConfig())),
    ]:
        counters = CostCounters()
        model = fitter.fit(data, np.random.default_rng(args.seed), counters)
        rows.append(
            (
                label,
                f"{model.stats.fit_seconds:.2f}s",
                model.n_subspaces,
                model.outliers.size,
                counters.sequential_reads,
                model.stats.streams_processed or 1,
            )
        )
    print()
    print(
        format_table(
            ["variant", "TRT", "subspaces", "outliers",
             "seq page reads", "streams"],
            rows,
        )
    )
    streamed_reads = rows[1][4]
    print(
        f"\nScalable MMDR read {streamed_reads} pages sequentially ="
        f" {streamed_reads / dataset_pages:.1f} passes over the data —"
        " constant regardless of how many clustering iterations ran,"
        " which is why Figure 11a shows no jump at the buffer limit."
    )


if __name__ == "__main__":
    main()
