"""Snapshot round trips of indexes carrying online inserts/deletes, and
load-then-recover ordering (snapshot as the recovery baseline)."""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.persist import load_index, save_index
from repro.recovery import checkpoint, recover
from repro.reduction.mmdr_adapter import model_to_reduced
from repro.storage.wal import WriteAheadLog

SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return two_cluster_dataset, model_to_reduced(model)


def mutate(index, points, n_bulk):
    """A fixed little update mix: 3 inserts, 2 deletes."""
    rng = np.random.default_rng(31)
    for j in range(3):
        point = points[int(rng.integers(0, len(points)))] + rng.normal(
            0.0, 0.01, points.shape[1]
        )
        index.insert(point, n_bulk + j, beta=0.5)
    for rid in (4, 17):
        index.delete(rid)


def assert_same_answers(a, b, queries, k=5):
    for query in queries:
        ra, rb = a.knn(query, k), b.knn(query, k)
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.distances, rb.distances)


class TestDynamicRoundTrip:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_delta_and_tombstones_survive_round_trip(
        self, scheme, reduced, tmp_path
    ):
        ds, red = reduced
        index = scheme(red)
        mutate(index, ds.points, red.n_points)
        save_index(index, tmp_path / "snap")
        restored = load_index(tmp_path / "snap")

        assert restored.live_count == index.live_count
        assert getattr(restored, "n_inserted") == 3
        assert restored._tombstones == {4, 17}
        if scheme is ExtendedIDistance:
            deltas = [
                p.delta_rids for p in restored.partitions if p.delta_rids
            ]
            assert sum(len(d) for d in deltas) == 3
        else:
            assert len(restored.delta) == 3
            got = [
                np.asarray(v) for v in restored.delta.vectors
            ]
            want = [np.asarray(v) for v in index.delta.vectors]
            assert all(
                np.array_equal(g, w) for g, w in zip(got, want)
            )
        assert_same_answers(index, restored, ds.points[:4])

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_restored_index_keeps_mutating(
        self, scheme, reduced, tmp_path
    ):
        ds, red = reduced
        index = scheme(red)
        mutate(index, ds.points, red.n_points)
        save_index(index, tmp_path / "snap")
        restored = load_index(tmp_path / "snap")
        # deletes of already-deleted rids must still be rejected
        with pytest.raises(KeyError):
            restored.delete(4)
        restored.insert(ds.points[0], red.n_points + 50, beta=0.5)
        restored.delete(25)
        assert restored.live_count == index.live_count  # +1 insert -1 delete

    def test_snapshot_refuses_attached_wal(self, reduced, tmp_path):
        _, red = reduced
        index = ExtendedIDistance(red)
        index.enable_wal(tmp_path / "wal.log")
        with pytest.raises(Exception, match="pickle"):
            save_index(index, tmp_path / "snap")
        index.wal.close()


class TestLoadThenRecoverOrdering:
    """The snapshot is the *baseline*; WAL records after its CHECKPOINT are
    the delta.  Loading the snapshot and then recovering must equal the
    live index that kept mutating — in that order, for every scheme."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_checkpoint_then_updates_then_recover(
        self, scheme, reduced, tmp_path
    ):
        ds, red = reduced
        index = scheme(red)
        wal = WriteAheadLog(tmp_path / "wal.log")
        index.enable_wal(wal)
        checkpoint(index, tmp_path / "ckpt")
        mutate(index, ds.points, red.n_points)
        wal.close()

        recovered, report = recover(tmp_path / "wal.log")
        assert report.snapshot_path == str(tmp_path / "ckpt")
        assert report.committed_txns == 5
        assert report.discarded_txns == 0
        assert sorted(report.committed_kinds) == [
            "delete", "delete", "insert", "insert", "insert"
        ]
        assert recovered.live_count == index.live_count
        assert_same_answers(index, recovered, ds.points[:4])

    def test_recover_without_checkpoint_is_typed_error(self, tmp_path):
        from repro.recovery import RecoveryError

        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(RecoveryError, match="CHECKPOINT"):
            recover(tmp_path / "wal.log")

    def test_recover_missing_log_is_typed_error(self, tmp_path):
        from repro.recovery import RecoveryError

        with pytest.raises(RecoveryError, match="no write-ahead log"):
            recover(tmp_path / "absent.log")

    def test_recovery_is_idempotent(self, reduced, tmp_path):
        """Recovering twice from the same log gives the same index (LSN
        gates make physical redo idempotent; metadata redo restarts from
        the freshly loaded snapshot each time)."""
        ds, red = reduced
        index = ExtendedIDistance(red)
        wal = WriteAheadLog(tmp_path / "wal.log")
        index.enable_wal(wal)
        checkpoint(index, tmp_path / "ckpt")
        mutate(index, ds.points, red.n_points)
        wal.close()

        first, _ = recover(tmp_path / "wal.log")
        second, _ = recover(tmp_path / "wal.log")
        assert first.live_count == second.live_count
        assert_same_answers(first, second, ds.points[:4])
        first.tree.check_invariants()
        second.tree.check_invariants()
