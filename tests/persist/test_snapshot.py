"""Versioned snapshots: round trips, and every corruption mode is typed."""

import json

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.persist import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT_VERSION,
    STATE_NAME,
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotFormatError,
    load_index,
    save_index,
    snapshot_generation,
)
from repro.reduction.mmdr_adapter import model_to_reduced
from repro.storage.pager import PageCorruptionError


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return two_cluster_dataset, model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        8,
        np.random.default_rng(9),
        k=5,
        method="perturbed",
    )


SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_loaded_index_answers_identically(
        self, scheme, reduced, workload, tmp_path
    ):
        _, red = reduced
        index = scheme(red)
        manifest = save_index(index, tmp_path / "snap")
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert manifest["class"] == scheme.__name__
        restored = load_index(tmp_path / "snap")
        assert isinstance(restored, scheme)
        assert restored.size_pages == index.size_pages
        for query in workload.queries:
            index.reset_cache()
            restored.reset_cache()
            a = index.knn(query, workload.k)
            b = restored.knn(query, workload.k)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
            assert a.stats.page_reads == b.stats.page_reads
            assert (
                a.stats.distance_computations
                == b.stats.distance_computations
            )

    def test_round_trip_after_dynamic_insert(
        self, reduced, workload, tmp_path
    ):
        dataset, red = reduced
        index = ExtendedIDistance(red)
        rng = np.random.default_rng(11)
        base = dataset.points[rng.integers(0, dataset.points.shape[0], 5)]
        for j, point in enumerate(base + rng.normal(0, 0.01, base.shape)):
            index.insert(point, red.n_points + j)
        save_index(index, tmp_path / "snap")
        restored = load_index(tmp_path / "snap")
        query = workload.queries[0]
        index.reset_cache()
        restored.reset_cache()
        assert np.array_equal(
            index.knn(query, 5).ids, restored.knn(query, 5).ids
        )

    def test_save_rejects_unknown_class(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            save_index(object(), tmp_path / "snap")


class TestCorruptionDetection:
    # Part of the CI fault-smoke gate: corruption must be *typed*, never
    # silently wrong data (see .github/workflows/ci.yml).
    pytestmark = pytest.mark.fault_smoke

    @pytest.fixture()
    def snapshot(self, reduced, tmp_path):
        _, red = reduced
        save_index(SequentialScan(red), tmp_path / "snap")
        return tmp_path / "snap"

    def test_flipped_payload_byte(self, snapshot):
        state = snapshot / STATE_NAME
        data = bytearray(state.read_bytes())
        data[len(data) // 2] ^= 0x01
        state.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptionError):
            load_index(snapshot)

    def test_truncated_payload(self, snapshot):
        state = snapshot / STATE_NAME
        state.write_bytes(state.read_bytes()[:-10])
        with pytest.raises(SnapshotCorruptionError):
            load_index(snapshot)

    def test_tampered_manifest_field(self, snapshot):
        manifest_path = snapshot / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["n_points"] = 10**9
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotCorruptionError):
            load_index(snapshot)

    def test_unparsable_manifest(self, snapshot):
        (snapshot / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SnapshotCorruptionError):
            load_index(snapshot)

    def test_corruption_error_is_page_corruption(self, snapshot):
        # A tampered snapshot byte and a flipped page bit are the same
        # failure: one except clause may handle both.
        state = snapshot / STATE_NAME
        data = bytearray(state.read_bytes())
        data[0] ^= 0xFF
        state.write_bytes(bytes(data))
        with pytest.raises(PageCorruptionError):
            load_index(snapshot)
        assert issubclass(SnapshotCorruptionError, SnapshotError)


class TestFormatErrors:
    @pytest.fixture()
    def snapshot(self, reduced, tmp_path):
        _, red = reduced
        save_index(SequentialScan(red), tmp_path / "snap")
        return tmp_path / "snap"

    def rewrite_manifest(self, snapshot, **overrides):
        """Tamper a field but restamp the self-checksum, isolating the
        format check under test from corruption detection."""
        from repro.persist.snapshot import (
            _canonical_manifest_bytes,
            _crc32,
        )

        manifest_path = snapshot / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest.update(overrides)
        manifest["manifest_crc32"] = _crc32(
            _canonical_manifest_bytes(manifest)
        )
        manifest_path.write_text(json.dumps(manifest))

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            load_index(tmp_path / "nothing-here")

    def test_missing_payload(self, snapshot):
        (snapshot / STATE_NAME).unlink()
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_unsupported_version(self, snapshot):
        self.rewrite_manifest(snapshot, format_version=99)
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_unknown_class(self, snapshot):
        self.rewrite_manifest(snapshot, **{"class": "EvilIndex"})
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)

    def test_class_payload_mismatch(self, snapshot):
        # Manifest says gLDR, payload holds SeqScan: refused after load.
        self.rewrite_manifest(snapshot, **{"class": "GlobalLDRIndex"})
        with pytest.raises(SnapshotFormatError):
            load_index(snapshot)


class TestGenerationStamp:
    """The manifest's generation tag ties a snapshot to one index
    generation; recovery's cross-check against the WAL reads it via
    :func:`snapshot_generation`."""

    def test_generation_written_and_read_back(self, reduced, tmp_path):
        _, red = reduced
        save_index(SequentialScan(red), tmp_path / "snap", generation=7)
        assert snapshot_generation(tmp_path / "snap") == 7
        loaded = load_index(tmp_path / "snap")  # stamp never blocks loads
        assert loaded.live_count == red.n_points

    def test_ungenerational_snapshot_reads_none(self, reduced, tmp_path):
        _, red = reduced
        save_index(SequentialScan(red), tmp_path / "snap")
        assert snapshot_generation(tmp_path / "snap") is None

    def test_non_integer_generation_is_a_format_error(
        self, reduced, tmp_path
    ):
        _, red = reduced
        save_index(SequentialScan(red), tmp_path / "snap", generation=2)
        helper = TestFormatErrors()
        helper.rewrite_manifest(tmp_path / "snap", generation="two")
        with pytest.raises(SnapshotFormatError):
            snapshot_generation(tmp_path / "snap")
