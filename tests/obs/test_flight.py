"""Flight recorder: bounded memory, logical slow-query classification, and
the never-perturb-the-measurement contract."""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.index.base import QueryStats
from repro.index.seqscan import SequentialScan
from repro.obs.flight import (
    LOGICAL_PAGE_WEIGHT,
    FlightRecorder,
    logical_cost,
)
from repro.reduction.mmdr_adapter import model_to_reduced


def stats(pages=0, dist=0, flops=0, keys=0):
    return QueryStats(
        page_reads=pages,
        distance_computations=dist,
        distance_flops=flops,
        key_comparisons=keys,
        cpu_seconds=0.0,
    )


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        6,
        np.random.default_rng(9),
        k=5,
        method="perturbed",
    )


class TestLogicalCost:
    def test_pages_weighted_by_page_value_count(self):
        s = stats(pages=2, flops=10, keys=5)
        assert logical_cost(s) == 15 + 2 * LOGICAL_PAGE_WEIGHT

    def test_zero_work_is_zero(self):
        assert logical_cost(stats()) == 0


class TestRingBuffer:
    def test_capacity_bounds_retention_not_lifetime(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("s", "knn", stats(flops=i))
        assert rec.total_queries == 5
        assert len(rec.records) == 3
        assert [r.seq for r in rec.records] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_slow_threshold_classifies_and_counts(self):
        rec = FlightRecorder(capacity=8, slow_threshold=100)
        rec.record("s", "knn", stats(flops=99))
        rec.record("s", "knn", stats(flops=100))  # at threshold -> slow
        rec.record("s", "knn", stats(pages=1))
        assert rec.slow_queries == 2
        assert [r.seq for r in rec.slow_records()] == [1, 2]
        assert not rec.records[0].slow

    def test_no_threshold_means_nothing_is_slow(self):
        rec = FlightRecorder(capacity=4)
        rec.record("s", "knn", stats(pages=1000))
        assert rec.slow_queries == 0
        assert rec.slow_records() == []

    def test_top_offenders_cost_desc_then_oldest_first(self):
        rec = FlightRecorder(capacity=8)
        rec.record("s", "knn", stats(flops=5))
        rec.record("s", "knn", stats(flops=9))
        rec.record("s", "knn", stats(flops=5))  # ties with seq 0
        top = rec.top_offenders(3)
        assert [r.seq for r in top] == [1, 0, 2]
        assert rec.top_offenders(1)[0].logical_cost == 9

    def test_summary_and_render(self):
        rec = FlightRecorder(capacity=4, slow_threshold=7)
        rec.record("iDistance", "knn", stats(flops=10), k=3)
        summary = rec.summary()
        assert summary["total_queries"] == 1
        assert summary["slow_queries"] == 1
        assert summary["max_logical_cost"] == 10
        text = rec.render()
        assert "flight recorder:" in text
        assert "iDistance" in text
        assert "(threshold 7)" in text


class TestIndexIntegration:
    def test_knn_loop_records_every_query(self, reduced, workload):
        index = SequentialScan(reduced)
        rec = index.enable_flight_recorder(capacity=16)
        for query in workload.queries:
            index.reset_cache()
            res = index.knn(query, workload.k)
        assert rec.total_queries == workload.n_queries
        last = rec.records[-1]
        assert last.kind == "knn"
        assert last.k == workload.k
        assert last.scheme == index.name
        assert last.page_reads == res.stats.page_reads
        assert last.logical_cost == logical_cost(res.stats)

    def test_batch_fast_path_records_with_batch_kind(
        self, reduced, workload
    ):
        index = SequentialScan(reduced)
        rec = index.enable_flight_recorder(capacity=16)
        index.knn_batch(workload.queries, workload.k)
        assert rec.total_queries == workload.n_queries
        assert all(r.kind == "knn_batch" for r in rec.records)

    def test_recorder_never_perturbs_results_or_accounting(
        self, reduced, workload
    ):
        plain = SequentialScan(reduced)
        recorded = SequentialScan(reduced)
        recorded.enable_flight_recorder(capacity=4, slow_threshold=1)
        a = plain.knn_batch(workload.queries, workload.k)
        b = recorded.knn_batch(workload.queries, workload.k)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)
        for sa, sb in zip(a.stats, b.stats):
            assert sa.page_reads == sb.page_reads
            assert sa.distance_computations == sb.distance_computations
            assert sa.distance_flops == sb.distance_flops
            assert sa.key_comparisons == sb.key_comparisons

    def test_detach_by_clearing_the_attribute(self, reduced, workload):
        index = SequentialScan(reduced)
        rec = index.enable_flight_recorder()
        index.knn(workload.queries[0], workload.k)
        index.flight = None
        index.knn(workload.queries[1], workload.k)
        assert rec.total_queries == 1
