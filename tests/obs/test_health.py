"""Health telemetry: MPE drift, delta/tombstone growth, WAL backlog.

The sampler is the operator's early-warning view of a live index: these
tests pin the gauge arithmetic (the live MPE estimate must match the
closed-form update from the routing residuals), the threshold semantics,
the JSONL export, and the incremental WAL stats it polls.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.obs.health import (
    DEFAULT_THRESHOLDS,
    HealthReport,
    HealthSampler,
    Threshold,
    drift_scores,
    sample_gauges,
)
from repro.reduction.mmdr_adapter import model_to_reduced
from repro.storage.wal import WriteAheadLog


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


class TestGauges:
    def test_fresh_index_is_structurally_clean(self, reduced):
        gauges = sample_gauges(ExtendedIDistance(reduced))
        assert gauges["live_count"] == reduced.n_points
        assert gauges["tombstone_count"] == 0
        assert gauges["tombstone_fraction"] == 0.0
        assert gauges["delta_entries"] == 0
        assert gauges["delta_fraction"] == 0.0
        assert gauges["mpe_drift_max"] == 0.0
        assert "wal_bytes" not in gauges  # no WAL attached
        for i, subspace in enumerate(reduced.subspaces):
            assert gauges[f"mpe_live.p{i}"] == pytest.approx(subspace.mpe)

    def test_live_mpe_follows_routing_residuals(
        self, reduced, two_cluster_dataset, rng
    ):
        index = ExtendedIDistance(reduced)
        for i in range(8):
            noisy = two_cluster_dataset.points[i] + rng.normal(
                0.0, 0.05, reduced.dimensionality
            )
            index.insert(noisy, rid=980_000 + i)
        residuals = index._insert_residuals
        assert residuals, "subspace-routed inserts must record residuals"
        gauges = sample_gauges(index)
        for sidx, (count, total) in residuals.items():
            subspace = reduced.subspaces[sidx]
            expected = (subspace.mpe * subspace.size + total) / (
                subspace.size + count
            )
            assert gauges[f"mpe_live.p{sidx}"] == pytest.approx(expected)
        assert gauges["delta_entries"] == 8
        assert gauges["mpe_drift_max"] >= 0.0

    def test_outlier_insert_records_no_residual(self, reduced):
        index = ExtendedIDistance(reduced)
        index.insert(np.full(reduced.dimensionality, 90.0), rid=970_000)
        assert not getattr(index, "_insert_residuals", {})

    def test_drift_scores_fire_under_a_shifted_insert_distribution(
        self, reduced, two_cluster_dataset, rng
    ):
        # Inserts drawn far from the fitted clusters carry large routing
        # residuals, so the touched partitions' normalized drift must rise
        # well past what in-distribution inserts produce.
        index = ExtendedIDistance(reduced)
        assert drift_scores(index) == {
            i: 0.0 for i in range(len(reduced.subspaces))
        }
        # A modest jitter: large relative to the fitted clusters' tiny
        # projection error, small enough that the points still route into
        # their subspaces (a loosened beta keeps them from falling out as
        # outliers).  Enough of them must land to drag the live MPE —
        # each partition holds ~1000 bulk points diluting the estimate.
        for i in range(80):
            point = two_cluster_dataset.points[i] + rng.normal(
                0.0, 0.15, reduced.dimensionality
            )
            index.insert(point, rid=960_000 + i, beta=5.0)
        assert getattr(
            index, "_insert_residuals", {}
        ), "shifted inserts must still route into subspaces"
        scores = drift_scores(index)
        touched = {i for i in index._insert_residuals}
        assert max(scores[i] for i in touched) > 0.5
        for i in set(scores) - touched:
            assert scores[i] == 0.0

    def test_drift_scores_match_the_drift_gauge(
        self, reduced, two_cluster_dataset, rng
    ):
        # One shared definition: the mpe_drift_max gauge must be exactly
        # the max of the per-partition scores.
        index = ExtendedIDistance(reduced)
        for i in range(6):
            noisy = two_cluster_dataset.points[i] + rng.normal(
                0.0, 0.2, reduced.dimensionality
            )
            index.insert(noisy, rid=950_000 + i)
        scores = drift_scores(index)
        gauges = sample_gauges(index)
        assert gauges["mpe_drift_max"] == pytest.approx(
            max(scores.values())
        )
        # The sampler method is the same function.
        assert HealthSampler().drift_score(index) == scores

    def test_drift_scores_empty_without_reduction(self):
        class Bare:
            pass

        assert drift_scores(Bare()) == {}

    def test_tombstones_move_the_fraction(self, reduced):
        index = SequentialScan(reduced)
        n = reduced.n_points
        index.delete(0)
        index.delete(1)
        gauges = sample_gauges(index)
        assert gauges["tombstone_count"] == 2
        assert gauges["tombstone_fraction"] == pytest.approx(2 / n)
        assert gauges["live_count"] == n - 2


class TestThresholds:
    def test_direction_above_and_below(self):
        above = Threshold("above", 1.0)
        assert above.status(1.0) == "ok"
        assert above.status(1.1) == "warn"
        below = Threshold("below", 0.5)
        assert below.status(0.6) == "ok"
        assert below.status(0.4) == "warn"

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            Threshold("sideways", 1.0)

    def test_default_thresholds_fire_as_warnings(self, reduced):
        sampler = HealthSampler()
        sampler.sample(ExtendedIDistance(reduced))
        # Force a warning by judging delta growth against an absurd bar.
        report = sampler.report(
            thresholds={"live_count": Threshold("below", 1e12)}
        )
        assert not report.ok
        assert report.status["live_count"] == "warn"
        assert any("live_count" in w for w in report.warnings)

    def test_healthy_index_passes_default_thresholds(self, reduced):
        sampler = HealthSampler()
        sampler.sample(ExtendedIDistance(reduced), label="build")
        report = sampler.report()
        assert report.ok
        assert report.warnings == ()
        assert set(report.status) <= set(DEFAULT_THRESHOLDS)
        assert all(v == "ok" for v in report.status.values())

    def test_empty_sampler_reports_vacuously_ok(self):
        report = HealthSampler().report()
        assert report.ok
        assert report.n_samples == 0
        assert report.gauges == {}
        assert report.scheme == "?"


class TestReportShape:
    def test_as_dict_is_json_ready_and_sorted(self, reduced):
        sampler = HealthSampler()
        sampler.sample(ExtendedIDistance(reduced), label="build")
        data = sampler.report().as_dict()
        assert set(data) == {
            "ok", "scheme", "n_samples", "gauges", "status", "warnings",
        }
        assert list(data["gauges"]) == sorted(data["gauges"])
        json.dumps(data)  # must not raise

    def test_report_judges_the_latest_sample(self, reduced):
        index = SequentialScan(reduced)
        sampler = HealthSampler()
        sampler.sample(index, label="build")
        index.delete(0)
        sampler.sample(index, label="updates")
        report = sampler.report()
        assert report.n_samples == 2
        assert report.gauges["tombstone_count"] == 1


@pytest.mark.obs_smoke
class TestTimeSeriesExport:
    def test_jsonl_export_one_record_per_sample(self, reduced):
        index = SequentialScan(reduced)
        sampler = HealthSampler()
        sampler.sample(index, label="build")
        index.insert(index.reduced.subspaces[0].mean, rid=960_000)
        sampler.sample(index, label="updates")
        out_dir = Path("benchmarks") / "out" / "obs"
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"health_{os.getpid()}.jsonl"
        try:
            assert sampler.export_jsonl(path) == 2
            rows = [
                json.loads(line)
                for line in path.read_text().splitlines()
            ]
            assert [r["type"] for r in rows] == ["health", "health"]
            assert [r["seq"] for r in rows] == [0, 1]
            assert [r["label"] for r in rows] == ["build", "updates"]
            assert rows[1]["gauges"]["delta_entries"] == 1
        finally:
            path.unlink(missing_ok=True)


class TestWALGauges:
    def test_stats_track_appends_commits_and_checkpoints(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        try:
            assert wal.stats() == {
                "bytes": 0, "records": 0,
                "commits_since_checkpoint": 0, "last_lsn": 0,
            }
            for _ in range(3):
                with wal.transaction("insert") as txn:
                    txn.set_meta({"kind": "insert"})
            stats = wal.stats()
            assert stats["records"] == 6  # BEGIN + COMMIT per txn
            assert stats["bytes"] > 0
            assert stats["commits_since_checkpoint"] == 3
            wal.checkpoint(tmp_path / "snap")
            stats = wal.stats()
            assert stats["records"] == 1  # only the CHECKPOINT survives
            assert stats["commits_since_checkpoint"] == 0
            assert stats["last_lsn"] == 7  # LSNs count across truncation
        finally:
            wal.close()

    def test_stats_survive_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        with wal.transaction("insert") as txn:
            txn.set_meta({"kind": "insert"})
        before = wal.stats()
        wal.close()
        reopened = WriteAheadLog(path)
        try:
            after = reopened.stats()
            assert after["bytes"] == before["bytes"]
            assert after["records"] == before["records"]
            assert (
                after["commits_since_checkpoint"]
                == before["commits_since_checkpoint"]
            )
        finally:
            reopened.close()

    def test_sampler_sees_wal_gauges_through_the_index(
        self, reduced, tmp_path
    ):
        index = SequentialScan(reduced)
        wal = WriteAheadLog(tmp_path / "wal.log")
        try:
            index.enable_wal(wal)
            index.insert(reduced.subspaces[0].mean, rid=950_000)
            gauges = sample_gauges(index)
            assert gauges["wal_records"] > 0
            assert gauges["wal_bytes"] > 0
            assert gauges["wal_commits_since_checkpoint"] == 1.0
        finally:
            index.disable_wal()
            wal.close()
