"""JSONL round-trip and the report aggregator / CLI."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.report import aggregate_spans, main, render_report
from repro.storage.metrics import CostCounters


def make_trace(tmp_path):
    c = CostCounters()
    t = Tracer(counters=c)
    for i in range(3):
        with t.span("phase.a", iteration=i):
            c.count_physical_read(2)
            with t.span("phase.b"):
                c.count_distance(10, dims=4)
    t.counter("my.counter").inc(7)
    t.gauge("my.gauge").set(0.5)
    t.histogram("my.hist", buckets=(1, 10)).observe(3)
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(path, t)
    return path, t, n


class TestRoundTrip:
    def test_record_count(self, tmp_path):
        path, tracer, n = make_trace(tmp_path)
        assert n == 1 + 6 + 3  # trace id + 6 spans + 3 metric records

    def test_spans_survive_with_order_and_cost(self, tmp_path):
        path, tracer, _ = make_trace(tmp_path)
        loaded = read_jsonl(path)
        spans = loaded["spans"]
        assert [s["index"] for s in spans] == list(range(6))
        assert [s["name"] for s in spans] == [
            "phase.a", "phase.b"] * 3
        a0, b0 = spans[0], spans[1]
        assert b0["parent"] == a0["index"]
        assert b0["depth"] == 1
        assert a0["attrs"] == {"iteration": 0}
        # Each phase.a includes its nested phase.b's distance work.
        assert a0["cost"]["physical_reads"] == 2
        assert a0["cost"]["distance_computations"] == 10
        assert b0["cost"]["distance_flops"] == 40
        assert b0["cost"]["physical_reads"] == 0

    def test_metrics_survive(self, tmp_path):
        path, _, _ = make_trace(tmp_path)
        metrics = {r["name"]: r for r in read_jsonl(path)["metrics"]}
        assert metrics["my.counter"]["value"] == 7
        assert metrics["my.gauge"]["value"] == 0.5
        assert metrics["my.hist"]["counts"] == [0, 1]

    def test_append_mode_pools_records(self, tmp_path):
        path, tracer, first = make_trace(tmp_path)
        write_jsonl(path, tracer, append=True)
        loaded = read_jsonl(path)
        assert len(loaded["spans"]) == 12

    def test_blank_lines_and_unknown_types_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"type": "span", "name": "x", "index": 0,
                        "parent": -1, "depth": 0, "start_s": 0.0,
                        "duration_s": 0.5, "attrs": {}, "cost": None})
            + "\n\n"
            + json.dumps({"type": "future_thing"}) + "\n"
        )
        loaded = read_jsonl(path)
        assert len(loaded["spans"]) == 1
        assert len(loaded["other"]) == 1

    def test_malformed_lines_recorded_not_fatal(self, tmp_path):
        path, tracer, n = make_trace(tmp_path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "trunc')  # interrupted write
        loaded = read_jsonl(path)
        assert len(loaded["spans"]) == 6
        assert loaded["other"] == [
            {"type": "trace", "id": tracer.trace_id},
            {"type": "malformed", "line": n + 1},
        ]

    def test_trace_id_record_leads_the_file(self, tmp_path):
        path, tracer, _ = make_trace(tmp_path)
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"type": "trace", "id": tracer.trace_id}


class TestAggregation:
    def test_per_name_totals_and_percentiles(self):
        spans = [
            {"name": "s", "duration_s": d,
             "cost": {"physical_reads": 1, "sequential_reads": 2,
                      "distance_computations": 3, "distance_flops": 4,
                      "key_comparisons": 5, "logical_reads": 6}}
            for d in (0.1, 0.2, 0.3, 0.4)
        ]
        agg = aggregate_spans(spans)["s"]
        assert agg.count == 4
        assert agg.total_s == pytest.approx(1.0)
        assert agg.mean_s == pytest.approx(0.25)
        assert agg.percentile_s(0.95) == pytest.approx(0.4)
        assert agg.percentile_s(0.5) == pytest.approx(0.2)
        assert agg.pages == 4 * 3  # physical + sequential
        assert agg.distance_flops == 16
        assert agg.key_comparisons == 20

    def test_spans_without_cost_aggregate_cleanly(self):
        agg = aggregate_spans(
            [{"name": "s", "duration_s": 0.1, "cost": None}]
        )["s"]
        assert agg.count == 1
        assert agg.pages == 0


class TestRendering:
    def test_report_contains_spans_and_metrics(self, tmp_path):
        path, _, _ = make_trace(tmp_path)
        text = render_report(read_jsonl(path))
        assert "phase.a" in text
        assert "phase.b" in text
        assert "my.counter" in text
        assert "my.hist" in text
        assert "p95_ms" in text

    def test_sort_and_top(self, tmp_path):
        path, _, _ = make_trace(tmp_path)
        text = render_report(read_jsonl(path), sort="name", top=1)
        assert "phase.a" in text
        assert "phase.b" not in text

    def test_unknown_sort_rejected(self, tmp_path):
        path, _, _ = make_trace(tmp_path)
        with pytest.raises(ValueError):
            render_report(read_jsonl(path), sort="nope")

    def test_empty_trace_renders(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "(no spans)" in render_report(read_jsonl(path))

    def test_cli_main_prints_table(self, tmp_path, capsys):
        path, _, _ = make_trace(tmp_path)
        assert main([str(path), "--sort", "count"]) == 0
        out = capsys.readouterr().out
        assert "phase.a" in out
        assert "my.gauge" in out
