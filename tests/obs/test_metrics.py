"""Metrics registry: counters, gauges, histogram bucket semantics."""

import math

import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.counter("x").value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("rate").set(0.25)
        reg.gauge("rate").set(0.75)
        assert reg.gauge("rate").value == 0.75

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c", buckets=(1, 2))
        # second buckets arg ignored: the first creation wins
        assert reg.histogram("c").bounds == sorted(DEFAULT_BUCKETS)


class TestHistogramBuckets:
    def test_observation_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", buckets=(1, 2, 5))
        h.observe(1)  # == first edge -> bucket[0] (inclusive upper bound)
        h.observe(2)  # == second edge -> bucket[1]
        h.observe(1.5)  # between 1 and 2 -> bucket[1]
        h.observe(5)  # == last edge -> bucket[2]
        assert h.counts == [1, 2, 1]
        assert h.overflow == 0

    def test_above_last_edge_goes_to_overflow(self):
        h = Histogram("h", buckets=(1, 2, 5))
        h.observe(5.0001)
        h.observe(1000)
        assert h.counts == [0, 0, 0]
        assert h.overflow == 2

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", buckets=(1, 2))
        h.observe(0)
        h.observe(-3)
        assert h.counts == [2, 0]

    def test_mean_and_count(self):
        h = Histogram("h", buckets=(10,))
        for v in (1, 2, 3):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)

    def test_percentile_is_bucket_upper_bound(self):
        h = Histogram("h", buckets=(1, 2, 5, 10))
        for _ in range(95):
            h.observe(1.5)  # bucket <=2
        for _ in range(5):
            h.observe(9)  # bucket <=10
        assert h.percentile(0.5) == 2
        assert h.percentile(0.95) == 2
        assert h.percentile(1.0) == 10

    def test_percentile_overflow_is_inf_and_empty_is_nan(self):
        h = Histogram("h", buckets=(1,))
        # An empty histogram has no quantiles: nan, not a misleading 0.0
        # that would read as "all observations were fast".
        assert math.isnan(h.percentile(0.95))
        h.observe(100)
        assert h.percentile(0.95) == math.inf

    def test_percentile_rejects_bad_quantile(self):
        h = Histogram("h", buckets=(1,))
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 2))


class TestRecords:
    def test_as_records_flattens_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(0.5)
        reg.histogram("h", buckets=(1, 2)).observe(1.5)
        records = {r["name"]: r for r in reg.as_records()}
        assert records["c"]["type"] == "counter"
        assert records["c"]["value"] == 3
        assert records["g"]["value"] == 0.5
        assert records["h"]["counts"] == [0, 1]
        assert records["h"]["count"] == 1


class TestReset:
    def test_reset_drops_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1)
        reg.reset()
        assert reg.as_records() == []
        # Get-or-create after reset yields fresh instruments.
        assert reg.counter("c").value == 0

    def test_old_handles_are_detached_not_broken(self):
        reg = MetricsRegistry()
        handle = reg.counter("c")
        reg.reset()
        handle.inc()  # still functional...
        assert reg.counter("c").value == 0  # ...but no longer registered


class TestMergeRecords:
    def test_counters_add_gauges_last_write_histograms_pool(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(2)
        worker.gauge("g").set(0.25)
        worker.histogram("h", buckets=(1, 2)).observe(1.5)
        local = MetricsRegistry()
        local.counter("c").inc(1)
        local.gauge("g").set(0.75)
        local.histogram("h", buckets=(1, 2)).observe(5)

        local.merge_records(worker.as_records())
        assert local.counter("c").value == 3
        assert local.gauge("g").value == 0.25  # worker folded last wins
        h = local.histogram("h")
        assert h.counts == [0, 1]
        assert h.overflow == 1
        assert h.count == 2

    def test_merge_creates_missing_instruments(self):
        worker = MetricsRegistry()
        worker.counter("only.there").inc(7)
        local = MetricsRegistry()
        local.merge_records(worker.as_records())
        assert local.counter("only.there").value == 7

    def test_mismatched_histogram_grids_raise(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1, 2)).observe(1)
        local = MetricsRegistry()
        local.histogram("h", buckets=(10, 20)).observe(15)
        with pytest.raises(ValueError, match="bucket grids differ"):
            local.merge_records(worker.as_records())

    def test_unknown_record_type_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric record"):
            reg.merge_records([{"type": "nope", "name": "x"}])
