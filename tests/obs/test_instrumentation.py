"""End-to-end tracing smoke tests over the instrumented components."""

import numpy as np
import pytest

from repro import MMDR, ExtendedIDistance, ScalableMMDR, Tracer
from repro.cluster.elliptical import EllipticalKMeans
from repro.data.workload import sample_queries
from repro.eval.harness import run_query_batch
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.seqscan import SequentialScan
from repro.reduction import model_to_reduced


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(
        two_cluster_dataset.points, np.random.default_rng(5)
    )
    return two_cluster_dataset, model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points, 8, np.random.default_rng(9), k=10
    )


def span_names(tracer):
    return [s.name for s in tracer.spans]


class TestQueryBatchTracing:
    def test_one_query_span_per_query(self, reduced, workload):
        _, red = reduced
        index = ExtendedIDistance(red)
        tracer = Tracer()
        run_query_batch(index, workload, tracer=tracer)
        names = span_names(tracer)
        assert names.count("knn.query") == workload.n_queries
        assert "knn.expand_radius" in names
        assert "knn.probe_partition" in names

    def test_expand_radius_spans_carry_page_deltas(self, reduced, workload):
        _, red = reduced
        index = ExtendedIDistance(red)
        tracer = Tracer()
        run_query_batch(index, workload, tracer=tracer)
        expands = [s for s in tracer.spans if s.name == "knn.expand_radius"]
        assert expands, "no radius-expansion spans recorded"
        assert all(s.cost is not None for s in expands)
        total_pages = sum(s.cost.total_page_reads for s in expands)
        assert total_pages > 0
        # Expansion spans nest under their query span.
        queries = {
            s.index for s in tracer.spans if s.name == "knn.query"
        }
        assert all(s.parent in queries for s in expands)

    def test_batch_metrics_recorded(self, reduced, workload):
        _, red = reduced
        index = ExtendedIDistance(red)
        tracer = Tracer()
        run_query_batch(index, workload, tracer=tracer)
        m = tracer.metrics
        assert m.counter("knn.radius_expansions").value > 0
        assert (
            m.histogram("knn.candidates_per_query").count
            == workload.n_queries
        )
        assert 0.0 <= m.gauge("buffer.hit_rate").value <= 1.0
        hits = m.counter("buffer.hits").value
        misses = m.counter("buffer.misses").value
        assert hits + misses > 0

    def test_results_bit_identical_with_and_without_tracer(
        self, reduced, workload
    ):
        _, red = reduced
        index = ExtendedIDistance(red)
        ids_plain, ids_traced = [], []
        plain = run_query_batch(index, workload, collect_ids=ids_plain)
        traced = run_query_batch(
            index, workload, collect_ids=ids_traced, tracer=Tracer()
        )
        assert plain.mean_page_reads == traced.mean_page_reads
        assert (
            plain.mean_distance_computations
            == traced.mean_distance_computations
        )
        assert plain.mean_cpu_work == traced.mean_cpu_work
        for a, b in zip(ids_plain, ids_traced):
            assert np.array_equal(a, b)

    def test_baseline_indexes_accept_tracer(self, reduced, workload):
        _, red = reduced
        for cls in (SequentialScan, GlobalLDRIndex):
            tracer = Tracer()
            run_query_batch(cls(red), workload, tracer=tracer)
            assert span_names(tracer).count("knn.query") == (
                workload.n_queries
            )


class TestKMeansTracing:
    def test_iteration_spans_and_freeze_counts(self, two_cluster_dataset):
        tracer = Tracer()
        estimator = EllipticalKMeans(n_clusters=2)
        result = estimator.fit(
            two_cluster_dataset.points[:600],
            np.random.default_rng(3),
            tracer=tracer,
        )
        names = span_names(tracer)
        assert names.count("kmeans.fit") == 1
        outers = [
            s for s in tracer.spans if s.name == "kmeans.outer_iteration"
        ]
        assert len(outers) == result.outer_iterations
        assert all("frozen_points" in s.attributes for s in outers)
        inners = [
            s for s in tracer.spans if s.name == "kmeans.inner_iteration"
        ]
        assert len(inners) == result.inner_iterations

    def test_tracer_does_not_change_clustering(self, two_cluster_dataset):
        data = two_cluster_dataset.points[:600]
        plain = EllipticalKMeans(n_clusters=2).fit(
            data, np.random.default_rng(3)
        )
        traced = EllipticalKMeans(n_clusters=2).fit(
            data, np.random.default_rng(3), tracer=Tracer()
        )
        assert np.array_equal(plain.labels, traced.labels)
        assert plain.inner_iterations == traced.inner_iterations


class TestMMDRTracing:
    def test_phase_spans_and_retained_dims(self, two_cluster_dataset):
        tracer = Tracer()
        model = MMDR().fit(
            two_cluster_dataset.points, np.random.default_rng(5),
            tracer=tracer,
        )
        names = span_names(tracer)
        assert names.count("mmdr.generate_ellipsoid") == 1
        assert names.count("mmdr.dimensionality_optimization") == 1
        assert "mmdr.generate_level" in names
        assert "kmeans.outer_iteration" in names
        hist = tracer.metrics.histogram("mmdr.retained_dims")
        assert hist.count == model.n_subspaces
        assert (
            tracer.metrics.gauge("mmdr.n_subspaces").value
            == model.n_subspaces
        )

    def test_tracer_does_not_change_model(self, two_cluster_dataset):
        plain = MMDR().fit(
            two_cluster_dataset.points, np.random.default_rng(5)
        )
        traced = MMDR().fit(
            two_cluster_dataset.points, np.random.default_rng(5),
            tracer=Tracer(),
        )
        assert np.array_equal(plain.labels(), traced.labels())
        assert plain.reduced_dims() == traced.reduced_dims()


class TestScalableMMDRTracing:
    def test_per_stream_spans(self, two_cluster_dataset):
        tracer = Tracer()
        model = ScalableMMDR().fit(
            two_cluster_dataset.points, np.random.default_rng(5),
            tracer=tracer,
        )
        names = span_names(tracer)
        assert (
            names.count("scalable.stream") == model.stats.streams_processed
        )
        assert names.count("scalable.merge_array") == 1
        assert names.count("scalable.route_points") == 1


class TestStorageStatsExposure:
    def test_hit_rate_through_vector_index(self, reduced, workload):
        _, red = reduced
        index = ExtendedIDistance(red)
        run_query_batch(index, workload, cold_cache=False)
        stats = index.storage_stats()
        assert stats["buffer_hits"] == index.pool.hits
        assert stats["buffer_misses"] == index.pool.misses
        assert stats["buffer_hits"] + stats["buffer_misses"] == (
            index.counters.logical_reads
        )
        assert stats["buffer_misses"] == index.counters.physical_reads
        assert index.buffer_hit_rate == pytest.approx(
            stats["buffer_hits"]
            / (stats["buffer_hits"] + stats["buffer_misses"])
        )
        # Warm cache on repeated identical queries must show hits.
        assert index.buffer_hit_rate > 0.0
