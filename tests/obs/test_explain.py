"""Explain plans: per-phase cost attribution that sums exactly to the query.

The trust property under test: for every scheme, the explain plan's summed
per-phase self costs reproduce the query's own ``QueryStats`` counter for
counter — no page read or distance evaluation can hide between phases.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.eval.harness import run_query_batch
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.obs.explain import (
    INT_COST_FIELDS,
    explain_from_records,
    explain_from_tracer,
)
from repro.obs.export import write_jsonl
from repro.obs.report import main as report_main
from repro.obs.tracer import Tracer
from repro.reduction.mmdr_adapter import model_to_reduced

SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def query(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        1,
        np.random.default_rng(9),
        k=5,
        method="perturbed",
    ).queries[0]


class TestExplainTotalsMatchQueryStats:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_totals_equal_a_fresh_runs_counters(self, scheme, reduced, query):
        index = scheme(reduced)
        index.reset_cache()
        ref = index.knn(query, 5)
        explain = index.explain(query, 5)
        assert explain.total_page_reads == ref.stats.page_reads
        assert (
            explain.total["distance_computations"]
            == ref.stats.distance_computations
        )
        assert explain.total["distance_flops"] == ref.stats.distance_flops
        assert explain.total["key_comparisons"] == ref.stats.key_comparisons
        assert explain.result_ids == ref.ids.tolist()
        assert explain.k == 5
        assert explain.scheme == index.name

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_phase_sum_telescopes_exactly_to_total(
        self, scheme, reduced, query
    ):
        explain = scheme(reduced).explain(query, 5)
        summed = explain.phase_sum()
        for name in INT_COST_FIELDS:
            assert summed[name] == explain.total[name], name

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_self_costs_telescope_over_the_whole_tree(
        self, scheme, reduced, query
    ):
        explain = scheme(reduced).explain(query, 5)
        for name in INT_COST_FIELDS:
            assert (
                sum(node.self_cost[name] for node in explain.root.walk())
                == explain.total[name]
            )


class TestIDistanceBreakdown:
    def test_partitions_and_expansions_present(self, reduced, query):
        explain = ExtendedIDistance(reduced).explain(query, 5)
        assert explain.expansions >= 1
        assert explain.partitions, "iDistance explain must break down probes"
        total_probes = sum(
            agg["probes"] for agg in explain.partitions.values()
        )
        probe_spans = [
            n for n in explain.root.walk() if n.name == "knn.probe_partition"
        ]
        assert total_probes == len(probe_spans)
        # Per-partition page reads sum to the probe phase's inclusive cost.
        assert all(isinstance(pid, int) for pid in explain.partitions)

    def test_delta_hits_split_after_inserts(
        self, reduced, two_cluster_dataset
    ):
        index = ExtendedIDistance(reduced)
        anchor = two_cluster_dataset.points[7]
        index.insert(anchor + 1e-7, rid=990_001)
        explain = index.explain(anchor, 3)
        assert explain.delta_hits is not None
        assert explain.delta_hits >= 1
        assert explain.delta_hits + explain.bulk_hits == len(
            explain.result_ids
        )

    def test_render_mentions_tree_phases_and_partitions(
        self, reduced, query
    ):
        text = ExtendedIDistance(reduced).explain(query, 5).render()
        assert "KNN Explain" in text
        assert "scheme=iDistance" in text
        assert "knn.query" in text
        assert "phases" in text
        assert "partitions:" in text
        assert "└─" in text  # the tree actually rendered


class TestExplainBuilders:
    def test_zero_query_spans_raise(self):
        with pytest.raises(ValueError, match="exactly one knn.query"):
            explain_from_tracer(Tracer())

    def test_many_queries_from_one_trace(self, reduced, two_cluster_dataset):
        workload = sample_queries(
            two_cluster_dataset.points, 4, np.random.default_rng(3), k=5
        )
        tracer = Tracer()
        index = ExtendedIDistance(reduced)
        run_query_batch(index, workload, tracer=tracer)
        from repro.obs.export import span_to_record

        records = [span_to_record(s) for s in tracer.spans]
        explains = explain_from_records(records)
        assert len(explains) == workload.n_queries
        for explain in explains:
            summed = explain.phase_sum()
            for name in INT_COST_FIELDS:
                assert summed[name] == explain.total[name]


@pytest.mark.obs_smoke
class TestExplainCLI:
    def test_report_explain_renders_each_query(
        self, reduced, two_cluster_dataset, capsys
    ):
        workload = sample_queries(
            two_cluster_dataset.points, 3, np.random.default_rng(3), k=5
        )
        tracer = Tracer()
        run_query_batch(ExtendedIDistance(reduced), workload, tracer=tracer)
        out_dir = Path("benchmarks") / "out" / "obs"
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"explain_trace_{os.getpid()}.jsonl"
        write_jsonl(path, tracer)
        try:
            assert report_main([str(path), "--explain", "--top", "2"]) == 0
            out = capsys.readouterr().out
            assert out.count("KNN Explain") == 2
            assert "1 more queries" in out
        finally:
            path.unlink(missing_ok=True)

    def test_trace_without_queries_says_so(self, tmp_path, capsys):
        tracer = Tracer()
        with tracer.span("bench.build"):
            pass
        path = tmp_path / "noquery.jsonl"
        write_jsonl(path, tracer)
        assert report_main([str(path), "--explain"]) == 0
        assert "no knn.query spans" in capsys.readouterr().out
