"""Tracer behavior: span nesting, ordering, cost deltas, null tracer."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, ensure_tracer
from repro.storage.metrics import CostCounters


class TestSpanNesting:
    def test_spans_record_in_start_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("first"):
                pass
            with t.span("second"):
                pass
        assert [s.name for s in t.spans] == ["outer", "first", "second"]
        assert [s.index for s in t.spans] == [0, 1, 2]

    def test_parent_and_depth(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
            with t.span("d"):
                pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["a"].parent == -1 and by_name["a"].depth == 0
        assert by_name["b"].parent == by_name["a"].index
        assert by_name["c"].parent == by_name["b"].index
        assert by_name["c"].depth == 2
        assert by_name["d"].parent == by_name["a"].index
        assert by_name["d"].depth == 1

    def test_siblings_after_close_attach_to_grandparent(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
        with t.span("next_root"):
            pass
        assert t.spans[2].parent == -1
        assert t.spans[2].depth == 0

    def test_active_span_tracks_stack(self):
        t = Tracer()
        assert t.active_span is None
        with t.span("a") as a:
            assert t.active_span is a
        assert t.active_span is None

    def test_durations_are_monotone(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        outer, inner = t.spans
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_exception_closes_span_and_restores_stack(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("outer"):
                with t.span("failing"):
                    raise RuntimeError("boom")
        assert t.active_span is None
        assert all(s.duration_s >= 0.0 for s in t.spans)
        with t.span("after"):
            pass
        assert t.spans[-1].depth == 0


class TestAttributes:
    def test_initial_and_late_attributes(self):
        t = Tracer()
        with t.span("s", radius=0.5) as span:
            span.set(candidates=12, done=True)
        assert t.spans[0].attributes == {
            "radius": 0.5,
            "candidates": 12,
            "done": True,
        }


class TestCostDeltas:
    def test_span_captures_counter_delta(self):
        c = CostCounters()
        c.count_physical_read(100)  # pre-existing noise must not leak in
        t = Tracer(counters=c)
        with t.span("work"):
            c.count_physical_read(3)
            c.count_distance(5, dims=4)
        cost = t.spans[0].cost
        assert cost.physical_reads == 3
        assert cost.distance_computations == 5
        assert cost.distance_flops == 20

    def test_nested_spans_include_child_cost(self):
        c = CostCounters()
        t = Tracer(counters=c)
        with t.span("outer"):
            c.count_key_comparison(1)
            with t.span("inner"):
                c.count_key_comparison(10)
        outer, inner = t.spans
        assert inner.cost.key_comparisons == 10
        assert outer.cost.key_comparisons == 11

    def test_per_span_counter_override(self):
        default = CostCounters()
        other = CostCounters()
        t = Tracer(counters=default)
        with t.span("default_counters"):
            default.count_page_write(2)
        with t.span("override", counters=other):
            other.count_page_write(7)
            default.count_page_write(1)  # invisible to the override span
        assert t.spans[0].cost.page_writes == 2
        assert t.spans[1].cost.page_writes == 7

    def test_no_counters_means_no_cost(self):
        t = Tracer()
        with t.span("uncounted"):
            pass
        assert t.spans[0].cost is None


class TestNullTracer:
    def test_null_tracer_is_inert_and_allocation_free(self):
        n = NullTracer()
        with n.span("anything", attr=1) as s:
            assert s.set(x=2) is s
        assert n.spans == []
        assert n.active_span is None
        n.counter("c").inc(5)
        n.gauge("g").set(1.0)
        n.histogram("h").observe(3.0)
        # Shared singletons: repeated calls return the same objects.
        assert n.span("a") is n.span("b")
        assert n.counter("a") is n.counter("b")

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        t = Tracer()
        assert ensure_tracer(t) is t
