"""Precision metric and the KNN reference implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.workload import sample_queries
from repro.eval.precision import (
    evaluate_precision,
    exact_knn,
    precision_at_k,
    reduced_knn,
)
from repro.reduction.gdr import GDRReducer
from repro.reduction.mmdr_adapter import MMDRReducer


class TestExactKNN:
    def test_matches_brute_force(self, rng):
        data = rng.normal(size=(500, 6))
        queries = rng.normal(size=(8, 6))
        got = exact_knn(data, queries, 5)
        for qi, query in enumerate(queries):
            truth = np.argsort(np.linalg.norm(data - query, axis=1))[:5]
            assert got[qi].tolist() == truth.tolist()

    def test_nearest_first_ordering(self, rng):
        data = rng.normal(size=(200, 3))
        ids = exact_knn(data, data[:1], 10)[0]
        dists = np.linalg.norm(data[ids] - data[0], axis=1)
        assert np.all(np.diff(dists) >= 0)

    def test_self_is_own_nearest_neighbor(self, rng):
        data = rng.normal(size=(100, 4))
        ids = exact_knn(data, data[13:14], 1)
        assert ids[0, 0] == 13

    def test_k_capped_at_n(self, rng):
        data = rng.normal(size=(5, 3))
        assert exact_knn(data, data[:2], 50).shape == (2, 5)

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            exact_knn(rng.normal(size=(5, 3)), rng.normal(size=(1, 3)), 0)

    def test_batching_is_invisible(self, rng):
        data = rng.normal(size=(300, 4))
        queries = rng.normal(size=(50, 4))
        small = exact_knn(data, queries, 7, batch=8)
        large = exact_knn(data, queries, 7, batch=1000)
        assert np.array_equal(small, large)


class TestPrecisionAtK:
    def test_perfect_overlap(self):
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        assert precision_at_k(ids, ids) == 1.0

    def test_disjoint(self):
        a = np.array([[1, 2, 3]])
        b = np.array([[7, 8, 9]])
        assert precision_at_k(a, b) == 0.0

    def test_partial_and_order_invariant(self):
        a = np.array([[1, 2, 3, 4]])
        b = np.array([[4, 3, 9, 8]])
        assert precision_at_k(a, b) == pytest.approx(0.5)

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError):
            precision_at_k(np.zeros((2, 3)), np.zeros((3, 3)))


class TestReducedKNN:
    def test_lossless_reduction_perfect_precision(self, rng):
        """Full-dimensional 'reduction' must reproduce exact KNN."""
        data = rng.normal(size=(400, 6))
        red = GDRReducer().reduce(data, rng, target_dim=6)
        queries = data[:10]
        truth = exact_knn(data, queries, 5)
        approx = reduced_knn(red, queries, 5)
        assert precision_at_k(truth, approx) == 1.0

    def test_lossy_reduction_lower_precision(self, rng):
        data = rng.normal(size=(400, 10))  # isotropic: reduction hurts
        red = GDRReducer().reduce(data, rng, target_dim=2)
        queries = data[:10]
        truth = exact_knn(data, queries, 5)
        approx = reduced_knn(red, queries, 5)
        assert precision_at_k(truth, approx) < 0.9

    def test_outliers_scored_exactly(self, rng, five_cluster_dataset):
        """Outlier partition keeps full dimensionality: a query that IS an
        outlier must find itself first."""
        data = five_cluster_dataset.points
        red = MMDRReducer().reduce(data, np.random.default_rng(5))
        if red.outliers.size == 0:
            pytest.skip("no outliers")
        outlier_id = int(red.outliers.member_ids[0])
        approx = reduced_knn(red, data[outlier_id:outlier_id + 1], 1)
        assert approx[0, 0] == outlier_id

    def test_k_validation(self, rng):
        data = rng.normal(size=(50, 4))
        red = GDRReducer().reduce(data, rng, target_dim=2)
        with pytest.raises(ValueError):
            reduced_knn(red, data[:1], 0)


class TestEvaluatePrecision:
    def test_report_fields(self, five_cluster_dataset, rng):
        data = five_cluster_dataset.points
        red = MMDRReducer().reduce(data, np.random.default_rng(5))
        workload = sample_queries(data, 15, rng, k=10)
        report = evaluate_precision(data, red, workload)
        assert report.method == "MMDR"
        assert 0.0 <= report.precision <= 1.0
        assert report.n_queries == 15
        assert report.k == 10
        assert report.n_subspaces == red.n_subspaces
        assert report.mean_reduced_dim == pytest.approx(
            red.mean_reduced_dim()
        )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    n=st.integers(min_value=12, max_value=80),
    k=st.integers(min_value=1, max_value=10),
)
def test_property_reduced_knn_bounded_by_exact(seed, n, k):
    """Precision is always within [0, 1], and a lossless reduction always
    achieves exactly 1."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, 5))
    red = GDRReducer().reduce(data, rng, target_dim=5)
    truth = exact_knn(data, data[:3], k)
    approx = reduced_knn(red, data[:3], k)
    assert precision_at_k(truth, approx) == 1.0
