"""Self-healing parallel execution: kills, hangs, and the degradation ladder.

A killed fork poisons its whole ``ProcessPoolExecutor``; a hung worker
outlives its timeout.  ``run_workload(..., workers=N)`` must survive both:
retry the failed chunks once on a fresh pool, then degrade to in-process
sequential execution — and on every rung return exactly the answers and
per-query accounting of an undisturbed run.

Sabotage only ever fires in forked children (``os.getpid()`` differs from
the pid recorded at construction), so the in-process fallback always
succeeds — mirroring real crashes, which kill workers, not the coordinator.
"""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.eval.harness import run_query_batch, run_workload
from repro.index.seqscan import SequentialScan
from repro.obs.tracer import Tracer
from repro.reduction.mmdr_adapter import model_to_reduced

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sabotage requires fork workers (COW state, killable pids)",
)


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        12,
        np.random.default_rng(9),
        k=6,
        method="perturbed",
    )


class SabotagedIndex:
    """Delegating wrapper whose ``knn_batch`` misbehaves in fork children.

    ``kill_once`` dies until ``flag_path`` exists (created just before the
    first kill, so the retry round succeeds); ``kill_always`` dies in every
    child; ``hang`` sleeps far past any test timeout.
    """

    def __init__(self, inner, mode, flag_path=None):
        self.inner = inner
        self.mode = mode
        self.flag_path = flag_path
        self.parent_pid = os.getpid()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __deepcopy__(self, memo):  # thread fallback clones per chunk
        import copy

        clone = SabotagedIndex(
            copy.deepcopy(self.inner, memo), self.mode, self.flag_path
        )
        clone.parent_pid = self.parent_pid
        return clone

    def knn_batch(self, queries, k, **kwargs):
        self._sabotage()
        return self.inner.knn_batch(queries, k, **kwargs)

    def _sabotage(self):
        if os.getpid() == self.parent_pid:
            return  # the coordinator itself never crashes
        if self.mode == "kill_once" and not self.flag_path.exists():
            self.flag_path.touch()
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "kill_always":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "hang":
            time.sleep(600)


def reference(index, workload):
    res = index.knn_batch(workload.queries, workload.k)
    return res.ids, res.distances, list(res.stats)


def assert_complete_and_identical(ref, got):
    ids, distances, stats = got
    assert np.array_equal(ref[0], ids)
    assert np.array_equal(ref[1], distances)
    assert len(stats) == len(ref[2])
    for a, b in zip(ref[2], stats):
        assert a.page_reads == b.page_reads
        assert a.distance_computations == b.distance_computations


@fork_only
class TestDegradationLadder:
    def test_killed_worker_recovers_on_retry(
        self, reduced, workload, tmp_path
    ):
        ref = reference(SequentialScan(reduced), workload)
        index = SabotagedIndex(
            SequentialScan(reduced), "kill_once", tmp_path / "killed"
        )
        tracer = Tracer()
        got = run_workload(index, workload, workers=2, tracer=tracer)
        assert_complete_and_identical(ref, got)
        counters = tracer.metrics.counters
        assert counters["harness.worker_failures"].value > 0
        assert counters["harness.chunk_retries"].value > 0
        assert "harness.degraded_chunks" not in counters

    def test_persistent_kills_degrade_to_in_process(
        self, reduced, workload
    ):
        ref = reference(SequentialScan(reduced), workload)
        index = SabotagedIndex(SequentialScan(reduced), "kill_always")
        tracer = Tracer()
        got = run_workload(index, workload, workers=2, tracer=tracer)
        assert_complete_and_identical(ref, got)
        counters = tracer.metrics.counters
        assert counters["harness.worker_failures"].value > 0
        assert counters["harness.chunk_retries"].value > 0
        assert counters["harness.degraded_chunks"].value == 2

    def test_hung_worker_times_out_and_degrades(self, reduced, workload):
        ref = reference(SequentialScan(reduced), workload)
        index = SabotagedIndex(SequentialScan(reduced), "hang")
        tracer = Tracer()
        start = time.perf_counter()
        got = run_workload(
            index, workload, workers=2, tracer=tracer,
            worker_timeout_s=1.0,
        )
        elapsed = time.perf_counter() - start
        assert_complete_and_identical(ref, got)
        assert elapsed < 60  # two 1 s rounds + fallback, not a 600 s hang
        assert tracer.metrics.counters[
            "harness.degraded_chunks"
        ].value == 2

    def test_run_query_batch_survives_kills(self, reduced, workload):
        clean_cost = run_query_batch(
            SequentialScan(reduced), workload, workers=2, use_batch=True
        )
        index = SabotagedIndex(SequentialScan(reduced), "kill_always")
        cost = run_query_batch(index, workload, workers=2, use_batch=True)
        assert cost.mean_page_reads == clean_cost.mean_page_reads
        assert cost.n_queries == clean_cost.n_queries


class TestHealthyPathUnchanged:
    def test_no_failures_records_no_ladder_metrics(self, reduced, workload):
        tracer = Tracer()
        ref = reference(SequentialScan(reduced), workload)
        got = run_workload(
            SequentialScan(reduced), workload, workers=2, tracer=tracer,
            worker_timeout_s=120.0,
        )
        assert_complete_and_identical(ref, got)
        counters = tracer.metrics.counters
        assert "harness.worker_failures" not in counters
        assert "harness.chunk_retries" not in counters
        assert "harness.degraded_chunks" not in counters
