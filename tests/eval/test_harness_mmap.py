"""Self-healing harness ladder over the mmap-backed page store.

PR 3's degradation ladder (retry on a fresh pool -> in-process
sequential execution) was only exercised against the in-memory heap
store.  The mmap store adds real failure surface: forked workers
inherit the parent's file mapping, and the in-process fallback must
read through the very same mapping after its forked siblings died
mid-request.  Every rung must still return bit-identical answers and
per-query accounting.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.eval.harness import run_query_batch, run_workload
from repro.index.seqscan import SequentialScan
from repro.obs.tracer import Tracer
from repro.reduction.mmdr_adapter import model_to_reduced
from repro.storage.mmap_store import MmapPageStore

from .test_harness_robustness import (
    SabotagedIndex,
    assert_complete_and_identical,
    reference,
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sabotage requires fork workers (COW state, killable pids)",
)


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        12,
        np.random.default_rng(9),
        k=6,
        method="perturbed",
    )


def mmap_index(reduced):
    return SequentialScan(reduced, store_factory=MmapPageStore)


@fork_only
class TestMmapDegradationLadder:
    def test_killed_worker_recovers_on_retry(
        self, reduced, workload, tmp_path
    ):
        ref = reference(mmap_index(reduced), workload)
        index = SabotagedIndex(
            mmap_index(reduced), "kill_once", tmp_path / "killed"
        )
        tracer = Tracer()
        got = run_workload(index, workload, workers=2, tracer=tracer)
        assert_complete_and_identical(ref, got)
        counters = tracer.metrics.counters
        assert counters["harness.worker_failures"].value > 0
        assert counters["harness.chunk_retries"].value > 0
        assert "harness.degraded_chunks" not in counters

    def test_persistent_kills_degrade_to_in_process(self, reduced, workload):
        ref = reference(mmap_index(reduced), workload)
        index = SabotagedIndex(mmap_index(reduced), "kill_always")
        tracer = Tracer()
        got = run_workload(index, workload, workers=2, tracer=tracer)
        assert_complete_and_identical(ref, got)
        counters = tracer.metrics.counters
        assert counters["harness.worker_failures"].value > 0
        assert counters["harness.degraded_chunks"].value == 2

    def test_hung_worker_times_out_and_degrades(self, reduced, workload):
        ref = reference(mmap_index(reduced), workload)
        index = SabotagedIndex(mmap_index(reduced), "hang")
        tracer = Tracer()
        start = time.perf_counter()
        got = run_workload(
            index, workload, workers=2, tracer=tracer, worker_timeout_s=1.0
        )
        elapsed = time.perf_counter() - start
        assert_complete_and_identical(ref, got)
        assert elapsed < 60
        assert tracer.metrics.counters["harness.degraded_chunks"].value == 2

    def test_run_query_batch_survives_kills(self, reduced, workload):
        clean_cost = run_query_batch(
            mmap_index(reduced), workload, workers=2, use_batch=True
        )
        index = SabotagedIndex(mmap_index(reduced), "kill_always")
        cost = run_query_batch(index, workload, workers=2, use_batch=True)
        assert cost.mean_page_reads == clean_cost.mean_page_reads
        assert cost.n_queries == clean_cost.n_queries


class TestMmapHealthyPath:
    def test_no_failures_records_no_ladder_metrics(self, reduced, workload):
        tracer = Tracer()
        ref = reference(mmap_index(reduced), workload)
        got = run_workload(
            mmap_index(reduced),
            workload,
            workers=2,
            tracer=tracer,
            worker_timeout_s=120.0,
        )
        assert_complete_and_identical(ref, got)
        counters = tracer.metrics.counters
        assert "harness.worker_failures" not in counters
        assert "harness.chunk_retries" not in counters
        assert "harness.degraded_chunks" not in counters
