"""Text tables and the query-batch harness."""

import numpy as np
import pytest

from repro.data.workload import sample_queries
from repro.eval.harness import compare_index_schemes, run_query_batch
from repro.eval.reporting import format_series, format_table
from repro.index.idistance import ExtendedIDistance
from repro.reduction.ldr import LDRReducer
from repro.reduction.mmdr_adapter import MMDRReducer


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["name", "value"], [("a", 1), ("bb", 22.5)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_number_formatting(self):
        out = format_table(["x"], [(0.12345,), (1234567.0,), (3.14159,)])
        assert "0.1235" in out or "0.1234" in out
        assert "1,234,567" in out
        assert "3.14" in out


class TestFormatSeries:
    def test_columns_per_method(self):
        out = format_series(
            "dims", [10, 20], {"A": [0.5, 0.6], "B": [0.1, 0.2]}
        )
        header = out.splitlines()[0]
        assert "dims" in header and "A" in header and "B" in header

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"A": [0.5]})


@pytest.fixture(scope="module")
def small_setup():
    from repro.data.synthetic import (
        SyntheticSpec,
        generate_correlated_clusters,
    )

    spec = SyntheticSpec(
        n_points=3000, dimensionality=24, n_clusters=3,
        retained_dims=5, variance_r=0.25, variance_e=0.015,
        noise_fraction=0.005,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(11))
    data = ds.points
    workload = sample_queries(data, 12, np.random.default_rng(2), k=10)
    mmdr = MMDRReducer().reduce(data, np.random.default_rng(5))
    ldr = LDRReducer().reduce(data, np.random.default_rng(5))
    return data, workload, mmdr, ldr


class TestRunQueryBatch:
    def test_batch_cost_fields(self, small_setup):
        _, workload, mmdr, _ = small_setup
        index = ExtendedIDistance(mmdr)
        cost = run_query_batch(index, workload)
        assert cost.scheme == "iDistance"
        assert cost.n_queries == 12
        assert cost.mean_page_reads > 0
        assert cost.mean_cpu_seconds > 0
        assert cost.mean_cpu_work > 0
        assert cost.index_pages == index.size_pages

    def test_cold_cache_not_cheaper_than_warm(self, small_setup):
        _, workload, mmdr, _ = small_setup
        cold = run_query_batch(
            ExtendedIDistance(mmdr), workload, cold_cache=True
        )
        warm = run_query_batch(
            ExtendedIDistance(mmdr), workload, cold_cache=False
        )
        assert warm.mean_page_reads <= cold.mean_page_reads + 1e-9

    def test_collect_ids(self, small_setup):
        _, workload, mmdr, _ = small_setup
        ids = []
        run_query_batch(ExtendedIDistance(mmdr), workload, collect_ids=ids)
        assert len(ids) == workload.n_queries
        assert all(batch.size == 10 for batch in ids)


class TestCompareSchemes:
    def test_full_panel(self, small_setup):
        _, workload, mmdr, ldr = small_setup
        panel = compare_index_schemes(mmdr, ldr, workload)
        assert set(panel) == {"iMMDR", "iLDR", "gLDR", "SeqScan"}
        for label, cost in panel.items():
            assert cost.scheme == label
            assert cost.mean_page_reads > 0

    def test_seqscan_optional(self, small_setup):
        _, workload, mmdr, ldr = small_setup
        panel = compare_index_schemes(
            mmdr, ldr, workload, include_seqscan=False
        )
        assert "SeqScan" not in panel
