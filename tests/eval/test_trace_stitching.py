"""Cross-worker trace stitching: one coherent trace from a parallel run.

``run_query_batch(workers=N, tracer=...)`` must yield a single trace in
which every worker's spans appear under the ``knn.parallel`` root with
correct parentage and per-worker attribution — and when a worker dies, the
degraded chunk's spans must still land in the trace, labelled with the
failure reason that pushed the chunk off the parallel path.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.eval.harness import run_workload
from repro.index.seqscan import SequentialScan
from repro.obs.export import write_jsonl
from repro.obs.tracer import Tracer
from repro.reduction.mmdr_adapter import model_to_reduced

from .test_harness_robustness import SabotagedIndex, fork_only


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        12,
        np.random.default_rng(9),
        k=6,
        method="perturbed",
    )


def one(spans, name):
    matches = [s for s in spans if s.name == name]
    assert len(matches) == 1, f"expected one {name}, got {len(matches)}"
    return matches[0]


def assert_coherent(tracer):
    """Structural sanity of a stitched trace: the span list is one event
    log (indices match positions) and every parent link resolves to an
    earlier span with the right depth."""
    spans = tracer.spans
    assert [s.index for s in spans] == list(range(len(spans)))
    for span in spans:
        if span.parent == -1:
            continue
        parent = spans[span.parent]
        assert parent.index < span.index
        assert span.depth == parent.depth + 1


class TestHappyPathStitching:
    @pytest.mark.obs_smoke
    def test_two_workers_one_trace_with_attribution(
        self, reduced, workload
    ):
        tracer = Tracer()
        run_workload(
            SequentialScan(reduced), workload, workers=2, tracer=tracer
        )
        assert_coherent(tracer)
        parallel = one(tracer.spans, "knn.parallel")
        chunks = [
            s for s in tracer.spans if s.name == "harness.worker_chunk"
        ]
        assert len(chunks) == 2
        assert sorted(s.attributes["worker"] for s in chunks) == [0, 1]
        for chunk in chunks:
            assert chunk.parent == parallel.index
            assert chunk.depth == parallel.depth + 1
            assert chunk.attributes["worker"] == chunk.attributes["chunk"]
            assert chunk.attributes["parent_span"] == parallel.index
            assert "pid" in chunk.attributes
            # The chunk's actual work nests beneath it.
            children = [
                s for s in tracer.spans if s.parent == chunk.index
            ]
            assert [c.name for c in children] == ["knn.batch"]
        assert parallel.attributes["degraded_chunks"] == 0
        # The stitched file stands alone as one trace.
        out_dir = Path("benchmarks") / "out" / "obs"
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"stitched_{os.getpid()}.jsonl"
        try:
            assert write_jsonl(path, tracer) > 0
        finally:
            path.unlink(missing_ok=True)

    def test_per_query_spans_ship_back_too(self, reduced, workload):
        tracer = Tracer()
        run_workload(
            SequentialScan(reduced), workload, workers=2,
            use_batch=False, tracer=tracer,
        )
        assert_coherent(tracer)
        queries = [s for s in tracer.spans if s.name == "knn.query"]
        assert len(queries) == workload.n_queries
        chunk_indexes = {
            s.index for s in tracer.spans
            if s.name == "harness.worker_chunk"
        }
        assert all(q.parent in chunk_indexes for q in queries)
        # Every query span shipped with its cost delta intact.
        assert all(q.cost is not None for q in queries)

    def test_worker_metrics_are_merged(self, reduced, workload):
        tracer = Tracer()
        run_workload(
            SequentialScan(reduced), workload, workers=2, tracer=tracer
        )
        assert "knn.batch_qps" in tracer.metrics.gauges

    def test_results_bit_identical_with_and_without_tracer(
        self, reduced, workload
    ):
        plain = run_workload(SequentialScan(reduced), workload, workers=2)
        traced = run_workload(
            SequentialScan(reduced), workload, workers=2, tracer=Tracer()
        )
        assert np.array_equal(plain[0], traced[0])
        assert np.array_equal(plain[1], traced[1])
        for a, b in zip(plain[2], traced[2]):
            assert a.page_reads == b.page_reads
            assert a.distance_computations == b.distance_computations
            assert a.distance_flops == b.distance_flops
            assert a.key_comparisons == b.key_comparisons


@fork_only
class TestDegradedChunkStitching:
    def test_killed_workers_leave_degraded_spans_with_reasons(
        self, reduced, workload
    ):
        tracer = Tracer()
        index = SabotagedIndex(SequentialScan(reduced), "kill_always")
        run_workload(index, workload, workers=2, tracer=tracer)
        assert_coherent(tracer)
        parallel = one(tracer.spans, "knn.parallel")
        degraded = [
            s for s in tracer.spans if s.name == "harness.degraded_chunk"
        ]
        assert len(degraded) == 2
        assert sorted(s.attributes["chunk"] for s in degraded) == [0, 1]
        for span in degraded:
            assert span.parent == parallel.index
            reason = span.attributes["reason"]
            assert isinstance(reason, str) and reason
            assert reason != "unknown"
            # The in-process fallback's work nests under the degraded
            # span, so the trace stays complete.
            children = [
                s for s in tracer.spans if s.parent == span.index
            ]
            assert children
            assert span.cost is not None
        # Dead workers shipped nothing back.
        assert not any(
            s.name == "harness.worker_chunk" for s in tracer.spans
        )
        assert parallel.attributes["degraded_chunks"] == 2
        assert tracer.metrics.counters[
            "harness.degraded_chunks"
        ].value == 2

    def test_recovered_retry_still_stitches_worker_spans(
        self, reduced, workload, tmp_path
    ):
        tracer = Tracer()
        index = SabotagedIndex(
            SequentialScan(reduced), "kill_once", tmp_path / "killed"
        )
        run_workload(index, workload, workers=2, tracer=tracer)
        assert_coherent(tracer)
        # The retry round succeeded, so every chunk is a worker chunk and
        # nothing degraded.
        chunks = [
            s for s in tracer.spans if s.name == "harness.worker_chunk"
        ]
        assert sorted(s.attributes["chunk"] for s in chunks) == [0, 1]
        assert not any(
            s.name == "harness.degraded_chunk" for s in tracer.spans
        )
