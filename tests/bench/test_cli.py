"""The ``python -m repro.bench`` gate: exit codes and artifacts."""

import json

import pytest

from repro.bench import WorkloadSpec
from repro.bench import cli


@pytest.fixture(autouse=True)
def tiny_registry(monkeypatch):
    """Swap the default workload registry for one tiny spec so CLI tests
    run in well under a second."""
    spec = WorkloadSpec(
        name="tiny",
        n_points=500,
        dimensionality=8,
        n_clusters=2,
        retained_dims=3,
        n_queries=5,
        k=4,
        n_inserts=3,
        n_deletes=2,
    )
    monkeypatch.setattr(cli, "DEFAULT_SPECS", {"tiny": spec})
    return spec


@pytest.fixture
def dirs(tmp_path):
    return {
        "baselines": str(tmp_path / "baselines"),
        "out": str(tmp_path / "out"),
    }


def run_cli(*argv):
    return cli.main(list(argv))


class TestUpdateAndCompare:
    def test_update_then_compare_passes(self, dirs, tmp_path):
        assert run_cli("update", "--baselines", dirs["baselines"]) == 0
        assert (tmp_path / "baselines" / "tiny.json").exists()
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 0
        )
        # CI artifacts: current report, obs trace, regression table.
        assert (tmp_path / "out" / "tiny.json").exists()
        assert (tmp_path / "out" / "tiny.trace.jsonl").exists()
        table = (tmp_path / "out" / "regression_table.txt").read_text()
        assert "OK: no gating drift" in table

    def test_perturbed_counter_fails_gate(self, dirs, tmp_path):
        run_cli("update", "--baselines", dirs["baselines"])
        path = tmp_path / "baselines" / "tiny.json"
        data = json.loads(path.read_text())
        data["counters"]["page_reads_cold"] += 1
        path.write_text(json.dumps(data))
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 1
        )
        table = (tmp_path / "out" / "regression_table.txt").read_text()
        assert "DRIFT" in table

    def test_perturbed_fingerprint_fails_gate(self, dirs, tmp_path):
        run_cli("update", "--baselines", dirs["baselines"])
        path = tmp_path / "baselines" / "tiny.json"
        data = json.loads(path.read_text())
        data["fingerprints"]["sequential"] = "sha256:deadbeef"
        path.write_text(json.dumps(data))
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 1
        )

    def test_compare_reruns_the_baselines_spec_not_the_registry(
        self, dirs, tmp_path, monkeypatch
    ):
        """A registry edit must not silently move the goalposts: compare
        replays the spec embedded in the baseline, so only the baseline
        file (reviewed in a PR diff) defines the gate."""
        run_cli("update", "--baselines", dirs["baselines"])
        drifted = WorkloadSpec(
            name="tiny",
            n_points=450,  # different workload under the same name
            dimensionality=8,
            n_clusters=2,
            retained_dims=3,
            n_queries=5,
            k=4,
        )
        monkeypatch.setattr(cli, "DEFAULT_SPECS", {"tiny": drifted})
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 0
        )


class TestErrorHandling:
    def test_compare_without_baselines_is_usage_error(self, dirs):
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 2
        )

    def test_compare_unknown_name_is_usage_error(self, dirs):
        run_cli("update", "--baselines", dirs["baselines"])
        assert (
            run_cli(
                "compare", "nope",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 2
        )

    def test_corrupt_baseline_is_usage_error(self, dirs, tmp_path):
        run_cli("update", "--baselines", dirs["baselines"])
        (tmp_path / "baselines" / "tiny.json").write_text("{broken")
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 2
        )

    def test_schema_version_mismatch_is_usage_error(self, dirs, tmp_path):
        run_cli("update", "--baselines", dirs["baselines"])
        path = tmp_path / "baselines" / "tiny.json"
        data = json.loads(path.read_text())
        data["schema_version"] = 999
        path.write_text(json.dumps(data))
        assert (
            run_cli(
                "compare",
                "--baselines", dirs["baselines"],
                "--out", dirs["out"],
            )
            == 2
        )

    def test_run_unknown_name_exits(self, dirs):
        with pytest.raises(SystemExit):
            run_cli("run", "bogus", "--out", dirs["out"])


class TestRun:
    def test_run_writes_report_and_trace(self, dirs, tmp_path):
        assert run_cli("run", "--out", dirs["out"]) == 0
        report = json.loads((tmp_path / "out" / "tiny.json").read_text())
        assert report["schema_version"] == 1
        assert (tmp_path / "out" / "tiny.trace.jsonl").exists()
