"""BenchReport schema: round-trips, version gating, and the flat views."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchReport,
    BenchReportError,
    recovery_view,
    throughput_view,
    validate_view,
)
from repro.bench.report import RECOVERY_VIEW_KEYS, THROUGHPUT_VIEW_KEYS

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def report():
    return BenchReport(
        name="unit",
        spec={"scheme": "iMMDR", "n_points": 100},
        counters={"page_reads_cold": 42, "buffer_hit_rate_warm": 0.875},
        advisory={"qps_sequential": 123.4},
        fingerprints={"sequential": "sha256:00ff"},
    )


class TestRoundTrip:
    def test_dict_round_trip(self, report):
        assert BenchReport.from_dict(report.to_dict()) == report

    def test_json_round_trip(self, report):
        assert BenchReport.loads(report.dumps()) == report

    def test_file_round_trip(self, report, tmp_path):
        path = report.write(tmp_path / "nested" / "unit.json")
        assert BenchReport.load(path) == report

    def test_written_file_is_plain_sorted_json(self, report, tmp_path):
        path = report.write(tmp_path / "unit.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert set(data) == {
            "schema_version", "name", "spec", "counters", "advisory",
            "fingerprints",
        }


class TestAdvisoryHealthSection:
    def test_empty_health_is_omitted_from_to_dict(self, report):
        assert "health" not in report.to_dict()

    def test_from_dict_without_health_yields_empty(self, report):
        loaded = BenchReport.from_dict(report.to_dict())
        assert loaded.health == {}

    def test_populated_health_round_trips(self, report):
        health = {
            "ok": False,
            "scheme": "iDistance",
            "n_samples": 3,
            "gauges": {"mpe_drift_max": 0.7},
            "status": {"mpe_drift_max": "warn"},
            "warnings": ["mpe_drift_max=0.7 is above 0.5"],
        }
        full = BenchReport(
            name=report.name,
            spec=report.spec,
            counters=report.counters,
            advisory=report.advisory,
            fingerprints=report.fingerprints,
            health=health,
        )
        data = full.to_dict()
        assert data["health"] == health
        assert BenchReport.from_dict(data) == full

    def test_non_object_health_rejected(self, report):
        data = report.to_dict()
        data["health"] = ["warn"]
        with pytest.raises(BenchReportError, match="health"):
            BenchReport.from_dict(data)

    def test_unknown_fields_still_rejected_alongside_health(self, report):
        data = report.to_dict()
        data["health"] = {"ok": True}
        data["wall_clock"] = 1.0
        with pytest.raises(BenchReportError, match="unknown"):
            BenchReport.from_dict(data)


class TestSchemaRejection:
    def test_version_mismatch(self, report):
        data = report.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchReportError, match="schema version"):
            BenchReport.from_dict(data)

    def test_missing_version(self, report):
        data = report.to_dict()
        del data["schema_version"]
        with pytest.raises(BenchReportError, match="schema version"):
            BenchReport.from_dict(data)

    def test_missing_section(self, report):
        data = report.to_dict()
        del data["counters"]
        with pytest.raises(BenchReportError, match="missing"):
            BenchReport.from_dict(data)

    def test_unknown_field(self, report):
        data = report.to_dict()
        data["wall_clock"] = 1.0
        with pytest.raises(BenchReportError, match="unknown"):
            BenchReport.from_dict(data)

    def test_non_numeric_counter(self, report):
        data = report.to_dict()
        data["counters"]["page_reads_cold"] = "42"
        with pytest.raises(BenchReportError, match="number"):
            BenchReport.from_dict(data)

    def test_boolean_counter_rejected(self, report):
        data = report.to_dict()
        data["counters"]["page_reads_cold"] = True
        with pytest.raises(BenchReportError, match="number"):
            BenchReport.from_dict(data)

    def test_non_string_fingerprint(self, report):
        data = report.to_dict()
        data["fingerprints"]["sequential"] = 7
        with pytest.raises(BenchReportError, match="fingerprint"):
            BenchReport.from_dict(data)

    def test_non_object(self):
        with pytest.raises(BenchReportError, match="JSON object"):
            BenchReport.from_dict([1, 2])

    def test_invalid_json_text(self):
        with pytest.raises(BenchReportError, match="not valid JSON"):
            BenchReport.loads("{nope")


class TestViews:
    def _full_report(self):
        return BenchReport(
            name="views",
            spec={},
            counters={
                "n_points": 10_000,
                "n_ops": 200,
                "wal_bytes": 123,
                "records_replayed": 600,
                "records_replayed_after_checkpoint": 1,
            },
            advisory={
                "qps_sequential": 1.0,
                "qps_batch": 3.0,
                "qps_parallel": 2.0,
                "speedup_batch": 3.0,
                "update_s": 0.1,
                "update_ops_per_s": 2000.0,
                "checkpoint_s": 0.01,
                "recover_s": 0.02,
                "recover_after_checkpoint_s": 0.001,
            },
        )

    def test_throughput_view_shape(self):
        view = throughput_view(self._full_report())
        assert tuple(view) == THROUGHPUT_VIEW_KEYS
        validate_view("throughput", view)

    def test_recovery_view_shape(self):
        view = recovery_view(self._full_report())
        assert tuple(view) == RECOVERY_VIEW_KEYS
        validate_view("recovery", view)

    def test_view_missing_metric(self, report):
        with pytest.raises(BenchReportError, match="lacks view metrics"):
            throughput_view(report)

    def test_validate_view_rejects_extra_and_missing(self):
        with pytest.raises(BenchReportError, match="key mismatch"):
            validate_view("throughput", {"qps_sequential": 1.0, "bogus": 2})
        with pytest.raises(BenchReportError, match="unknown view kind"):
            validate_view("nope", {})
        with pytest.raises(BenchReportError, match="JSON object"):
            validate_view("throughput", [1])

    @pytest.mark.parametrize(
        "filename, kind",
        [
            ("BENCH_throughput.json", "throughput"),
            ("BENCH_recovery.json", "recovery"),
        ],
    )
    def test_committed_bench_outputs_parse_as_views(self, filename, kind):
        """The repo-root BENCH_*.json files (now views of BenchReports)
        must stay parseable under the view schema."""
        path = REPO_ROOT / filename
        if not path.exists():
            pytest.skip(f"{filename} not present in this checkout")
        validate_view(kind, json.loads(path.read_text()))


class TestCommittedBaselines:
    def test_committed_baselines_parse(self):
        """Every committed golden baseline must load under the current
        schema — a version bump without re-baselining fails here, not in
        CI's bench gate."""
        baseline_dir = REPO_ROOT / "benchmarks" / "baselines"
        paths = sorted(baseline_dir.glob("*.json"))
        assert paths, "no committed baselines found"
        for path in paths:
            report = BenchReport.load(path)
            assert report.name == path.stem
            assert report.fingerprints, f"{path} has no fingerprints"
            assert report.counters, f"{path} has no counters"
