"""End-to-end runner contract on a tiny workload (all three schemes)."""

import numpy as np
import pytest

from repro.bench import BenchReport, WorkloadSpec, run_bench
from repro.obs.tracer import Tracer


def tiny_spec(scheme="iMMDR", reducer="mmdr", **overrides):
    params = dict(
        name=f"tiny_{scheme}",
        scheme=scheme,
        reducer=reducer,
        n_points=600,
        dimensionality=8,
        n_clusters=2,
        retained_dims=3,
        n_queries=6,
        k=5,
        n_inserts=4,
        n_deletes=3,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


@pytest.fixture(scope="module")
def immdr_report():
    return run_bench(tiny_spec())


class TestFingerprintAgreement:
    def test_all_read_modes_agree(self, immdr_report):
        fps = immdr_report.fingerprints
        assert fps["sequential"] == fps["batch"] == fps["faulted"]

    def test_recovered_matches_live_updated(self, immdr_report):
        fps = immdr_report.fingerprints
        assert fps["recovered"] == fps["updated"]

    @pytest.mark.parametrize(
        "scheme, reducer", [("gLDR", "ldr"), ("SeqScan", "mmdr")]
    )
    def test_other_schemes_agree_too(self, scheme, reducer, tmp_path):
        report = run_bench(
            tiny_spec(scheme=scheme, reducer=reducer), workdir=tmp_path
        )
        fps = report.fingerprints
        assert fps["sequential"] == fps["batch"] == fps["faulted"]
        assert fps["recovered"] == fps["updated"]


class TestReportContents:
    def test_report_validates_under_schema(self, immdr_report):
        assert BenchReport.loads(immdr_report.dumps()) == immdr_report

    def test_logical_counters_present_and_positive(self, immdr_report):
        counters = immdr_report.counters
        for name in (
            "page_reads_cold",
            "distance_computations",
            "cpu_work",
            "index_pages",
        ):
            assert counters[name] > 0, name
        assert 0.0 <= counters["buffer_hit_rate_warm"] <= 1.0

    def test_recovery_counters_reflect_update_stream(self, immdr_report):
        counters = immdr_report.counters
        assert counters["n_update_ops"] == 7
        assert counters["wal_metas_applied"] == counters["n_update_ops"]
        assert counters["wal_txns_committed"] == counters["n_update_ops"]
        assert (
            counters["wal_records_after_checkpoint"]
            < counters["wal_records_replayed"]
        )
        assert counters["live_count_after_updates"] == 600 + 4 - 3

    def test_wall_clock_is_advisory_only(self, immdr_report):
        assert all(
            "seconds" in name or name.startswith(("qps", "speedup", "update"))
            for name in immdr_report.advisory
        )
        assert "wall_seconds_sequential" in immdr_report.advisory

    def test_spec_embedded_verbatim(self, immdr_report):
        spec = WorkloadSpec.from_dict(immdr_report.spec)
        assert spec == tiny_spec()


class TestDeterminism:
    def test_rerun_reproduces_counters_and_fingerprints(self, immdr_report):
        again = run_bench(tiny_spec())
        assert again.counters == immdr_report.counters
        assert again.fingerprints == immdr_report.fingerprints

    def test_updates_change_answers_or_not_but_deterministically(
        self, immdr_report
    ):
        # Whatever the update stream did to the answers, it did the same
        # thing twice; the pre-update fingerprint is the batch-verified one.
        assert immdr_report.fingerprints["sequential"]


class TestNoUpdateLeg:
    def test_read_only_spec_skips_recovery_counters(self):
        report = run_bench(
            tiny_spec(n_inserts=0, n_deletes=0, name="tiny_ro")
        )
        assert "updated" not in report.fingerprints
        assert "wal_records_replayed" not in report.counters
        assert "recover_seconds" not in report.advisory


class TestTracing:
    def test_legs_emit_spans(self, tmp_path):
        tracer = Tracer()
        run_bench(tiny_spec(), tracer=tracer, workdir=tmp_path)
        names = {span.name for span in tracer.spans}
        assert {
            "bench.build",
            "bench.sequential",
            "bench.batch",
            "bench.warm",
            "bench.faulted",
            "bench.updates",
            "bench.recover",
        } <= names

    def test_faults_actually_injected(self):
        spec = tiny_spec(transient_read_prob=0.2, name="tiny_faulty")
        report = run_bench(spec)
        assert report.counters["faults_injected"] > 0
        assert (
            report.counters["faults_retried"]
            >= report.counters["faults_injected"]
        )


class TestWorkdir:
    def test_explicit_workdir_keeps_artifacts(self, tmp_path):
        run_bench(tiny_spec(), workdir=tmp_path / "bench")
        assert (tmp_path / "bench" / "wal.log").exists()
        assert (tmp_path / "bench" / "ckpt0").exists()
