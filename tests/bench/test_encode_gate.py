"""Approx-tier bench plumbing: spec elision, recall_curve, recall band.

Byte-stability regression (ISSUE satellite): reports and specs written
before the approximate tier existed must keep serializing to the same
bytes — ``recall_curve`` is omitted when empty and the approx spec
fields are elided at their defaults, so committed golden baselines for
exact workloads never churn.
"""

import pytest

from repro.bench import (
    BenchReport,
    ToleranceBand,
    WorkloadSpec,
    compare_reports,
)
from repro.bench.compare import DEFAULT_TOLERANCES


def _report(**overrides):
    base = dict(
        name="unit",
        spec={"scheme": "iMMDR", "n_points": 100},
        counters={"page_reads_cold": 42},
        advisory={},
        fingerprints={"sequential": "sha256:00ff"},
    )
    base.update(overrides)
    return BenchReport(**base)


class TestRecallCurveSection:
    def test_empty_curve_omitted_from_dict(self):
        data = _report().to_dict()
        assert "recall_curve" not in data

    def test_pre_approx_dict_loads(self):
        # A baseline written before recall_curve existed round-trips.
        data = _report().to_dict()
        assert BenchReport.from_dict(data) == _report()

    def test_populated_curve_round_trips(self):
        report = _report(recall_curve={"1": 0.875, "4": 1.0})
        restored = BenchReport.from_dict(report.to_dict())
        assert restored.recall_curve == {"1": 0.875, "4": 1.0}
        assert restored == report

    def test_curve_values_validated(self):
        data = _report().to_dict()
        data["recall_curve"] = {"1": "high"}
        from repro.bench import BenchReportError

        with pytest.raises(BenchReportError):
            BenchReport.from_dict(data)

    def test_curve_never_gates(self):
        baseline = _report(recall_curve={"1": 0.2})
        current = _report(recall_curve={"1": 0.9})
        assert compare_reports(baseline, current).ok


class TestSpecElision:
    def test_exact_spec_dict_has_no_approx_fields(self):
        spec = WorkloadSpec(name="w", scheme="iMMDR", reducer="mmdr")
        data = spec.to_dict()
        for field_name in WorkloadSpec._APPROX_FIELDS:
            assert field_name not in data

    def test_pre_approx_spec_dict_loads_with_defaults(self):
        spec = WorkloadSpec(name="w", scheme="iMMDR", reducer="mmdr")
        restored = WorkloadSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.mode == "exact"
        assert restored.rerank_depth == 4

    def test_approx_spec_round_trips(self):
        spec = WorkloadSpec(
            name="w", scheme="iMMDR", reducer="mmdr", mode="approx",
            pq_subquantizers=2, pq_codebook=32, rerank_depth=6,
            encode_seed=5,
        )
        data = spec.to_dict()
        assert data["mode"] == "approx"
        assert WorkloadSpec.from_dict(data) == spec

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="w", scheme="iMMDR", reducer="mmdr", mode="fuzzy"
            )


class TestRecallBand:
    def test_band_registered(self):
        assert DEFAULT_TOLERANCES["recall_at_k"] == ToleranceBand(
            abs_slack=0.02
        )

    def test_drift_inside_band_passes(self):
        baseline = _report(counters={"recall_at_k": 1.0})
        current = _report(counters={"recall_at_k": 0.985})
        assert compare_reports(baseline, current).ok

    def test_drift_outside_band_gates(self):
        baseline = _report(counters={"recall_at_k": 1.0})
        current = _report(counters={"recall_at_k": 0.9})
        comparison = compare_reports(baseline, current)
        assert not comparison.ok
        assert comparison.regressions[0].name == "recall_at_k"
