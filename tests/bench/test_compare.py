"""Comparator gate rules: exactness, tolerance bands, advisory immunity."""

import dataclasses

import pytest

from repro.bench import (
    BenchReport,
    Comparison,
    MetricDelta,
    ToleranceBand,
    compare_reports,
    format_table,
)


def make_report(**overrides):
    base = dict(
        name="unit",
        spec={"scheme": "iMMDR", "n_points": 100},
        counters={"page_reads_cold": 100, "buffer_hit_rate_warm": 0.9},
        advisory={"qps_sequential": 1000.0},
        fingerprints={"sequential": "sha256:aa", "batch": "sha256:aa"},
    )
    base.update(overrides)
    return BenchReport(**base)


class TestGate:
    def test_identical_reports_pass(self):
        comparison = compare_reports(make_report(), make_report())
        assert comparison.ok
        assert not comparison.regressions

    def test_counter_drift_gates(self):
        current = make_report(
            counters={"page_reads_cold": 101, "buffer_hit_rate_warm": 0.9}
        )
        comparison = compare_reports(make_report(), current)
        assert not comparison.ok
        (row,) = comparison.regressions
        assert (row.section, row.name, row.status) == (
            "counter", "page_reads_cold", "drift",
        )

    def test_fingerprint_drift_gates(self):
        current = make_report(
            fingerprints={"sequential": "sha256:bb", "batch": "sha256:aa"}
        )
        comparison = compare_reports(make_report(), current)
        assert [r.name for r in comparison.regressions] == ["sequential"]

    def test_advisory_drift_never_gates(self):
        current = make_report(advisory={"qps_sequential": 1.0})
        comparison = compare_reports(make_report(), current)
        assert comparison.ok
        assert any(
            r.section == "advisory" and r.status == "info"
            for r in comparison.rows
        )

    def test_missing_counter_gates(self):
        current = make_report(counters={"page_reads_cold": 100})
        comparison = compare_reports(make_report(), current)
        assert [r.status for r in comparison.regressions] == ["missing"]

    def test_new_counter_gates(self):
        current = make_report(
            counters={
                "page_reads_cold": 100,
                "buffer_hit_rate_warm": 0.9,
                "shiny_new": 1,
            }
        )
        comparison = compare_reports(make_report(), current)
        assert [r.status for r in comparison.regressions] == ["new"]

    def test_spec_change_gates(self):
        current = make_report(spec={"scheme": "iMMDR", "n_points": 200})
        comparison = compare_reports(make_report(), current)
        assert any(
            r.section == "spec" and r.name == "n_points"
            for r in comparison.regressions
        )

    def test_missing_advisory_is_informational(self):
        current = make_report(advisory={})
        assert compare_reports(make_report(), current).ok


class TestToleranceBands:
    def test_within_band_passes(self):
        current = make_report(
            counters={"page_reads_cold": 103, "buffer_hit_rate_warm": 0.9}
        )
        comparison = compare_reports(
            make_report(), current,
            tolerances={"page_reads_cold": ToleranceBand(rel_slack=0.05)},
        )
        assert comparison.ok

    def test_outside_band_gates(self):
        current = make_report(
            counters={"page_reads_cold": 110, "buffer_hit_rate_warm": 0.9}
        )
        comparison = compare_reports(
            make_report(), current,
            tolerances={"page_reads_cold": ToleranceBand(rel_slack=0.05)},
        )
        assert not comparison.ok

    def test_abs_slack(self):
        band = ToleranceBand(abs_slack=2.0)
        assert band.allows(10, 12)
        assert not band.allows(10, 13)

    def test_default_band_absorbs_hit_rate_rounding(self):
        current = make_report(
            counters={
                "page_reads_cold": 100,
                "buffer_hit_rate_warm": 0.9 + 5e-7,
            }
        )
        assert compare_reports(make_report(), current).ok

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            ToleranceBand(rel_slack=-0.1)


class TestTable:
    def test_table_lists_every_metric_and_verdict(self):
        baseline = make_report()
        current = make_report(
            counters={"page_reads_cold": 999, "buffer_hit_rate_warm": 0.9}
        )
        table = format_table([compare_reports(baseline, current)])
        assert "page_reads_cold" in table
        assert "DRIFT" in table and "unit" in table
        assert "qps_sequential" in table  # advisory rows shown

    def test_ok_verdict(self):
        table = format_table(
            [compare_reports(make_report(), make_report())]
        )
        assert "OK: no gating drift" in table

    def test_long_fingerprints_are_elided(self):
        fp = "sha256:" + "a" * 64
        comparison = Comparison(
            name="x",
            rows=[MetricDelta("fingerprint", "sequential", fp, fp, "ok")],
        )
        table = format_table([comparison])
        assert "…" in table
        assert fp not in table

    def test_gating_property(self):
        row = dataclasses.replace(
            MetricDelta("counter", "m", 1, 2, "drift")
        )
        assert row.gating
        assert not MetricDelta("advisory", "m", 1, 2, "info").gating
