"""WorkloadSpec: serialization hygiene and deterministic builders."""

import numpy as np
import pytest

from repro.bench import DEFAULT_SPECS, WorkloadSpec


TINY = dict(
    name="tiny", n_points=400, dimensionality=8, n_clusters=2,
    retained_dims=3, n_queries=4, k=3,
)


class TestSerialization:
    def test_round_trip(self):
        spec = WorkloadSpec(**TINY)
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        data = WorkloadSpec(**TINY).to_dict()
        data["n_pionts"] = 999  # the typo this guard exists for
        with pytest.raises(ValueError, match="unknown WorkloadSpec fields"):
            WorkloadSpec.from_dict(data)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            WorkloadSpec(**dict(TINY, scheme="btree"))

    def test_unknown_reducer_rejected(self):
        with pytest.raises(ValueError, match="unknown reducer"):
            WorkloadSpec(**dict(TINY, reducer="pca2"))


class TestBuilders:
    def test_dataset_and_queries_are_seed_deterministic(self):
        spec = WorkloadSpec(**TINY)
        points_a, points_b = spec.build_points(), spec.build_points()
        assert np.array_equal(points_a, points_b)
        wl_a = spec.build_workload(points_a)
        wl_b = spec.build_workload(points_b)
        assert np.array_equal(wl_a.queries, wl_b.queries)
        assert wl_a.k == spec.k

    def test_update_ops_are_seed_deterministic(self):
        spec = WorkloadSpec(**dict(TINY, n_inserts=3, n_deletes=2))
        points = spec.build_points()
        ops_a = spec.build_ops(points, spec.n_points)
        ops_b = spec.build_ops(points, spec.n_points)
        assert len(ops_a) == 5
        assert [op[0] for op in ops_a] == [op[0] for op in ops_b]

    def test_no_updates_means_no_ops(self):
        spec = WorkloadSpec(**dict(TINY, n_inserts=0, n_deletes=0))
        assert not spec.has_updates
        assert spec.build_ops(spec.build_points(), spec.n_points) == []


class TestRegistry:
    def test_default_specs_cover_every_scheme(self):
        assert {spec.scheme for spec in DEFAULT_SPECS.values()} == {
            "iMMDR", "gLDR", "SeqScan",
        }

    def test_names_match_keys(self):
        for name, spec in DEFAULT_SPECS.items():
            assert spec.name == name

    def test_all_default_specs_exercise_updates(self):
        assert all(spec.has_updates for spec in DEFAULT_SPECS.values())
