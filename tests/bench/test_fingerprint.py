"""Result-fingerprint semantics: stability, order, quantization."""

import numpy as np
import pytest

from repro.bench import result_fingerprint


@pytest.fixture
def answers():
    rng = np.random.default_rng(9)
    ids = rng.integers(0, 1000, size=(8, 10)).astype(np.int64)
    dists = np.sort(rng.random((8, 10)), axis=1)
    return ids, dists


class TestStability:
    def test_deterministic(self, answers):
        ids, dists = answers
        assert result_fingerprint(ids, dists) == result_fingerprint(
            ids.copy(), dists.copy()
        )

    def test_independent_of_input_dtype_and_layout(self, answers):
        ids, dists = answers
        fp = result_fingerprint(ids, dists)
        assert result_fingerprint(ids.astype(np.int32), dists) == fp
        assert (
            result_fingerprint(
                np.asfortranarray(ids), np.asfortranarray(dists)
            )
            == fp
        )

    def test_has_stable_prefix(self, answers):
        assert result_fingerprint(*answers).startswith("sha256:")


class TestSensitivity:
    def test_id_change_changes_hash(self, answers):
        ids, dists = answers
        other = ids.copy()
        other[3, 7] += 1
        assert result_fingerprint(other, dists) != result_fingerprint(
            ids, dists
        )

    def test_row_order_changes_hash(self, answers):
        ids, dists = answers
        assert result_fingerprint(ids[::-1], dists[::-1]) != (
            result_fingerprint(ids, dists)
        )

    def test_shape_is_covered(self, answers):
        ids, dists = answers
        flat = result_fingerprint(ids.ravel(), dists.ravel())
        assert flat != result_fingerprint(ids, dists)

    def test_distance_drift_beyond_quantum_changes_hash(self, answers):
        ids, dists = answers
        moved = dists.copy()
        moved[0, 0] += 1e-6
        assert result_fingerprint(ids, moved) != result_fingerprint(
            ids, dists
        )


class TestQuantization:
    def test_sub_quantum_jitter_is_invisible(self, answers):
        ids, dists = answers
        jittered = dists + 1e-13  # well below the 1e-9 default quantum
        assert result_fingerprint(ids, jittered) == result_fingerprint(
            ids, dists
        )

    def test_custom_quantum(self):
        ids = np.arange(4, dtype=np.int64)
        dists = np.array([0.1, 0.9, 2.1, 3.4])  # bucket centers for q=0.5
        coarse = result_fingerprint(ids, dists, quantum=0.5)
        # +0.01 stays inside each value's 0.5-wide bucket...
        assert coarse == result_fingerprint(ids, dists + 0.01, quantum=0.5)
        # ...but +0.3 crosses a bucket edge and must change the hash.
        assert coarse != result_fingerprint(ids, dists + 0.3, quantum=0.5)

    def test_nan_rows_fingerprint_deterministically(self, answers):
        ids, dists = answers
        bad = dists.copy()
        bad[2] = np.nan
        ids_bad = ids.copy()
        ids_bad[2] = -1
        assert result_fingerprint(ids_bad, bad) == result_fingerprint(
            ids_bad, bad.copy()
        )
        assert result_fingerprint(ids_bad, bad) != result_fingerprint(
            ids, dists
        )


class TestValidation:
    def test_shape_mismatch_rejected(self, answers):
        ids, dists = answers
        with pytest.raises(ValueError, match="shape"):
            result_fingerprint(ids[:, :5], dists)

    def test_bad_quantum_rejected(self, answers):
        with pytest.raises(ValueError, match="quantum"):
            result_fingerprint(*answers, quantum=0.0)
