"""GenerationStore: layout, atomic publish, truncation, GC, load."""

import numpy as np
import pytest

from repro.ingest import (
    GenerationError,
    GenerationMissingError,
    GenerationStore,
    build_from_vectors,
)


def _install(store, base_points, reduce_fn, generation, ingest_seq=0,
             parent=None):
    vectors = {i: base_points[i] for i in range(base_points.shape[0])}
    index, matrix, rid_map = build_from_vectors(
        vectors, reduce_fn, "SeqScan"
    )
    store.install(
        index,
        matrix,
        rid_map,
        generation=generation,
        ingest_seq=ingest_seq,
        parent=parent,
    )
    index.store.close()
    return rid_map


class TestPublish:
    def test_nothing_published_initially(self, tmp_path):
        store = GenerationStore(tmp_path)
        assert store.read_current() is None
        with pytest.raises(GenerationMissingError):
            store.load_current()

    def test_install_is_invisible_until_publish(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(store, base_points, reduce_fn, generation=1)
        assert store.read_current() is None
        assert store.is_complete(1)
        store.publish(1)
        assert store.read_current() == 1

    def test_publish_refuses_incomplete_generation(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(store, base_points, reduce_fn, generation=1)
        # Tear off the manifest — the last file written, so its absence
        # is exactly "the build crashed somewhere".
        (store.gen_dir(1) / "GENERATION.json").unlink()
        with pytest.raises(GenerationError, match="incomplete"):
            store.publish(1)

    def test_manifest_round_trip_and_checksum(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(
            store, base_points, reduce_fn, generation=2, ingest_seq=17,
            parent=1,
        )
        manifest = store.read_manifest(2)
        assert manifest["generation"] == 2
        assert manifest["parent"] == 1
        assert manifest["ingest_seq"] == 17
        assert manifest["n_points"] == base_points.shape[0]
        # Tampering must be caught by the self-checksum.
        path = store.gen_dir(2) / "GENERATION.json"
        path.write_text(path.read_text().replace('"ingest_seq": 17',
                                                 '"ingest_seq": 99'))
        with pytest.raises(GenerationError, match="checksum"):
            store.read_manifest(2)

    def test_corrupt_current_pointer_is_typed(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(store, base_points, reduce_fn, generation=1)
        store.publish(1)
        store.current_path.write_text("1\n12345\n")  # wrong checksum
        with pytest.raises(GenerationError, match="checksum"):
            store.read_current()


class TestTruncateAndGC:
    def test_truncate_keeps_only_current(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(store, base_points, reduce_fn, generation=1)
        store.publish(1)
        _install(store, base_points, reduce_fn, generation=2, parent=1)
        store.publish(2)
        removed = store.truncate(keep=2)
        assert removed == [1]
        assert store.list_generations() == [2]

    def test_truncate_refuses_unpublished_keep(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(store, base_points, reduce_fn, generation=1)
        store.publish(1)
        _install(store, base_points, reduce_fn, generation=2, parent=1)
        with pytest.raises(GenerationError, match="CURRENT"):
            store.truncate(keep=2)

    def test_collect_garbage_removes_unreferenced(
        self, tmp_path, base_points, reduce_fn
    ):
        store = GenerationStore(tmp_path)
        _install(store, base_points, reduce_fn, generation=1)
        store.publish(1)
        _install(store, base_points, reduce_fn, generation=2, parent=1)
        # Crash before publish: gen 2 is garbage on the next open.
        assert store.collect_garbage() == [2]
        assert store.list_generations() == [1]
        index, points, rid_map, manifest, _ = store.load_current()
        assert manifest["generation"] == 1
        assert points.shape == base_points.shape
        assert np.array_equal(rid_map, np.arange(base_points.shape[0]))
        index.store.close()
