"""IngestPipeline: the mutation path, drift triggers, reorg, reopen."""

import numpy as np
import pytest

from repro.ingest import (
    IngestError,
    IngestPipeline,
    IngestThresholds,
    OpLog,
    batch_fingerprint,
    build_from_vectors,
)
QUIET = IngestThresholds(
    drift_score=float("inf"),
    delta_fraction=float("inf"),
    tombstone_fraction=float("inf"),
)


@pytest.fixture
def pipeline(tmp_path, base_points, reduce_fn):
    pipe, report = IngestPipeline.create(
        tmp_path / "pipe",
        base_points,
        reduce_fn,
        "iMMDR",
        thresholds=QUIET,
        auto_reorg=False,
    )
    assert report.generation == 1
    yield pipe
    pipe.close()


class TestOpLog:
    def test_append_scan_round_trip(self, tmp_path):
        log = OpLog(tmp_path / "oplog.log")
        s1 = log.append(("delete", 3))
        s2 = log.append(("insert", [1.0], 9, 0.5))
        log.close()
        reopened = OpLog(tmp_path / "oplog.log")
        assert [s for s, _ in reopened.entries] == [s1, s2]
        assert reopened.entries[0][1] == ("delete", 3)
        assert reopened.next_seq == s2 + 1
        reopened.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "oplog.log"
        log = OpLog(path)
        log.append(("delete", 1))
        log.append(("delete", 2))
        log.close()
        path.write_bytes(path.read_bytes()[:-5])
        reopened = OpLog(path)
        assert [op for _, op in reopened.entries] == [("delete", 1)]
        reopened.close()

    def test_drop_through_rewrites_but_keeps_seqs(self, tmp_path):
        log = OpLog(tmp_path / "oplog.log")
        for rid in range(4):
            log.append(("delete", rid))
        assert log.drop_through(2) == 2
        assert [s for s, _ in log.entries] == [3, 4]
        log.ensure_next_seq(10)
        assert log.append(("delete", 9)) == 11
        log.close()


class TestMutationPath:
    def test_insert_delete_and_query_in_global_rids(
        self, pipeline, base_points, ingest_queries
    ):
        n = base_points.shape[0]
        new_point = base_points[0] + 0.01
        pipeline.apply(("insert", new_point, n, 1.0))
        pipeline.apply(("delete", 0))
        assert pipeline.n_live == n  # +1 insert, -1 delete
        result = pipeline.knn_batch(ingest_queries, 5)
        assert result.ids.shape == (ingest_queries.shape[0], 5)
        assert 0 not in set(result.ids.ravel().tolist())
        assert result.ids.max() <= n

    def test_validation_is_typed(self, pipeline, base_points):
        n = base_points.shape[0]
        with pytest.raises(IngestError, match="live"):
            pipeline.apply(("insert", base_points[0], 0, 1.0))
        with pytest.raises(IngestError, match="non-live"):
            pipeline.apply(("delete", n + 50))
        pipeline.apply(("delete", 3))
        with pytest.raises(IngestError, match="reuse"):
            pipeline.apply(("insert", base_points[3], 3, 1.0))

    def test_reopen_replays_ops_the_index_never_committed(
        self, tmp_path, base_points, reduce_fn, ingest_queries
    ):
        pipe, _ = IngestPipeline.create(
            tmp_path / "p", base_points, reduce_fn, "iMMDR",
            thresholds=QUIET, auto_reorg=False,
        )
        n = base_points.shape[0]
        pipe.apply(("insert", base_points[3] + 0.02, n, 1.0))
        pipe.apply(("delete", 2))
        want = pipe.knn_batch(ingest_queries, 5)
        pipe.close()

        # Rewind the index WAL to just its CHECKPOINT record: simulates a
        # crash where the oplog was flushed but the index commits were
        # lost.  (The oplog-first write order makes this the only
        # possible skew between the two logs.)
        from repro.storage.wal import CHECKPOINT, WriteAheadLog, _encode

        gdir = pipe.store.gen_dir(1)
        records, _, _ = WriteAheadLog.scan(gdir / "wal.log")
        ckpt = records[0]
        assert ckpt.rtype == CHECKPOINT
        (gdir / "wal.log").write_bytes(
            _encode(ckpt.lsn, ckpt.txn_id, ckpt.rtype, ckpt.payload)
        )

        reopened, report = IngestPipeline.open(
            tmp_path / "p", reduce_fn=reduce_fn, scheme="iMMDR",
            thresholds=QUIET, auto_reorg=False,
        )
        assert report.ops_replayed == 2
        got = reopened.knn_batch(ingest_queries, 5)
        assert batch_fingerprint(got.ids, got.distances) == (
            batch_fingerprint(want.ids, want.distances)
        )
        reopened.close()


class TestDriftTrigger:
    def test_shifted_stream_fires_and_reorg_clears(
        self, tmp_path, base_points, drift_ops, reduce_fn
    ):
        pipe, _ = IngestPipeline.create(
            tmp_path / "p", base_points, reduce_fn, "iMMDR",
            auto_reorg=False,
        )
        trigger = pipe.apply_batch(drift_ops)
        assert trigger.fired
        assert trigger.partitions  # drift named the partitions
        assert any("drift" in r for r in trigger.reasons)
        report = pipe.reorg(trigger)
        assert report.new_generation == 2
        assert report.drift_after < report.drift_before
        assert not pipe.check_drift().fired
        pipe.close()

    def test_auto_reorg_swaps_mid_batch_stream(
        self, tmp_path, base_points, drift_ops, reduce_fn, ingest_queries
    ):
        pipe, _ = IngestPipeline.create(
            tmp_path / "p", base_points, reduce_fn, "iMMDR",
            auto_reorg=True,
        )
        pipe.apply_batch(drift_ops)
        assert pipe.generation == 2
        assert pipe.reorg_reports, "auto reorg must record its report"

        # Post-swap answers must match a fresh build over the same
        # committed mutation stream.
        index, _, rid_map = build_from_vectors(
            pipe.live_vectors(), reduce_fn, "iMMDR"
        )
        ref = index.knn_batch(ingest_queries, 5)
        from repro.ingest import translate_ids

        got = pipe.knn_batch(ingest_queries, 5)
        assert batch_fingerprint(got.ids, got.distances) == (
            batch_fingerprint(
                translate_ids(ref.ids, rid_map), ref.distances
            )
        )
        pipe.close()

    def test_quiet_stream_does_not_fire(
        self, tmp_path, base_points, reduce_fn, ingest_rng
    ):
        pipe, _ = IngestPipeline.create(
            tmp_path / "p", base_points, reduce_fn, "iMMDR",
            auto_reorg=True,
        )
        n = base_points.shape[0]
        ops = [
            ("insert", base_points[i] + ingest_rng.normal(0, 0.01, 6), n + j,
             5.0)
            # Low-offset members: keep the jittered keys well inside the
            # partition stretch constant.
            for j, i in enumerate((0, 3, 4))
        ]
        trigger = pipe.apply_batch(ops)
        assert not trigger.fired
        assert pipe.generation == 1
        pipe.close()


class TestCheckpointWatermark:
    def test_mid_generation_checkpoint_keeps_watermark(
        self, tmp_path, base_points, reduce_fn, ingest_queries
    ):
        pipe, _ = IngestPipeline.create(
            tmp_path / "p", base_points, reduce_fn, "SeqScan",
            thresholds=QUIET, auto_reorg=False,
        )
        n = base_points.shape[0]
        pipe.apply(("insert", base_points[4] + 0.03, n, 1.0))
        pipe.checkpoint()
        pipe.apply(("delete", 7))
        want = pipe.knn_batch(ingest_queries, 5)
        pipe.close()

        reopened, report = IngestPipeline.open(
            tmp_path / "p", reduce_fn=reduce_fn, scheme="SeqScan",
            thresholds=QUIET, auto_reorg=False,
        )
        assert report.committed_seq == 2
        assert report.ops_replayed == 0  # nothing doubly applied
        got = reopened.knn_batch(ingest_queries, 5)
        assert batch_fingerprint(got.ids, got.distances) == (
            batch_fingerprint(want.ids, want.distances)
        )
        reopened.close()
