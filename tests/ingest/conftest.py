"""Shared ingest fixtures: a small base set, a drift-inducing stream, and
a deterministic reducer.

Everything here is deliberately tiny — the swap crashpoint sweep rebuilds
a pipeline per crash schedule, so fixture size multiplies across the whole
sweep matrix.  The base set is *correlated clusters* (not an isotropic
blob): the fitted subspaces then carry a positive bulk MPE, so drift is a
finite ratio rather than the inf-on-any-residual edge case of perfectly
fit partitions.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.reduction import MMDRReducer

DIMS = 6
N_BASE = 80


@pytest.fixture(scope="session")
def ingest_rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def base_points():
    spec = SyntheticSpec(
        n_points=N_BASE,
        dimensionality=DIMS,
        n_clusters=2,
        retained_dims=2,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    return generate_correlated_clusters(
        spec, np.random.default_rng(77)
    ).points


@pytest.fixture(scope="session")
def drift_ops(base_points, reduce_fn, ingest_rng):
    """A drift-inducing stream: inserts at cluster members plus jitter
    *orthogonal* to the member's fitted subspace — the routing residual
    (and hence the live MPE) grows while the in-plane key offset stays
    inside the B+-tree's stretch constant — plus a few deletes
    (tombstones).  The loosened beta keeps the jittered points routing
    into their subspaces instead of falling out as outliers."""
    reduced = reduce_fn(base_points)
    subspaces = reduced.subspaces
    ops = []
    for i in range(20):
        sub = subspaces[i % len(subspaces)]
        member = base_points[int(sub.member_ids[i % sub.member_ids.size])]
        jitter = ingest_rng.normal(0.0, 1.0, DIMS)
        jitter -= sub.basis @ (sub.basis.T @ jitter)
        # Fixed-norm residual: large enough to triple the bulk MPE over
        # the stream, small enough that the member's home subspace always
        # wins the min-ProjDist routing (cross-subspace distances on this
        # dataset are >= ~0.3).
        jitter *= 0.06 / np.linalg.norm(jitter)
        ops.append(("insert", member + jitter, N_BASE + i, 5.0))
    ops += [("delete", rid) for rid in range(5)]
    return ops


@pytest.fixture(scope="session")
def ingest_queries(base_points, ingest_rng):
    return base_points[:4] + ingest_rng.normal(0.0, 0.05, (4, DIMS))


@pytest.fixture(scope="session")
def reduce_fn():
    """Deterministic (fixed-seed) reduction — rebuilding the same point
    set must yield the same index, or generation fingerprints are
    meaningless."""

    def fn(points):
        return MMDRReducer().reduce(points, np.random.default_rng(0))

    return fn
