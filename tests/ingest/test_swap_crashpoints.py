"""The generational swap's durability contract, proven exhaustively.

One sweep per scheme: crash at every physical write of the
build → swap → truncate sequence (both torn sides), recover, and demand a
batch-KNN fingerprint equal to exactly the pre-swap or the post-swap
state — never a hybrid.  This is the ingest-layer counterpart of
``tests/recovery``'s per-mutation WAL sweep.
"""

import pytest

from repro.ingest import swap_crash_sweep

SCHEMES = ["iMMDR", "gLDR", "SeqScan"]


@pytest.mark.crash_smoke
@pytest.mark.parametrize("scheme", SCHEMES)
def test_every_swap_crashpoint_recovers_to_one_generation(
    scheme, tmp_path, base_points, drift_ops, ingest_queries, reduce_fn
):
    report = swap_crash_sweep(
        tmp_path,
        base_points,
        drift_ops,
        ingest_queries,
        k=5,
        reduce_fn=reduce_fn,
        scheme=scheme,
    )
    assert report.schedules == 2 * report.swap_writes
    # The sequence must actually have a flip point: schedules on both
    # sides of the atomic CURRENT replace.
    assert report.recovered_old > 0
    assert report.recovered_new > 0
    assert report.recovered_old + report.recovered_new == report.schedules


def test_sweep_subsampling_keeps_both_phases(
    tmp_path, base_points, drift_ops, ingest_queries, reduce_fn
):
    report = swap_crash_sweep(
        tmp_path,
        base_points,
        drift_ops,
        ingest_queries,
        k=5,
        reduce_fn=reduce_fn,
        scheme="SeqScan",
        max_schedules=8,
    )
    assert 0 < report.schedules <= 2 * report.swap_writes
    phases = {o.phase for o in report.outcomes}
    assert phases == {"before", "after"}
