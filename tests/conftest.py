"""Shared fixtures: seeded generators and small reusable datasets."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ClusterSpec,
    SyntheticSpec,
    generate_correlated_clusters,
)


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def two_cluster_dataset():
    """Two well-separated 4-of-16-dimensional ellipsoids + noise.

    Session-scoped: generation and ground truth are reused across the many
    tests that only need *a* correlated dataset.
    """
    spec = SyntheticSpec(
        n_points=2000,
        dimensionality=16,
        n_clusters=2,
        retained_dims=4,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    return generate_correlated_clusters(spec, np.random.default_rng(77))


@pytest.fixture(scope="session")
def five_cluster_dataset():
    """Five 8-of-32-dimensional ellipsoids (the MMDR showcase shape)."""
    spec = SyntheticSpec(
        n_points=5000,
        dimensionality=32,
        n_clusters=5,
        retained_dims=8,
        variance_r=0.25,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    return generate_correlated_clusters(spec, np.random.default_rng(42))


@pytest.fixture(scope="session")
def anisotropic_pair():
    """Two co-located clusters separable only by orientation (Figure 1)."""
    rng = np.random.default_rng(3)
    a = rng.normal(0, [5, 1, 0.1, 0.1, 0.1], (400, 5))
    b = rng.normal(0, [1, 5, 0.1, 0.1, 0.1], (400, 5))
    points = np.vstack([a, b])
    labels = np.repeat([0, 1], 400)
    return points, labels


def make_elongated_cluster(
    rng, n=500, d=8, intrinsic=3, sigma_major=0.2, sigma_minor=0.01
):
    """Helper importable by tests: one rotated elongated Gaussian cluster."""
    from repro.linalg.rotation import random_orthonormal

    scales = np.full(d, sigma_minor)
    scales[:intrinsic] = sigma_major
    points = rng.normal(0.0, scales, size=(n, d))
    rotation = random_orthonormal(d, rng)
    return points @ rotation
