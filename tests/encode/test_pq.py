"""PQ encoder unit tests: block splitting, fitting, codes, ADC tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.kmeans import euclidean_sq
from repro.encode import (
    MAX_CODEBOOK,
    Encoder,
    EncoderConfig,
    PQEncoder,
    adc_scan,
)
from repro.encode.pq import split_blocks


class TestSplitBlocks:
    def test_even_split(self):
        assert split_blocks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_widens_leading_blocks(self):
        assert split_blocks(7, 4) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_narrow_subspace_caps_block_count(self):
        assert split_blocks(3, 8) == [(0, 1), (1, 2), (2, 3)]

    @given(
        width=st.integers(min_value=1, max_value=64),
        n_sub=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_contiguous_cover(self, width, n_sub):
        """Blocks tile [0, width) exactly: contiguous, non-empty, and
        never more than min(n_sub, width) of them."""
        blocks = split_blocks(width, n_sub)
        assert len(blocks) == min(n_sub, width)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == width
        for (lo, hi), (nlo, _) in zip(blocks, blocks[1:]):
            assert hi == nlo
        assert all(hi > lo for lo, hi in blocks)


class TestEncoderConfig:
    def test_defaults_valid(self):
        config = EncoderConfig()
        assert config.n_subquantizers >= 1
        assert 1 <= config.codebook_size <= MAX_CODEBOOK

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_subquantizers": 0},
            {"codebook_size": 0},
            {"codebook_size": MAX_CODEBOOK + 1},
            {"rerank_depth": 0},
            {"train_iterations": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            EncoderConfig(**kwargs)


@pytest.fixture
def fitted(rng):
    vectors = rng.normal(size=(300, 6)).astype(np.float64)
    encoder = PQEncoder(EncoderConfig(n_subquantizers=3, codebook_size=8))
    encoder.fit(vectors, np.random.default_rng(7))
    return encoder, vectors


class TestPQEncoder:
    def test_satisfies_protocol(self, fitted):
        encoder, _ = fitted
        assert isinstance(encoder, Encoder)

    def test_codes_shape_and_dtype(self, fitted):
        encoder, vectors = fitted
        codes = encoder.encode(vectors)
        assert codes.shape == (vectors.shape[0], encoder.code_width)
        assert codes.dtype == np.uint8

    def test_fit_is_seed_deterministic(self, rng):
        vectors = rng.normal(size=(200, 6))
        config = EncoderConfig(n_subquantizers=3, codebook_size=8)
        first, second = PQEncoder(config), PQEncoder(config)
        first.fit(vectors, np.random.default_rng(11))
        second.fit(vectors, np.random.default_rng(11))
        assert np.array_equal(first.encode(vectors), second.encode(vectors))
        query = vectors[0]
        assert np.array_equal(
            first.adc_table(query), second.adc_table(query)
        )

    def test_requires_fit_before_use(self):
        encoder = PQEncoder(EncoderConfig())
        with pytest.raises(RuntimeError):
            encoder.encode(np.zeros((1, 4)))
        with pytest.raises(RuntimeError):
            encoder.adc_table(np.zeros(4))

    def test_uneven_codebooks_pad_table_with_inf(self, rng):
        # A block with only two distinct values collapses to two
        # centroids while its sibling keeps eight; the short block's
        # dropped slots must read +inf, and no real code may land there.
        rich = rng.normal(size=(40, 1)) * 10.0
        poor = np.repeat([[0.0], [1.0]], 20, axis=0)
        vectors = np.hstack([rich, poor])
        encoder = PQEncoder(
            EncoderConfig(n_subquantizers=2, codebook_size=8)
        )
        encoder.fit(vectors, np.random.default_rng(0))
        table = encoder.adc_table(vectors[0])
        assert np.isinf(table).any()
        codes = encoder.encode(vectors)
        assert np.isfinite(adc_scan(codes, table)).all()


class TestADCScan:
    def test_matches_brute_force_reconstruction(self, fitted):
        encoder, vectors = fitted
        query = vectors[17]
        codes = encoder.encode(vectors)
        table = encoder.adc_table(query)
        scanned = adc_scan(codes, table)
        expected = np.zeros(vectors.shape[0])
        for block, (lo, hi) in enumerate(encoder.splits):
            centroids = encoder.centroids[block]
            expected += euclidean_sq(
                np.ascontiguousarray(query[np.newaxis, lo:hi]), centroids
            )[0, codes[:, block]]
        assert np.allclose(scanned, expected)

    def test_exact_on_centroid_points(self):
        # When every vector IS a centroid, ADC distance equals the true
        # squared distance: quantization error is zero.
        vectors = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        encoder = PQEncoder(
            EncoderConfig(n_subquantizers=1, codebook_size=3)
        )
        encoder.fit(vectors, np.random.default_rng(0))
        query = np.array([0.5, 0.5])
        scanned = adc_scan(encoder.encode(vectors), encoder.adc_table(query))
        true_sq = ((vectors - query) ** 2).sum(axis=1)
        assert np.allclose(np.sort(scanned), np.sort(true_sq))
