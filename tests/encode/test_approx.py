"""Approximate tier end-to-end: recall properties, agreement, errors.

The load-bearing property test lives here (ISSUE satellite): recall@K
is non-decreasing in ``rerank_depth`` and reaches 1.0 once the depth
covers every live record — on all three index schemes, with the dynamic
delta (inserts + deletes) in play.
"""

import numpy as np
import pytest

from repro.data.workload import sample_queries
from repro.encode import ApproxLayer, EncoderConfig
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.persist.snapshot import load_index, save_index
from repro.reduction import MMDRReducer
from repro.reduction.ldr import LDRReducer

K = 10

SCHEMES = {
    "idistance": (ExtendedIDistance, MMDRReducer),
    "seqscan": (SequentialScan, MMDRReducer),
    "gldr": (GlobalLDRIndex, LDRReducer),
}


def _build(scheme, dataset, with_updates=True):
    index_cls, reducer_cls = SCHEMES[scheme]
    points = dataset.points
    reduced = reducer_cls().reduce(points, np.random.default_rng(0))
    index = index_cls(reduced)
    rng = np.random.default_rng(9)
    if with_updates:
        # A handful of perturbed inserts and deletes (one hitting the
        # delta) so the approx path is tested against the live set the
        # exact path sees, not the pristine bulk load.
        base = reduced.n_points
        for i in range(5):
            point = points[rng.integers(points.shape[0])]
            point = point + rng.normal(0, 0.01, point.shape)
            index.insert(point, base + i)
        index.delete(7)
        index.delete(123)
        index.delete(base + 1)
    workload = sample_queries(
        points, 12, np.random.default_rng(1), k=K, method="perturbed"
    )
    return index, workload


def _exact_ids(index, workload):
    ids = []
    for query in workload.queries:
        index.reset_cache()
        ids.append(index.knn(query, K).ids)
    return np.vstack(ids)


def _recall(reference, got):
    total = 0.0
    for ref_row, got_row in zip(reference, got):
        live = ref_row[ref_row >= 0]
        total += (
            1.0
            if live.size == 0
            else np.intersect1d(live, got_row).size / live.size
        )
    return total / reference.shape[0]


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_recall_monotone_in_depth_and_exact_at_full_coverage(
    scheme, two_cluster_dataset
):
    """More rerank depth may only help, and full coverage is exact."""
    index, workload = _build(scheme, two_cluster_dataset)
    index.attach_encoder(
        EncoderConfig(n_subquantizers=4, codebook_size=16), seed=3
    )
    exact = _exact_ids(index, workload)
    covering = index.live_count  # depth * k >= live_count covers all
    recalls = []
    for depth in (1, 2, 4, covering):
        got = []
        for query in workload.queries:
            index.reset_cache()
            res = index.knn(query, K, mode="approx", rerank_depth=depth)
            got.append(res.ids)
        recalls.append(_recall(exact, np.vstack(got)))
    assert recalls == sorted(recalls), (
        f"recall@{K} not monotone in rerank_depth: {recalls}"
    )
    assert recalls[-1] == 1.0, (
        f"full-coverage depth must be exact, got recall {recalls[-1]}"
    )
    assert recalls[0] > 0.5, f"depth-1 recall collapsed: {recalls[0]}"


@pytest.mark.encode_smoke
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_approx_batch_agrees_with_sequential(scheme, two_cluster_dataset):
    index, workload = _build(scheme, two_cluster_dataset)
    index.attach_encoder(EncoderConfig(), seed=3)
    seq_ids, seq_dists = [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, K, mode="approx")
        seq_ids.append(res.ids)
        seq_dists.append(res.distances)
    batch = index.knn_batch(workload.queries, K, mode="approx")
    assert np.array_equal(np.vstack(seq_ids), batch.ids)
    assert np.array_equal(np.vstack(seq_dists), batch.distances)


def test_attach_returns_layer_and_describe(two_cluster_dataset):
    index, _ = _build("idistance", two_cluster_dataset, with_updates=False)
    layer = index.attach_encoder(
        EncoderConfig(n_subquantizers=2, codebook_size=8), seed=5
    )
    assert layer is index.encoder
    assert isinstance(layer, ApproxLayer)
    info = layer.describe()
    assert info["n_subquantizers"] == 2
    assert info["codebook_size"] == 8
    assert info["seed"] == 5
    assert info["partitions"] >= 1
    assert info["codes"] == index.reduced.n_points
    assert info["code_pages"] >= 1


def test_approx_without_encoder_raises(two_cluster_dataset):
    index, workload = _build("seqscan", two_cluster_dataset,
                             with_updates=False)
    with pytest.raises(RuntimeError, match="attach_encoder"):
        index.knn(workload.queries[0], K, mode="approx")


def test_unknown_mode_rejected(two_cluster_dataset):
    index, workload = _build("seqscan", two_cluster_dataset,
                             with_updates=False)
    with pytest.raises(ValueError, match="mode"):
        index.knn(workload.queries[0], K, mode="fuzzy")
    with pytest.raises(ValueError, match="mode"):
        index.knn_batch(workload.queries, K, mode="fuzzy")


def test_exact_counters_unmoved_by_attach(two_cluster_dataset):
    """Attaching codes must not change what exact search reads: same
    answers, same page reads, same distance computations."""
    index, workload = _build("idistance", two_cluster_dataset,
                             with_updates=False)
    query = workload.queries[0]
    index.reset_cache()
    before = index.knn(query, K)
    index.attach_encoder(EncoderConfig(), seed=3)
    index.reset_cache()
    after = index.knn(query, K)
    assert np.array_equal(before.ids, after.ids)
    assert np.array_equal(before.distances, after.distances)
    assert before.stats.page_reads == after.stats.page_reads
    assert (
        before.stats.distance_computations
        == after.stats.distance_computations
    )


def test_explain_attributes_scan_and_rerank(two_cluster_dataset):
    index, workload = _build("idistance", two_cluster_dataset,
                             with_updates=False)
    index.attach_encoder(EncoderConfig(), seed=3)
    explain = index.explain(workload.queries[0], K, mode="approx")
    assert "knn.approx.scan" in explain.phases
    assert "knn.approx.rerank" in explain.phases
    scan = explain.phases["knn.approx.scan"]
    rerank = explain.phases["knn.approx.rerank"]
    assert scan["logical_reads"] >= 1, "code-page scans must be attributed"
    assert rerank["logical_reads"] >= 1, "rerank I/O must be attributed"
    assert scan["distance_computations"] > rerank["distance_computations"], (
        "the code scan, not the rerank, should dominate distance work"
    )


def test_snapshot_round_trips_encoder(two_cluster_dataset, tmp_path):
    index, workload = _build("idistance", two_cluster_dataset)
    index.attach_encoder(EncoderConfig(), seed=3)
    want = []
    for query in workload.queries:
        index.reset_cache()
        want.append(index.knn(query, K, mode="approx").ids)

    manifest = save_index(index, tmp_path / "snap")
    assert manifest["encoder"]["codes"] == index.encoder.total_codes

    loaded = load_index(tmp_path / "snap")
    for query, expected in zip(workload.queries, want):
        loaded.reset_cache()
        got = loaded.knn(query, K, mode="approx").ids
        assert np.array_equal(got, expected)


def test_snapshot_without_encoder_omits_manifest_field(
    two_cluster_dataset, tmp_path
):
    index, _ = _build("seqscan", two_cluster_dataset, with_updates=False)
    manifest = save_index(index, tmp_path / "snap")
    assert "encoder" not in manifest
