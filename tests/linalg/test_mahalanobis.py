"""Mahalanobis distance (Definition 3.2) and its normalized variant."""

import math

import numpy as np
import pytest

from repro.linalg.mahalanobis import ClusterShape, estimate_covariance
from repro.storage.metrics import CostCounters


class TestCovariance:
    def test_matches_numpy_population_covariance(self, rng):
        data = rng.normal(size=(200, 4))
        ours = estimate_covariance(data)
        theirs = np.cov(data, rowvar=False, bias=True)
        assert np.allclose(ours, theirs)

    def test_empty_data_gives_zero_matrix(self):
        cov = estimate_covariance(np.zeros((0, 3)))
        assert cov.shape == (3, 3)
        assert np.allclose(cov, 0.0)

    def test_explicit_mean_changes_result(self, rng):
        data = rng.normal(size=(50, 2))
        shifted = estimate_covariance(data, mean=np.zeros(2))
        centered = estimate_covariance(data)
        # Covariance around a wrong center is inflated.
        assert np.trace(shifted) >= np.trace(centered)


class TestClusterShape:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusterShape(np.zeros(3), np.eye(2))

    def test_identity_covariance_equals_squared_euclidean(self, rng):
        shape = ClusterShape(np.zeros(3), np.eye(3))
        pts = rng.normal(size=(20, 3))
        expected = (pts**2).sum(axis=1)
        assert np.allclose(
            shape.mahalanobis_sq(pts), expected, rtol=1e-6
        )

    def test_matches_direct_quadratic_form(self, rng):
        data = rng.normal(size=(300, 4)) @ rng.normal(size=(4, 4))
        shape = ClusterShape.from_points(data)
        pts = rng.normal(size=(10, 4))
        inv = np.linalg.inv(
            shape.covariance + np.eye(4) * 1e-12
        )
        diff = pts - shape.centroid
        direct = np.einsum("ij,jk,ik->i", diff, inv, diff)
        assert np.allclose(
            shape.mahalanobis_sq(pts), direct, rtol=1e-3
        )

    def test_weights_elongation_direction_less(self, rng):
        """Figure 1: a point along the major axis scores lower than an
        equally distant point along the minor axis."""
        data = rng.normal(0, [5.0, 0.5], size=(5000, 2))
        shape = ClusterShape.from_points(data)
        along_major = np.array([[4.0, 0.0]])
        along_minor = np.array([[0.0, 4.0]])
        assert (
            shape.mahalanobis_sq(along_major)[0]
            < shape.mahalanobis_sq(along_minor)[0]
        )

    def test_degenerate_covariance_is_regularized(self):
        # All points identical: zero covariance must still factorize.
        shape = ClusterShape.from_points(np.ones((5, 3)))
        dist = shape.mahalanobis_sq(np.array([[1.0, 1.0, 1.0]]))
        assert np.isfinite(dist[0])

    def test_rank_deficient_covariance_finite(self, rng):
        # Points on a line in 3-D.
        t = rng.normal(size=(50, 1))
        data = t @ np.array([[1.0, 2.0, 3.0]])
        shape = ClusterShape.from_points(data)
        assert np.all(
            np.isfinite(shape.mahalanobis_sq(rng.normal(size=(5, 3))))
        )

    def test_dimension_mismatch_raises(self):
        shape = ClusterShape.spherical(np.zeros(3))
        with pytest.raises(ValueError):
            shape.mahalanobis_sq(np.zeros((2, 4)))

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterShape.from_points(np.zeros((0, 2)))

    def test_spherical_radius_scales_distance(self):
        small = ClusterShape.spherical(np.zeros(2), radius=1.0)
        big = ClusterShape.spherical(np.zeros(2), radius=2.0)
        pt = np.array([[2.0, 0.0]])
        assert small.mahalanobis_sq(pt)[0] == pytest.approx(
            4.0 * big.mahalanobis_sq(pt)[0], rel=1e-6
        )

    def test_counters_record_dimension_weighted_work(self, rng):
        c = CostCounters()
        shape = ClusterShape.spherical(np.zeros(4))
        shape.mahalanobis_sq(rng.normal(size=(7, 4)), counters=c)
        assert c.distance_computations == 7
        assert c.distance_flops == 28


class TestNormalizedDistance:
    def test_none_equals_raw(self, rng):
        shape = ClusterShape.spherical(np.zeros(2))
        pts = rng.normal(size=(5, 2))
        assert np.allclose(
            shape.normalized_distance(pts, "none"),
            shape.mahalanobis_sq(pts),
        )

    def test_gaussian_form_matches_formula(self, rng):
        data = rng.normal(0, [2.0, 0.5], size=(1000, 2))
        shape = ClusterShape.from_points(data)
        pts = rng.normal(size=(4, 2))
        expected = 0.5 * (
            2 * math.log(2 * math.pi)
            + shape.log_det
            + shape.mahalanobis_sq(pts)
        )
        assert np.allclose(
            shape.normalized_distance(pts, "gaussian"), expected
        )

    def test_paper_form_scales_penalty_by_d(self, rng):
        data = rng.normal(0, [2.0, 0.5], size=(1000, 2))
        shape = ClusterShape.from_points(data)
        pts = rng.normal(size=(4, 2))
        expected = 0.5 * (
            2 * (math.log(2 * math.pi) + shape.log_det)
            + shape.mahalanobis_sq(pts)
        )
        assert np.allclose(
            shape.normalized_distance(pts, "paper"), expected
        )

    def test_unknown_normalization_rejected(self):
        shape = ClusterShape.spherical(np.zeros(2))
        with pytest.raises(ValueError):
            shape.normalized_distance(np.zeros((1, 2)), "bogus")

    def test_big_cluster_pays_volume_penalty(self, rng):
        """Definition 3.2's rationale: under the normalized distance a huge
        cluster does not swallow points that a compact cluster explains."""
        big = ClusterShape.from_points(rng.normal(0, 10.0, (2000, 2)))
        small = ClusterShape.from_points(
            rng.normal([8.0, 0.0], 0.5, (2000, 2))
        )
        pt = np.array([[8.3, 0.2]])  # inside the small cluster
        # Raw Mahalanobis may prefer the big cluster; normalized must not.
        assert (
            small.normalized_distance(pt, "gaussian")[0]
            < big.normalized_distance(pt, "gaussian")[0]
        )
