"""Random orthonormal rotations (Appendix A substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.rotation import is_orthonormal, random_orthonormal


class TestRandomOrthonormal:
    def test_rejects_bad_dimensionality(self, rng):
        with pytest.raises(ValueError):
            random_orthonormal(0, rng)

    @pytest.mark.parametrize("d", [1, 2, 3, 8, 32])
    def test_is_orthonormal(self, d, rng):
        assert is_orthonormal(random_orthonormal(d, rng))

    def test_determinant_is_unit(self, rng):
        for _ in range(5):
            m = random_orthonormal(6, rng)
            assert abs(abs(np.linalg.det(m)) - 1.0) < 1e-9

    def test_preserves_norms(self, rng):
        m = random_orthonormal(10, rng)
        pts = rng.normal(size=(50, 10))
        assert np.allclose(
            np.linalg.norm(pts @ m, axis=1),
            np.linalg.norm(pts, axis=1),
        )

    def test_deterministic_under_seed(self):
        a = random_orthonormal(5, np.random.default_rng(9))
        b = random_orthonormal(5, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_distribution_not_axis_biased(self):
        """Haar-ish sanity: the first basis vector's first coordinate is
        not systematically positive (the QR sign fix matters here)."""
        rng = np.random.default_rng(123)
        firsts = [random_orthonormal(4, rng)[0, 0] for _ in range(300)]
        assert -0.2 < np.mean(firsts) < 0.2


class TestIsOrthonormal:
    def test_identity(self):
        assert is_orthonormal(np.eye(4))

    def test_scaled_identity_rejected(self):
        assert not is_orthonormal(2.0 * np.eye(4))

    def test_non_square_rejected(self):
        assert not is_orthonormal(np.ones((3, 4)))

    def test_tolerance_respected(self):
        near = np.eye(3) + 1e-12
        assert is_orthonormal(near)
        off = np.eye(3) + 1e-3
        assert not is_orthonormal(off)


@settings(max_examples=20, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_rotations_preserve_distances(d, seed):
    rng = np.random.default_rng(seed)
    m = random_orthonormal(d, rng)
    a, b = rng.normal(size=(2, d))
    before = np.linalg.norm(a - b)
    after = np.linalg.norm(a @ m - b @ m)
    assert after == pytest.approx(before, rel=1e-9, abs=1e-12)
