"""PCA substrate: eigenstructure, projections, residuals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.pca import (
    fit_pca,
    project,
    reconstruct,
    residual_norms,
)
from repro.linalg.rotation import random_orthonormal


class TestFit:
    def test_rejects_empty_and_wrong_ndim(self):
        with pytest.raises(ValueError):
            fit_pca(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            fit_pca(np.zeros(5))

    def test_single_point_degenerate_model(self):
        model = fit_pca(np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(model.mean, [1, 2, 3])
        assert np.allclose(model.eigenvalues, 0.0)
        assert model.n_samples == 1

    def test_eigenvalues_sorted_and_nonnegative(self, rng):
        data = rng.normal(0, [3, 1, 0.1, 0.01], (500, 4))
        model = fit_pca(data)
        eig = model.eigenvalues
        assert np.all(eig[:-1] >= eig[1:])
        assert np.all(eig >= 0)

    def test_components_orthonormal(self, rng):
        data = rng.normal(size=(200, 6))
        model = fit_pca(data)
        gram = model.components.T @ model.components
        assert np.allclose(gram, np.eye(6), atol=1e-9)

    def test_recovers_known_variances(self, rng):
        scales = np.array([4.0, 2.0, 1.0, 0.5])
        data = rng.normal(0, scales, (20000, 4))
        model = fit_pca(data)
        assert np.allclose(
            np.sqrt(model.eigenvalues), scales, rtol=0.05
        )

    def test_rotation_invariance_of_spectrum(self, rng):
        data = rng.normal(0, [3, 1, 0.2, 0.05], (2000, 4))
        rotation = random_orthonormal(4, rng)
        a = fit_pca(data).eigenvalues
        b = fit_pca(data @ rotation).eigenvalues
        assert np.allclose(a, b, rtol=1e-8)

    def test_deterministic_given_same_data(self, rng):
        data = rng.normal(size=(100, 5))
        m1, m2 = fit_pca(data), fit_pca(data)
        assert np.array_equal(m1.components, m2.components)

    def test_explained_variance_ratio_sums_to_one(self, rng):
        data = rng.normal(size=(300, 5))
        ratio = fit_pca(data).explained_variance_ratio()
        assert ratio.sum() == pytest.approx(1.0)

    def test_explained_variance_ratio_zero_variance(self):
        data = np.ones((10, 3))
        ratio = fit_pca(data).explained_variance_ratio()
        assert np.allclose(ratio, 0.0)

    def test_basis_validates_range(self, rng):
        model = fit_pca(rng.normal(size=(50, 4)))
        with pytest.raises(ValueError):
            model.basis(5)
        with pytest.raises(ValueError):
            model.basis(-1)
        assert model.basis(0).shape == (4, 0)


class TestProjectReconstruct:
    def test_roundtrip_exact_at_full_dim(self, rng):
        data = rng.normal(size=(100, 5))
        model = fit_pca(data)
        proj = project(data, model, 5)
        back = reconstruct(proj, model, 5)
        assert np.allclose(back, data, atol=1e-9)

    def test_projection_shape(self, rng):
        data = rng.normal(size=(100, 8))
        model = fit_pca(data)
        assert project(data, model, 3).shape == (100, 3)

    def test_single_point_projection(self, rng):
        data = rng.normal(size=(100, 8))
        model = fit_pca(data)
        assert project(data[0], model, 3).shape == (3,)

    def test_projection_of_mean_is_origin(self, rng):
        data = rng.normal(size=(200, 4))
        model = fit_pca(data)
        proj = project(model.mean, model, 3)
        assert np.allclose(proj, 0.0, atol=1e-12)

    def test_projection_preserves_centered_norm_at_full_dim(self, rng):
        data = rng.normal(size=(50, 6))
        model = fit_pca(data)
        proj = project(data, model, 6)
        assert np.allclose(
            np.linalg.norm(proj, axis=1),
            np.linalg.norm(data - model.mean, axis=1),
        )


class TestResiduals:
    def test_zero_at_full_dimensionality(self, rng):
        data = rng.normal(size=(100, 4))
        model = fit_pca(data)
        assert np.allclose(residual_norms(data, model, 4), 0.0)

    def test_monotone_in_retained_dims(self, rng):
        data = rng.normal(0, [3, 2, 1, 0.5], (300, 4))
        model = fit_pca(data)
        norms = [residual_norms(data, model, k).mean() for k in range(5)]
        assert all(a >= b for a, b in zip(norms, norms[1:]))

    def test_pythagoras_with_projection(self, rng):
        """retained^2 + eliminated^2 == centered norm^2 (orthonormal basis)."""
        data = rng.normal(size=(100, 6))
        model = fit_pca(data)
        retained = np.linalg.norm(project(data, model, 2), axis=1)
        eliminated = residual_norms(data, model, 2)
        total = np.linalg.norm(data - model.mean, axis=1)
        assert np.allclose(retained**2 + eliminated**2, total**2)

    def test_equals_reconstruction_error(self, rng):
        data = rng.normal(size=(80, 5))
        model = fit_pca(data)
        recon = reconstruct(project(data, model, 2), model, 2)
        direct = np.linalg.norm(data - recon, axis=1)
        assert np.allclose(residual_norms(data, model, 2), direct)

    def test_dimension_mismatch_raises(self, rng):
        model = fit_pca(rng.normal(size=(20, 4)))
        from repro.core.geometry import projection_distances

        with pytest.raises(ValueError):
            projection_distances(rng.normal(size=(5, 3)), model, 2)


@settings(max_examples=20, deadline=None)
@given(
    data=hnp.arrays(
        np.float64,
        st.tuples(
            st.integers(min_value=3, max_value=40),
            st.integers(min_value=2, max_value=6),
        ),
        elements=st.floats(
            min_value=-100, max_value=100, allow_nan=False
        ),
    )
)
def test_property_spectrum_and_energy(data):
    """Eigenvalue sum equals total variance; residuals bounded by norms."""
    model = fit_pca(data)
    total_var = ((data - data.mean(axis=0)) ** 2).sum() / data.shape[0]
    assert model.eigenvalues.sum() == pytest.approx(
        total_var, rel=1e-6, abs=1e-8
    )
    res = residual_norms(data, model, 1)
    centered = np.linalg.norm(data - model.mean, axis=1)
    assert np.all(res <= centered + 1e-8)
