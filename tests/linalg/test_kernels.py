"""Unit tests for the batch-scan kernels and their bit-identity contracts."""

import numpy as np
import pytest

from repro.linalg.kernels import (
    batch_l2_rows,
    cold_lru_physical_reads,
    flat_l2,
    multi_arange,
)


class TestMultiArange:
    def test_matches_per_segment_arange(self, rng):
        starts = rng.integers(0, 50, size=20)
        stops = starts + rng.integers(0, 9, size=20)
        expected = np.concatenate(
            [np.arange(a, b) for a, b in zip(starts, stops)]
            or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(multi_arange(starts, stops), expected)

    def test_all_empty_segments(self):
        starts = np.array([3, 7, 7])
        out = multi_arange(starts, starts)
        assert out.size == 0 and out.dtype == np.int64

    def test_no_segments(self):
        out = multi_arange(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            multi_arange(np.array([5]), np.array([4]))


class TestBatchL2Rows:
    def test_rows_bit_identical_to_per_query_norm(self, rng):
        points = rng.normal(size=(300, 17))
        queries = rng.normal(size=(9, 17))
        out = batch_l2_rows(points, queries)
        for i in range(queries.shape[0]):
            row = np.linalg.norm(points - queries[i], axis=1)
            assert np.array_equal(out[i], row)

    def test_chunking_preserves_bit_identity(self, rng, monkeypatch):
        import repro.linalg.kernels as kernels

        points = rng.normal(size=(64, 8))
        queries = rng.normal(size=(10, 8))
        full = batch_l2_rows(points, queries)
        # Force a tiny buffer so every query lands in its own chunk.
        monkeypatch.setattr(kernels, "_MAX_BUFFER_ELEMS", 1)
        chunked = batch_l2_rows(points, queries)
        assert np.array_equal(full, chunked)

    def test_empty_inputs(self):
        assert batch_l2_rows(np.empty((0, 4)), np.empty((3, 4))).shape == (3, 0)
        assert batch_l2_rows(np.empty((5, 4)), np.empty((0, 4))).shape == (0, 5)


class TestFlatL2:
    def test_entries_bit_identical_to_per_block_norm(self, rng):
        points = rng.normal(size=(200, 6))
        queries = rng.normal(size=(4, 6))
        positions = rng.integers(0, 200, size=150)
        owner = rng.integers(0, 4, size=150)
        out = flat_l2(points, positions, queries, owner)
        for q in range(4):
            mask = owner == q
            block = np.linalg.norm(points[positions[mask]] - queries[q], axis=1)
            assert np.array_equal(out[mask], block)

    def test_chunking_preserves_bit_identity(self, rng, monkeypatch):
        import repro.linalg.kernels as kernels

        points = rng.normal(size=(50, 5))
        queries = rng.normal(size=(3, 5))
        positions = rng.integers(0, 50, size=40)
        owner = rng.integers(0, 3, size=40)
        full = flat_l2(points, positions, queries, owner)
        monkeypatch.setattr(kernels, "_MAX_BUFFER_ELEMS", 1)
        chunked = flat_l2(points, positions, queries, owner)
        assert np.array_equal(full, chunked)

    def test_empty(self):
        out = flat_l2(
            np.empty((0, 3)),
            np.empty(0, dtype=np.int64),
            np.empty((0, 3)),
            np.empty(0, dtype=np.int64),
        )
        assert out.size == 0


def _reference_lru(sequence, capacity):
    """Straight-line LRU model, independent of the implementation."""
    resident = []
    physical = 0
    for page in sequence:
        if page in resident:
            resident.remove(page)
            resident.append(page)
            continue
        physical += 1
        resident.append(page)
        if len(resident) > capacity:
            resident.pop(0)
    return physical


class TestColdLruPhysicalReads:
    def test_empty_sequence(self):
        assert cold_lru_physical_reads(np.empty(0, dtype=np.int64), 4) == 0

    def test_distinct_fast_path(self):
        seq = np.array([3, 1, 3, 2, 1, 1])
        assert cold_lru_physical_reads(seq, capacity=8) == 3

    def test_eviction_replay_matches_reference(self, rng):
        for _ in range(25):
            seq = rng.integers(0, 12, size=rng.integers(1, 80))
            capacity = int(rng.integers(1, 10))
            assert cold_lru_physical_reads(seq, capacity) == _reference_lru(
                seq.tolist(), capacity
            )

    def test_matches_buffer_pool(self, rng):
        """The model must mirror the real BufferPool's accounting."""
        from repro.storage.buffer import BufferPool
        from repro.storage.metrics import CostCounters
        from repro.storage.pager import PageStore

        counters = CostCounters()
        store = PageStore(counters)
        for i in range(12):
            store.allocate(("kernel-test", i), 0)
        pool = BufferPool(store, 4, counters)
        seq = rng.integers(0, 12, size=120)
        for page in seq.tolist():
            pool.read(int(page))
        assert cold_lru_physical_reads(seq, 4) == counters.physical_reads
