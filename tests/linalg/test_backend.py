"""Kernel backend contract: selection knobs, guards, and equivalence.

Three layers of guarantee, from strongest to weakest:

* the blocked-numpy fallback is **bit-identical** to the reference
  (tiling contiguous last-axis reductions cannot change a bit);
* the compiled numba kernels agree within 1e-9 (fused arithmetic
  reassociates, so bit-identity is not promised) — skipped when numba
  is not installed;
* whichever implementation the ``"numba"`` backend resolves to, the
  bench gate's logical counters and result fingerprints are identical
  to the ``"numpy"`` backend's, because counters are charged at call
  sites and fingerprints quantize distances far above 1e-9.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bench import WorkloadSpec, run_bench
from repro.linalg import _kernels_blocked as blocked
from repro.linalg import backend, kernels
from repro.linalg.backend import (
    KERNEL_BACKENDS,
    get_kernel_backend,
    kernel_backend_info,
    set_kernel_backend,
)

try:
    import numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed ([fast] extra)"
)


@pytest.fixture
def restore_backend():
    previous = get_kernel_backend()
    yield
    set_kernel_backend(previous)


def problem(n=2500, d=7, n_queries=130, seed=0):
    """Sizes straddle both fallback tile boundaries (64 queries, 1024
    points) so the blocked path exercises full and ragged tiles."""
    rng = np.random.default_rng(seed)
    points = rng.standard_normal((n, d))
    queries = rng.standard_normal((n_queries, d))
    return points, queries


def flat_problem(n=900, d=6, n_queries=40, n_entries=70_000, seed=1):
    rng = np.random.default_rng(seed)
    points = rng.standard_normal((n, d))
    queries = rng.standard_normal((n_queries, d))
    positions = rng.integers(0, n, size=n_entries)
    query_of_entry = np.sort(rng.integers(0, n_queries, size=n_entries))
    return points, positions, queries, query_of_entry


def mahal_problem(n=800, d=6, n_clusters=3, seed=2):
    rng = np.random.default_rng(seed)
    points = rng.standard_normal((n, d))
    centroids = rng.standard_normal((n_clusters, d))
    chol_invs = np.empty((n_clusters, d, d))
    for c in range(n_clusters):
        a = rng.standard_normal((d, d))
        cov = a @ a.T + d * np.eye(d)
        chol_invs[c] = np.linalg.inv(np.linalg.cholesky(cov))
    penalties = rng.uniform(0.5, 1.5, size=n_clusters)
    return points, centroids, chol_invs, penalties


class TestBlockedBitIdentity:
    """The graceful-degradation path may not change a single bit."""

    def test_batch_l2_rows(self):
        points, queries = problem()
        want = kernels.batch_l2_rows(points, queries)
        got = blocked.batch_l2_rows(points, queries)
        assert np.array_equal(got, want)

    def test_batch_l2_rows_ragged_and_empty(self):
        for n, q in [(1, 1), (63, 65), (1025, 64), (0, 3), (3, 0)]:
            points, queries = problem(n=n, n_queries=q)
            want = kernels.batch_l2_rows(points, queries)
            got = blocked.batch_l2_rows(points, queries)
            assert got.shape == want.shape
            assert np.array_equal(got, want)

    def test_flat_l2(self):
        args = flat_problem()
        want = kernels.flat_l2(*args)
        got = blocked.flat_l2(*args)
        assert np.array_equal(got, want)

    def test_reused_kernels_are_the_reference_objects(self):
        # gemm row-tiling is not bit-stable, so the fallback must reuse
        # the reference implementations rather than re-block them.
        assert blocked.batch_mahalanobis_rows is kernels.batch_mahalanobis_rows
        assert blocked.cold_lru_physical_reads is kernels.cold_lru_physical_reads
        assert blocked.COMPILED is False


@needs_numba
class TestNumbaEquivalence:
    """Compiled kernels: 1e-9 agreement, exact where integers."""

    def test_batch_l2_rows(self):
        from repro.linalg import _kernels_numba as fast

        points, queries = problem()
        want = kernels.batch_l2_rows(points, queries)
        got = fast.batch_l2_rows(points, queries)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)

    def test_flat_l2(self):
        from repro.linalg import _kernels_numba as fast

        args = flat_problem()
        np.testing.assert_allclose(
            fast.flat_l2(*args), kernels.flat_l2(*args), rtol=0, atol=1e-9
        )

    def test_batch_mahalanobis_rows(self):
        from repro.linalg import _kernels_numba as fast

        args = mahal_problem()
        np.testing.assert_allclose(
            fast.batch_mahalanobis_rows(*args),
            kernels.batch_mahalanobis_rows(*args),
            rtol=0,
            atol=1e-9,
        )

    def test_cold_lru_physical_reads_exact(self):
        from repro.linalg import _kernels_numba as fast

        rng = np.random.default_rng(5)
        seq = rng.integers(0, 40, size=3000)
        for capacity in (1, 3, 17, 64):
            assert fast.cold_lru_physical_reads(
                seq, capacity
            ) == kernels.cold_lru_physical_reads(seq, capacity)

    def test_marked_compiled(self):
        from repro.linalg import _kernels_numba as fast

        assert fast.COMPILED is True


class TestDispatcher:
    def test_selection_round_trip(self, restore_backend):
        previous = set_kernel_backend("numba")
        assert previous in KERNEL_BACKENDS
        assert get_kernel_backend() == "numba"
        assert set_kernel_backend("numpy") == "numba"
        assert get_kernel_backend() == "numpy"

    def test_unknown_backend_rejected(self, restore_backend):
        before = get_kernel_backend()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_kernel_backend("fortran")
        assert get_kernel_backend() == before  # failed switch is a no-op

    def test_info_reports_resolution(self):
        info = kernel_backend_info()
        assert info["backend"] == get_kernel_backend()
        assert info["compiled"] == HAVE_NUMBA
        assert info["fast_module"] == (
            "_kernels_numba" if HAVE_NUMBA else "_kernels_blocked"
        )

    def test_fast_path_agrees_with_reference(self, restore_backend):
        """Through the public dispatcher, whatever ``"numba"`` resolves
        to (compiled or fallback) agrees with the numpy backend."""
        points, queries = problem(n=300, n_queries=20)
        set_kernel_backend("numpy")
        want = backend.batch_l2_rows(points, queries)
        set_kernel_backend("numba")
        got = backend.batch_l2_rows(points, queries)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-9)
        if not HAVE_NUMBA:  # fallback path promises bit-identity
            assert np.array_equal(got, want)

    def test_fast_path_guards_dtype_and_layout(self, restore_backend):
        set_kernel_backend("numba")
        points, queries = problem(n=50, n_queries=4)
        with pytest.raises(TypeError, match="float64"):
            backend.batch_l2_rows(points.astype(np.float32), queries)
        with pytest.raises(ValueError, match="C-contiguous"):
            backend.batch_l2_rows(np.asfortranarray(points), queries)

    def test_env_knob_selects_backend_at_import(self):
        env = dict(os.environ, REPRO_KERNEL_BACKEND="numba")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.linalg.backend import get_kernel_backend;"
                "print(get_kernel_backend())",
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "numba"

    def test_env_knob_rejects_typo_at_import(self):
        env = dict(os.environ, REPRO_KERNEL_BACKEND="nunba")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", "import repro.linalg.backend"],
            env=env,
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0
        assert "unknown kernel backend" in out.stderr


@pytest.mark.kernel_smoke
class TestBenchGateAcrossBackends:
    """The machine-independent gate (logical counters + fingerprints)
    must not move when the backend does — that is the contract that
    lets the compiled path ship without new baselines."""

    def _tiny(self, **overrides):
        params = dict(
            name="backend_equiv",
            n_points=500,
            dimensionality=8,
            n_clusters=2,
            retained_dims=3,
            n_queries=6,
            k=5,
            n_inserts=3,
            n_deletes=2,
        )
        params.update(overrides)
        return WorkloadSpec(**params)

    def test_counters_and_fingerprints_identical(self, restore_backend):
        set_kernel_backend("numpy")
        ref = run_bench(self._tiny())
        set_kernel_backend("numba")
        fast = run_bench(self._tiny())
        assert fast.fingerprints == ref.fingerprints
        assert fast.counters == ref.counters
        assert fast.spec == ref.spec

    def test_holds_for_cosine_over_mmap_too(self, restore_backend):
        spec = self._tiny(name="backend_equiv_cm", metric="cosine", store="mmap")
        set_kernel_backend("numpy")
        ref = run_bench(spec)
        set_kernel_backend("numba")
        fast = run_bench(spec)
        assert fast.fingerprints == ref.fingerprints
        assert fast.counters == ref.counters
