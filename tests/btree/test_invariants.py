"""Structural validator + delete, and the randomized mutation stress test."""

import numpy as np
import pytest

from repro.btree.node import INTERNAL_CAPACITY, LEAF_CAPACITY
from repro.btree.tree import BPlusTree, BTreeInvariantError
from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters
from repro.storage.pager import PageStore


def make_tree(leaf_capacity=LEAF_CAPACITY,
              internal_capacity=INTERNAL_CAPACITY, pool_pages=256):
    counters = CostCounters()
    store = PageStore(counters)
    pool = BufferPool(store, pool_pages, counters)
    return BPlusTree(store, pool, leaf_capacity, internal_capacity)


def entries_of(tree):
    return [(k, r) for k, r in tree.items()]


class TestCheckInvariants:
    def test_empty_tree_passes(self):
        tree = make_tree()
        report = tree.check_invariants()
        assert report["entries"] == 0

    def test_bulk_loaded_tree_passes(self):
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        keys = sorted(np.random.default_rng(1).normal(size=500).tolist())
        tree.bulk_load(keys, list(range(500)))
        report = tree.check_invariants()
        assert report["entries"] == 500
        assert report["leaves"] >= 500 // 8
        assert report["depth"] == tree.height

    def test_detects_unordered_leaf(self):
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        tree.bulk_load([float(i) for i in range(40)], list(range(40)))
        leaf_page = tree.leaf_page_ids()[1]
        leaf = tree.store.raw_fetch(leaf_page).payload
        leaf.keys[0], leaf.keys[1] = leaf.keys[1], leaf.keys[0]
        with pytest.raises(BTreeInvariantError):
            tree.check_invariants()

    def test_detects_broken_leaf_chain(self):
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        tree.bulk_load([float(i) for i in range(40)], list(range(40)))
        leaf_page = tree.leaf_page_ids()[0]
        tree.store.raw_fetch(leaf_page).payload.next_page = None
        with pytest.raises(BTreeInvariantError):
            tree.check_invariants()

    def test_detects_wrong_entry_count(self):
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        tree.bulk_load([float(i) for i in range(40)], list(range(40)))
        tree.n_entries += 1
        with pytest.raises(BTreeInvariantError, match="n_entries"):
            tree.check_invariants()

    def test_uses_no_accounted_io(self):
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        tree.bulk_load([float(i) for i in range(100)], list(range(100)))
        before = tree.counters.snapshot()
        tree.check_invariants()
        diff = tree.counters.snapshot() - before
        assert diff.total_page_reads == 0


class TestDelete:
    def test_delete_removes_single_entry(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        tree.bulk_load([1.0, 2.0, 3.0], [10, 20, 30])
        tree.delete(2.0, 20)
        assert entries_of(tree) == [(1.0, 10), (3.0, 30)]
        assert len(tree) == 2
        tree.check_invariants()

    def test_delete_missing_key_raises(self):
        tree = make_tree()
        tree.bulk_load([1.0], [10])
        with pytest.raises(KeyError):
            tree.delete(2.0, 10)
        with pytest.raises(KeyError):
            tree.delete(1.0, 99)  # right key, wrong rid

    def test_delete_from_empty_tree_raises(self):
        tree = make_tree()
        with pytest.raises(KeyError):
            tree.delete(1.0, 1)

    def test_delete_picks_matching_rid_among_duplicates(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        tree.bulk_load([5.0] * 6, [0, 1, 2, 3, 4, 5])
        tree.delete(5.0, 3)
        assert sorted(r for _, r in entries_of(tree)) == [0, 1, 2, 4, 5]
        tree.check_invariants()

    def test_delete_across_leaf_boundary_duplicates(self):
        # duplicates spanning several leaves: the scan must follow the
        # leaf chain past full leaves of equal keys
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        tree.bulk_load([7.0] * 12, list(range(12)))
        tree.delete(7.0, 11)
        assert sorted(r for _, r in entries_of(tree)) == list(range(11))
        tree.check_invariants()

    def test_delete_may_leave_empty_leaf(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        tree.bulk_load([float(i) for i in range(8)], list(range(8)))
        for i in range(4):
            tree.delete(float(i), i)
        # no rebalancing: structure stays valid, scans skip the empty leaf
        tree.check_invariants()
        assert [k for k, _ in entries_of(tree)] == [4.0, 5.0, 6.0, 7.0]
        assert list(tree.range(0.0, 10.0)) == [
            (4.0, 4), (5.0, 5), (6.0, 6), (7.0, 7)
        ]

    def test_search_after_delete(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        keys = [float(i) for i in range(30)]
        tree.bulk_load(keys, list(range(30)))
        tree.delete(13.0, 13)
        assert tree.search(13.0) == []
        assert tree.search(14.0) == [14]


class TestRandomizedStress:
    """Satellite: randomized insert/delete batches, invariants after each."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_batches_keep_structure_valid(self, seed):
        rng = np.random.default_rng(seed)
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        n0 = 64
        keys = np.sort(rng.uniform(0, 100, n0))
        tree.bulk_load(keys.tolist(), list(range(n0)))
        shadow = {(float(k), r) for k, r in zip(keys, range(n0))}
        next_rid = n0

        for _ in range(12):
            # insert batch (duplicates included on purpose)
            for _ in range(int(rng.integers(1, 12))):
                key = float(rng.uniform(0, 100))
                if shadow and rng.random() < 0.3:
                    key = next(iter(shadow))[0]  # force a duplicate key
                tree.insert(key, next_rid)
                shadow.add((key, next_rid))
                next_rid += 1
            # delete batch
            for _ in range(int(rng.integers(1, 10))):
                if not shadow:
                    break
                victim = sorted(shadow)[int(rng.integers(len(shadow)))]
                tree.delete(*victim)
                shadow.remove(victim)
            report = tree.check_invariants()
            assert report["entries"] == len(shadow)
            assert sorted(entries_of(tree)) == sorted(shadow)

    def test_delete_everything_then_reinsert(self):
        rng = np.random.default_rng(9)
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        keys = np.sort(rng.uniform(0, 10, 40))
        tree.bulk_load(keys.tolist(), list(range(40)))
        for rid, key in enumerate(keys.tolist()):
            tree.delete(key, rid)
            tree.check_invariants()
        assert len(tree) == 0
        assert entries_of(tree) == []
        tree.insert(5.0, 1000)
        tree.check_invariants()
        assert tree.search(5.0) == [1000]
