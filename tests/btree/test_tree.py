"""Paged B+-tree: bulk load, search, range scans, cursors, inserts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree.node import INTERNAL_CAPACITY, LEAF_CAPACITY, InternalNode, LeafNode
from repro.btree.tree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters
from repro.storage.pager import PageStore


def make_tree(leaf_capacity=LEAF_CAPACITY, internal_capacity=INTERNAL_CAPACITY,
              pool_pages=256):
    counters = CostCounters()
    store = PageStore(counters)
    pool = BufferPool(store, pool_pages, counters)
    return BPlusTree(store, pool, leaf_capacity, internal_capacity), counters


class TestNodes:
    def test_leaf_key_rid_mismatch(self):
        with pytest.raises(ValueError):
            LeafNode(keys=[1.0], rids=[])

    def test_internal_child_separator_mismatch(self):
        with pytest.raises(ValueError):
            InternalNode(separators=[1.0], children=[1])

    def test_capacities_derive_from_page_size(self):
        assert LEAF_CAPACITY == 256
        assert INTERNAL_CAPACITY == 256


class TestBulkLoad:
    def test_requires_sorted_keys(self):
        tree, _ = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([2.0, 1.0], [0, 1])

    def test_requires_matching_lengths(self):
        tree, _ = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([1.0], [0, 1])

    def test_double_load_rejected(self):
        tree, _ = make_tree()
        tree.bulk_load([1.0], [0])
        with pytest.raises(RuntimeError):
            tree.bulk_load([2.0], [1])

    def test_empty_load_gives_searchable_tree(self):
        tree, _ = make_tree()
        tree.bulk_load([], [])
        assert len(tree) == 0
        assert list(tree.range(-1e9, 1e9)) == []

    def test_height_grows_with_size(self):
        small, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        small.bulk_load([float(i) for i in range(8)], list(range(8)))
        big, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        big.bulk_load([float(i) for i in range(500)], list(range(500)))
        assert big.height > small.height

    def test_items_in_key_order(self, rng):
        keys = np.sort(rng.uniform(0, 100, 5000))
        tree, _ = make_tree()
        tree.bulk_load(keys.tolist(), list(range(5000)))
        out_keys = [k for k, _ in tree.items()]
        assert out_keys == sorted(out_keys)
        assert len(out_keys) == 5000


class TestSearch:
    @pytest.fixture
    def loaded(self, rng):
        keys = np.sort(rng.uniform(0, 100, 3000))
        tree, counters = make_tree(leaf_capacity=16, internal_capacity=16)
        tree.bulk_load(keys.tolist(), list(range(3000)))
        return tree, keys, counters

    def test_point_search_finds_duplicates(self):
        tree, _ = make_tree()
        tree.bulk_load([1.0, 2.0, 2.0, 2.0, 3.0], [10, 20, 21, 22, 30])
        assert sorted(tree.search(2.0)) == [20, 21, 22]
        assert tree.search(5.0) == []

    def test_range_matches_linear_filter(self, loaded):
        tree, keys, _ = loaded
        lo, hi = 25.0, 26.5
        expected = [
            (float(k), i) for i, k in enumerate(keys) if lo <= k <= hi
        ]
        assert list(tree.range(lo, hi)) == expected

    def test_empty_range(self, loaded):
        tree, _, _ = loaded
        assert list(tree.range(50.0, 49.0)) == []

    def test_range_covering_everything(self, loaded):
        tree, keys, _ = loaded
        assert len(list(tree.range(-1.0, 101.0))) == keys.size

    def test_search_charges_page_reads(self, loaded):
        tree, _, counters = loaded
        before = counters.snapshot()
        list(tree.range(10.0, 10.1))
        diff = counters.snapshot() - before
        # At least the root-to-leaf path was read.
        assert diff.logical_reads >= tree.height

    def test_search_on_empty_tree_raises(self):
        tree, _ = make_tree()
        with pytest.raises(RuntimeError):
            tree.cursor(1.0)


class TestCursor:
    @pytest.fixture
    def loaded(self):
        keys = [float(i) for i in range(100)]
        tree, _ = make_tree(leaf_capacity=8, internal_capacity=8)
        tree.bulk_load(keys, list(range(100)))
        return tree

    def test_cursor_positions_at_first_geq(self, loaded):
        cur = loaded.cursor(50.5)
        assert cur.peek_next() == (51.0, 51)
        assert cur.peek_prev() == (50.0, 50)

    def test_forward_walk(self, loaded):
        cur = loaded.cursor(97.0)
        seen = []
        while True:
            entry = cur.next()
            if entry is None:
                break
            seen.append(entry[1])
        assert seen == [97, 98, 99]

    def test_backward_walk(self, loaded):
        cur = loaded.cursor(2.5)
        seen = []
        while True:
            entry = cur.prev()
            if entry is None:
                break
            seen.append(entry[1])
        assert seen == [2, 1, 0]

    def test_bidirectional_interleaving(self, loaded):
        cur_fwd = loaded.cursor(50.0)
        cur_bwd = loaded.cursor(50.0)
        assert cur_fwd.next() == (50.0, 50)
        assert cur_bwd.prev() == (49.0, 49)
        assert cur_fwd.next() == (51.0, 51)
        assert cur_bwd.prev() == (48.0, 48)

    def test_cursor_before_first_and_after_last(self, loaded):
        front = loaded.cursor(-5.0)
        assert front.prev() is None
        assert front.next() == (0.0, 0)
        back = loaded.cursor(1e9)
        assert back.peek_next() is None
        assert back.prev() == (99.0, 99)


class TestInsert:
    def test_insert_into_empty(self):
        tree, _ = make_tree()
        tree.insert(5.0, 50)
        assert tree.search(5.0) == [50]
        assert len(tree) == 1

    def test_random_inserts_stay_sorted(self):
        tree, _ = make_tree(leaf_capacity=6, internal_capacity=6)
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 800)
        for i, v in enumerate(values):
            tree.insert(float(v), i)
        items = list(tree.items())
        assert len(items) == 800
        keys = [k for k, _ in items]
        assert keys == sorted(keys)
        expected = sorted(
            (float(v), i) for i, v in enumerate(values)
        )
        assert keys == [k for k, _ in expected]

    def test_insert_after_bulk_load(self):
        tree, _ = make_tree(leaf_capacity=6, internal_capacity=6)
        tree.bulk_load([float(i) for i in range(100)], list(range(100)))
        tree.insert(50.5, 999)
        found = list(tree.range(50.0, 51.0))
        assert (50.5, 999) in found
        assert len(tree) == 101

    def test_ascending_inserts(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        for i in range(300):
            tree.insert(float(i), i)
        assert [r for _, r in tree.items()] == list(range(300))
        assert tree.height >= 3

    def test_duplicate_key_inserts(self):
        tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
        for i in range(50):
            tree.insert(7.0, i)
        assert sorted(tree.search(7.0)) == list(range(50))


@settings(max_examples=20, deadline=None)
@given(
    keys=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    bounds=st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
)
def test_property_tree_equals_sorted_list(keys, bounds):
    """The tree behaves exactly like a sorted (key, rid) list."""
    tree, _ = make_tree(leaf_capacity=4, internal_capacity=4)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    lo, hi = min(bounds), max(bounds)
    expected = sorted(
        (k, i) for i, k in enumerate(keys) if lo <= k <= hi
    )
    assert sorted(tree.range(lo, hi)) == expected
    assert len(list(tree.items())) == len(keys)
