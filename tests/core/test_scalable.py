"""Scalable MMDR — the §4.3 data-stream variant."""

import numpy as np
import pytest

from repro.core.config import MMDRConfig
from repro.core.mmdr import MMDR
from repro.core.scalable import ScalableMMDR
from repro.storage.metrics import CostCounters
from repro.storage.pager import pages_for_vectors


class TestBasics:
    def test_empty_data_rejected(self, rng):
        with pytest.raises(ValueError):
            ScalableMMDR().fit(np.zeros((0, 4)), rng)

    def test_covers_every_point_exactly_once(self, five_cluster_dataset):
        model = ScalableMMDR(min_stream_points=400).fit(
            five_cluster_dataset.points, np.random.default_rng(2)
        )
        seen = np.zeros(model.n_points, dtype=int)
        for subspace in model.subspaces:
            seen[subspace.member_ids] += 1
        seen[model.outliers.member_ids] += 1
        assert np.all(seen == 1)

    def test_streams_processed_matches_chunking(self, five_cluster_dataset):
        n = five_cluster_dataset.points.shape[0]
        fitter = ScalableMMDR(min_stream_points=512)
        model = fitter.fit(
            five_cluster_dataset.points, np.random.default_rng(2)
        )
        expected = -(-n // 512)  # epsilon*N < 512 here, so 512 per stream
        assert model.stats.streams_processed == expected


class TestQualityParity:
    def test_matches_in_memory_mmdr_quality(self, five_cluster_dataset):
        """§4.3's implicit claim: streaming does not change the quality of
        what gets discovered.  Structure may differ in detail (a borderline
        pair can end up merged into one wider subspace), so the check is on
        what the reduction is *for*: query precision parity, comparable
        subspace counts, comparable outlier mass."""
        from repro.data.workload import sample_queries
        from repro.eval.precision import (
            exact_knn,
            precision_at_k,
            reduced_knn,
        )
        from repro.reduction.mmdr_adapter import model_to_reduced

        ds = five_cluster_dataset
        in_memory = MMDR().fit(ds.points, np.random.default_rng(3))
        streamed = ScalableMMDR(min_stream_points=400).fit(
            ds.points, np.random.default_rng(4)
        )
        assert abs(streamed.n_subspaces - in_memory.n_subspaces) <= 1
        assert streamed.outliers.size <= in_memory.outliers.size * 3 + 30

        workload = sample_queries(
            ds.points, 40, np.random.default_rng(9), k=10
        )
        truth = exact_knn(ds.points, workload.queries, 10)
        precisions = {}
        for name, model in [("memory", in_memory), ("stream", streamed)]:
            approx = reduced_knn(
                model_to_reduced(model), workload.queries, 10
            )
            precisions[name] = precision_at_k(truth, approx)
        assert precisions["stream"] >= precisions["memory"] - 0.05

    def test_high_purity(self, five_cluster_dataset):
        ds = five_cluster_dataset
        model = ScalableMMDR(min_stream_points=400).fit(
            ds.points, np.random.default_rng(4)
        )
        for subspace in model.subspaces:
            labels = ds.labels[subspace.member_ids]
            _, counts = np.unique(labels, return_counts=True)
            assert counts.max() / counts.sum() > 0.95


class TestIOBehaviour:
    def test_sequential_scans_are_bounded(self, five_cluster_dataset):
        """The scalability claim's witness: the data is scanned a constant
        number of times (chunk pass + routing pass), so sequential reads
        stay within a small multiple of the dataset's page count."""
        ds = five_cluster_dataset
        counters = CostCounters()
        ScalableMMDR(min_stream_points=400).fit(
            ds.points, np.random.default_rng(4), counters
        )
        n, d = ds.points.shape
        dataset_pages = pages_for_vectors(n, d)
        assert counters.sequential_reads <= 3 * dataset_pages
        assert counters.sequential_reads >= 2 * dataset_pages

    def test_reads_scale_linearly_with_n(self, rng):
        from repro.data.synthetic import (
            SyntheticSpec,
            generate_correlated_clusters,
        )

        reads = []
        sizes = (2000, 4000)
        for n in sizes:
            spec = SyntheticSpec(
                n_points=n,
                dimensionality=16,
                n_clusters=2,
                retained_dims=3,
                variance_r=0.3,
                variance_e=0.01,
            )
            ds = generate_correlated_clusters(
                spec, np.random.default_rng(n)
            )
            counters = CostCounters()
            ScalableMMDR(min_stream_points=500).fit(
                ds.points, np.random.default_rng(1), counters
            )
            reads.append(counters.sequential_reads)
        ratio = reads[1] / reads[0]
        assert 1.5 < ratio < 2.6  # ~2x data -> ~2x sequential I/O


class TestConfigInteraction:
    def test_stream_fraction_sets_chunk_size(self, five_cluster_dataset):
        config = MMDRConfig(stream_fraction=0.5)
        model = ScalableMMDR(config, min_stream_points=10).fit(
            five_cluster_dataset.points, np.random.default_rng(5)
        )
        assert model.stats.streams_processed == 2

    def test_single_stream_degenerates_to_batch(self, two_cluster_dataset):
        config = MMDRConfig(stream_fraction=1.0)
        model = ScalableMMDR(config).fit(
            two_cluster_dataset.points, np.random.default_rng(5)
        )
        assert model.stats.streams_processed == 1
        assert model.n_subspaces >= 1
