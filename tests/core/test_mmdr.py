"""The MMDR algorithm end to end (Figure 4)."""

import numpy as np
import pytest

from repro.core.config import MMDRConfig
from repro.core.mmdr import MMDR
from repro.data.synthetic import (
    ClusterSpec,
    SyntheticSpec,
    generate_correlated_clusters,
)


def cluster_purity(model, truth):
    """Worst-case per-subspace majority share."""
    worst = 1.0
    for subspace in model.subspaces:
        labels = truth[subspace.member_ids]
        _, counts = np.unique(labels, return_counts=True)
        worst = min(worst, counts.max() / counts.sum())
    return worst


class TestBasics:
    def test_empty_data_rejected(self, rng):
        with pytest.raises(ValueError):
            MMDR().fit(np.zeros((0, 4)), rng)

    def test_covers_every_point_exactly_once(self, five_cluster_dataset):
        model = MMDR().fit(
            five_cluster_dataset.points, np.random.default_rng(1)
        )
        seen = np.zeros(model.n_points, dtype=int)
        for subspace in model.subspaces:
            seen[subspace.member_ids] += 1
        seen[model.outliers.member_ids] += 1
        assert np.all(seen == 1)

    def test_deterministic_under_seed(self, two_cluster_dataset):
        m1 = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
        m2 = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
        assert np.array_equal(m1.labels(), m2.labels())
        assert m1.reduced_dims() == m2.reduced_dims()

    def test_stats_populated(self, two_cluster_dataset):
        model = MMDR().fit(
            two_cluster_dataset.points, np.random.default_rng(5)
        )
        assert model.stats.fit_seconds > 0
        assert len(model.stats.levels_used) >= 1
        assert model.stats.levels_used[0] == 1  # starts at s_dim = 1


class TestDiscovery:
    def test_recovers_five_clusters_and_dims(self, five_cluster_dataset):
        """The headline behaviour: exact cluster count, exact intrinsic
        dimensionality, near-perfect purity, only the injected noise as
        outliers."""
        ds = five_cluster_dataset
        model = MMDR().fit(ds.points, np.random.default_rng(1))
        assert model.n_subspaces == 5
        assert model.reduced_dims() == [8] * 5
        assert cluster_purity(model, ds.labels) > 0.99
        n_noise = int((ds.labels == -1).sum())
        assert model.outliers.size <= n_noise * 3

    def test_multi_level_recursion_used(self, five_cluster_dataset):
        """Generate Ellipsoid must actually climb levels 1 -> 2 -> 4 -> 8
        (the paper's divide-lower-before-conquer-upper order)."""
        model = MMDR().fit(
            five_cluster_dataset.points, np.random.default_rng(1)
        )
        levels = set(model.stats.levels_used)
        assert 1 in levels
        assert max(levels) >= 8

    def test_globally_correlated_data_single_subspace(self, rng):
        spec = SyntheticSpec(
            n_points=1500,
            dimensionality=24,
            n_clusters=1,
            retained_dims=4,
            variance_r=0.3,
            variance_e=0.01,
        )
        ds = generate_correlated_clusters(spec, rng)
        model = MMDR().fit(ds.points, rng)
        assert model.n_subspaces == 1
        assert model.subspaces[0].reduced_dim == 4

    def test_noise_points_become_outliers(self, five_cluster_dataset):
        ds = five_cluster_dataset
        model = MMDR().fit(ds.points, np.random.default_rng(1))
        outlier_truth = ds.labels[model.outliers.member_ids]
        # A clear majority of the detected outliers are true noise.
        assert (outlier_truth == -1).mean() > 0.8

    def test_max_dim_respected(self, rng):
        spec = SyntheticSpec(
            n_points=2000,
            dimensionality=32,
            n_clusters=1,
            retained_dims=12,
            variance_r=0.2,
            variance_e=0.01,
        )
        ds = generate_correlated_clusters(spec, rng)
        config = MMDRConfig(max_dim=6, beta=10.0)  # huge beta: keep all
        model = MMDR(config).fit(ds.points, rng)
        assert all(d <= 6 for d in model.reduced_dims())

    def test_max_clusters_respected(self, rng):
        spec = SyntheticSpec(
            n_points=4000,
            dimensionality=16,
            n_clusters=8,
            retained_dims=2,
            variance_r=0.3,
            variance_e=0.01,
        )
        ds = generate_correlated_clusters(spec, rng)
        config = MMDRConfig(max_clusters=3)
        model = MMDR(config).fit(ds.points, rng)
        assert model.n_subspaces <= 3

    def test_beta_controls_outliers(self, five_cluster_dataset):
        ds = five_cluster_dataset
        strict = MMDR(MMDRConfig(beta=0.01)).fit(
            ds.points, np.random.default_rng(2)
        )
        loose = MMDR(MMDRConfig(beta=0.5)).fit(
            ds.points, np.random.default_rng(2)
        )
        assert strict.outliers.size >= loose.outliers.size

    def test_subspace_mpe_within_beta(self, five_cluster_dataset):
        """Members were admitted under ProjDist_r <= beta, so each final
        subspace's MPE cannot exceed beta."""
        model = MMDR().fit(
            five_cluster_dataset.points, np.random.default_rng(1)
        )
        for subspace in model.subspaces:
            assert subspace.mpe <= 0.1 + 1e-9


class TestMergeBehaviour:
    def test_fragments_reunite(self, rng):
        """Over-segmentation by per-level clustering must be undone: one
        elongated cluster in, one subspace out."""
        spec = SyntheticSpec(
            n_points=3000,
            dimensionality=24,
            n_clusters=1,
            retained_dims=6,
            variance_r=0.25,
            variance_e=0.01,
        )
        ds = generate_correlated_clusters(spec, rng)
        model = MMDR().fit(ds.points, rng)
        assert model.n_subspaces == 1

    def test_distant_clusters_not_merged(self, rng):
        clusters = tuple(
            ClusterSpec(
                size=1000,
                s_dim=3,
                s_r_dim=start,
                variance_r=0.3,
                variance_e=0.01,
                lb=lb,
                rotate=False,
            )
            for start, lb in [(0, 0.0), (5, 10.0)]
        )
        spec = SyntheticSpec(
            n_points=2000,
            dimensionality=12,
            n_clusters=2,
            noise_fraction=0.0,
            clusters=clusters,
        )
        ds = generate_correlated_clusters(spec, rng)
        model = MMDR().fit(ds.points, rng)
        assert model.n_subspaces == 2

    def test_merge_disabled_keeps_fragments(self, five_cluster_dataset):
        config = MMDRConfig(merge_compatible=False)
        model = MMDR(config).fit(
            five_cluster_dataset.points, np.random.default_rng(1)
        )
        baseline = MMDR().fit(
            five_cluster_dataset.points, np.random.default_rng(1)
        )
        assert model.n_subspaces >= baseline.n_subspaces
