"""EllipticalSubspace / OutlierSet / MMDRModel structures."""

import numpy as np
import pytest

from repro.core.subspace import (
    EllipticalSubspace,
    MMDRModel,
    MMDRStats,
    OutlierSet,
)
from repro.linalg.pca import fit_pca


def make_subspace(rng, n=60, d=8, d_r=3, subspace_id=0, id_offset=0):
    data = rng.normal(0, [3, 2, 1] + [0.05] * (d - 3), (n, d))
    model = fit_pca(data)
    basis = model.basis(d_r)
    return EllipticalSubspace(
        subspace_id=subspace_id,
        mean=model.mean,
        basis=basis,
        covariance=np.eye(d),
        member_ids=np.arange(id_offset, id_offset + n),
        projections=(data - model.mean) @ basis,
        discovered_at_dim=d_r,
        mpe=0.01,
        ellipticity=2.0,
    ), data


class TestEllipticalSubspace:
    def test_dimensions(self, rng):
        subspace, _ = make_subspace(rng)
        assert subspace.original_dim == 8
        assert subspace.reduced_dim == 3
        assert subspace.size == 60

    def test_shape_mismatch_rejected(self, rng):
        subspace, _ = make_subspace(rng)
        with pytest.raises(ValueError):
            EllipticalSubspace(
                subspace_id=0,
                mean=subspace.mean,
                basis=subspace.basis,
                covariance=subspace.covariance,
                member_ids=subspace.member_ids,
                projections=subspace.projections[:-1],
                discovered_at_dim=3,
                mpe=0.0,
                ellipticity=0.0,
            )

    def test_radii_bound_projections(self, rng):
        subspace, _ = make_subspace(rng)
        norms = np.linalg.norm(subspace.projections, axis=1)
        assert subspace.max_radius == pytest.approx(norms.max())
        assert subspace.min_radius == pytest.approx(norms.min())

    def test_project_members_matches_stored(self, rng):
        subspace, data = make_subspace(rng)
        assert np.allclose(subspace.project(data), subspace.projections)

    def test_proj_dist_r_is_reconstruction_error(self, rng):
        subspace, data = make_subspace(rng)
        recon = subspace.reconstruct(subspace.project(data))
        assert np.allclose(
            subspace.proj_dist_r(data),
            np.linalg.norm(data - recon, axis=1),
        )

    def test_proj_dist_r_zero_for_points_in_subspace(self, rng):
        subspace, _ = make_subspace(rng)
        in_plane = subspace.reconstruct(rng.normal(size=(5, 3)))
        assert np.allclose(subspace.proj_dist_r(in_plane), 0.0, atol=1e-9)


class TestOutlierSet:
    def test_centroid_and_radius(self, rng):
        pts = rng.normal(size=(20, 4))
        outliers = OutlierSet(member_ids=np.arange(20), points=pts)
        assert np.allclose(outliers.centroid, pts.mean(axis=0))
        dists = np.linalg.norm(pts - outliers.centroid, axis=1)
        assert outliers.max_radius == pytest.approx(dists.max())

    def test_empty_set(self):
        outliers = OutlierSet(
            member_ids=np.zeros(0, dtype=np.int64),
            points=np.zeros((0, 4)),
        )
        assert outliers.size == 0
        assert outliers.max_radius == 0.0

    def test_count_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            OutlierSet(member_ids=np.arange(3), points=rng.normal(size=(2, 4)))


class TestMMDRModel:
    def make_model(self, rng):
        s0, _ = make_subspace(rng, n=60, subspace_id=0, id_offset=0)
        s1, _ = make_subspace(rng, n=40, subspace_id=1, id_offset=60)
        outliers = OutlierSet(
            member_ids=np.arange(100, 110),
            points=rng.normal(size=(10, 8)),
        )
        return MMDRModel(
            subspaces=[s0, s1],
            outliers=outliers,
            n_points=110,
            dimensionality=8,
            stats=MMDRStats(),
        )

    def test_labels_partition(self, rng):
        model = self.make_model(rng)
        labels = model.labels()
        assert labels.shape == (110,)
        assert np.all(labels[:60] == 0)
        assert np.all(labels[60:100] == 1)
        assert np.all(labels[100:] == -1)

    def test_coverage(self, rng):
        model = self.make_model(rng)
        assert model.coverage() == pytest.approx(100 / 110)

    def test_reduced_dims(self, rng):
        model = self.make_model(rng)
        assert model.reduced_dims() == [3, 3]

    def test_assign_member_point(self, rng):
        model = self.make_model(rng)
        subspace = model.subspaces[0]
        in_plane = subspace.reconstruct(np.array([0.5, -0.2, 0.1]))
        sid, projection = model.assign(in_plane, beta=0.1)
        assert sid == 0
        assert projection.shape == (3,)

    def test_assign_far_point_is_outlier(self, rng):
        model = self.make_model(rng)
        far = np.full(8, 1e3)
        sid, projection = model.assign(far, beta=0.1)
        assert sid == -1
        assert projection is None

    def test_summary_mentions_each_subspace(self, rng):
        model = self.make_model(rng)
        text = model.summary()
        assert "subspace 0" in text and "subspace 1" in text
        assert "110 points" in text
