"""Property-based invariants of the MMDR pipeline.

Whatever random (small) dataset MMDR is pointed at, the output must be a
well-formed model: every point accounted for exactly once, dimensionalities
within bounds, radii consistent with projections, and β respected by every
member.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MMDRConfig
from repro.core.mmdr import MMDR
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_clusters=st.integers(min_value=1, max_value=4),
    dims=st.sampled_from([8, 16, 24]),
    intrinsic=st.integers(min_value=1, max_value=4),
)
def test_property_model_wellformed(seed, n_clusters, dims, intrinsic):
    spec = SyntheticSpec(
        n_points=800,
        dimensionality=dims,
        n_clusters=n_clusters,
        retained_dims=min(intrinsic, dims),
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(seed))
    config = MMDRConfig(min_cluster_size=20)
    model = MMDR(config).fit(ds.points, np.random.default_rng(seed + 1))

    # 1. Partition: every point exactly once.
    seen = np.zeros(model.n_points, dtype=int)
    for subspace in model.subspaces:
        seen[subspace.member_ids] += 1
    seen[model.outliers.member_ids] += 1
    assert np.all(seen == 1)

    # 2. Bounds: at least one subspace; dims within [1, min(max_dim, d)].
    assert model.n_subspaces >= 1
    for subspace in model.subspaces:
        assert 1 <= subspace.reduced_dim <= min(config.max_dim, dims)
        assert subspace.original_dim == dims
        # 3. Radii consistent with stored projections.
        norms = np.linalg.norm(subspace.projections, axis=1)
        assert subspace.max_radius == pytest.approx(float(norms.max()))
        assert subspace.min_radius == pytest.approx(float(norms.min()))
        # 4. Every member within beta of its subspace.
        residuals = subspace.proj_dist_r(ds.points[subspace.member_ids])
        assert np.all(residuals <= config.beta + 1e-9)
        # 5. Projections match the subspace's own transform.
        assert np.allclose(
            subspace.project(ds.points[subspace.member_ids]),
            subspace.projections,
            atol=1e-9,
        )

    # 6. MaxEC respected.
    assert model.n_subspaces <= config.max_clusters


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_uniform_noise_mostly_outliers_or_wide(seed):
    """Pure uniform noise has no elliptical structure: MMDR must not
    invent many thin subspaces — whatever it keeps must still respect β."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0, 1, size=(600, 16))
    config = MMDRConfig(min_cluster_size=20)
    model = MMDR(config).fit(data, np.random.default_rng(seed + 1))
    for subspace in model.subspaces:
        residuals = subspace.proj_dist_r(data[subspace.member_ids])
        assert np.all(residuals <= config.beta + 1e-9)
    total = sum(s.size for s in model.subspaces) + model.outliers.size
    assert total == 600
