"""Projection distances, MPE, ellipticity (Definitions 3.1/3.4/3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    ellipticity,
    mean_projection_error,
    projection_distances,
)
from repro.linalg.pca import fit_pca


class TestProjectionDistances:
    def test_split_matches_definition(self, rng):
        """proj_dist_r = ||P - P'|| (lost), proj_dist_e = ||P - P''|| (kept),
        verified against explicit projections onto both subspaces."""
        data = rng.normal(0, [3, 2, 0.5, 0.1], (200, 4))
        model = fit_pca(data)
        d_r = 2
        dists = projection_distances(data, model, d_r)
        centered = data - model.mean
        retained_basis = model.components[:, :d_r]
        eliminated_basis = model.components[:, d_r:]
        p_prime = centered @ retained_basis @ retained_basis.T
        p_dprime = centered @ eliminated_basis @ eliminated_basis.T
        assert np.allclose(
            dists.proj_dist_r, np.linalg.norm(centered - p_prime, axis=1)
        )
        assert np.allclose(
            dists.proj_dist_e, np.linalg.norm(centered - p_dprime, axis=1)
        )

    def test_zero_components_all_lost(self, rng):
        data = rng.normal(size=(50, 3))
        model = fit_pca(data)
        dists = projection_distances(data, model, 0)
        assert np.allclose(dists.proj_dist_e, 0.0)
        assert np.allclose(
            dists.proj_dist_r,
            np.linalg.norm(data - model.mean, axis=1),
        )

    def test_full_components_nothing_lost(self, rng):
        data = rng.normal(size=(50, 3))
        model = fit_pca(data)
        dists = projection_distances(data, model, 3)
        assert np.allclose(dists.proj_dist_r, 0.0)

    def test_dimension_mismatch_raises(self, rng):
        model = fit_pca(rng.normal(size=(20, 4)))
        with pytest.raises(ValueError):
            projection_distances(rng.normal(size=(3, 5)), model, 2)


class TestMPE:
    def test_is_mean_of_proj_dist_r(self, rng):
        data = rng.normal(size=(100, 5))
        model = fit_pca(data)
        dists = projection_distances(data, model, 2)
        assert mean_projection_error(data, model, 2) == pytest.approx(
            dists.proj_dist_r.mean()
        )

    def test_monotone_nonincreasing_in_dims(self, rng):
        data = rng.normal(0, [4, 3, 2, 1, 0.5], (300, 5))
        model = fit_pca(data)
        mpes = [mean_projection_error(data, model, k) for k in range(6)]
        assert all(a >= b - 1e-12 for a, b in zip(mpes, mpes[1:]))

    def test_empty_batch_is_zero(self, rng):
        model = fit_pca(rng.normal(size=(10, 3)))
        dists = projection_distances(np.zeros((0, 3)), model, 1)
        assert dists.mpe == 0.0


class TestEllipticity:
    def test_matches_definition_3_1_in_2d(self, rng):
        """e = (b - a) / a for an axis-aligned ellipse-ish cloud."""
        b_radius, a_radius = 4.0, 1.0
        theta = rng.uniform(0, 2 * np.pi, 4000)
        data = np.stack(
            [b_radius * np.cos(theta), a_radius * np.sin(theta)], axis=1
        )
        model = fit_pca(data)
        dists = projection_distances(data, model, 1)
        expected = (b_radius - a_radius) / a_radius
        assert dists.ellipticity == pytest.approx(expected, rel=0.1)

    def test_circle_has_zero_ellipticity(self, rng):
        theta = rng.uniform(0, 2 * np.pi, 4000)
        data = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        model = fit_pca(data)
        assert projection_distances(data, model, 1).ellipticity < 0.1

    def test_flat_cluster_infinite(self):
        assert ellipticity(np.zeros(5), np.ones(5)) == np.inf

    def test_degenerate_zero(self):
        assert ellipticity(np.zeros(5), np.zeros(5)) == 0.0
        assert ellipticity(np.zeros(0), np.zeros(0)) == 0.0

    def test_larger_elongation_larger_e(self, rng):
        model_input = rng.normal(0, [1.0, 1.0], (500, 2))
        mild = model_input * np.array([2.0, 1.0])
        strong = model_input * np.array([8.0, 1.0])
        e_mild = projection_distances(mild, fit_pca(mild), 1).ellipticity
        e_strong = projection_distances(
            strong, fit_pca(strong), 1
        ).ellipticity
        assert e_strong > e_mild


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=5, max_value=50),
    d=st.integers(min_value=2, max_value=6),
)
def test_property_pythagorean_identity(seed, n, d):
    """proj_dist_r^2 + proj_dist_e^2 == ||P - mean||^2 for every point."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d)) * rng.uniform(0.1, 5.0, size=d)
    model = fit_pca(data)
    for d_r in range(d + 1):
        dists = projection_distances(data, model, d_r)
        total = np.linalg.norm(data - model.mean, axis=1)
        assert np.allclose(
            dists.proj_dist_r**2 + dists.proj_dist_e**2,
            total**2,
            rtol=1e-8,
            atol=1e-8,
        )
