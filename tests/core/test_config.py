"""MMDRConfig — Table 1 defaults and validation."""

import dataclasses

import pytest

from repro.core.config import DEFAULT_CONFIG, MMDRConfig


class TestTableOneDefaults:
    """The paper's Table 1 values, asserted verbatim."""

    def test_beta(self):
        assert DEFAULT_CONFIG.beta == 0.1

    def test_max_mpe(self):
        assert DEFAULT_CONFIG.max_mpe == 0.05

    def test_max_ec(self):
        assert DEFAULT_CONFIG.max_clusters == 10

    def test_max_dim(self):
        assert DEFAULT_CONFIG.max_dim == 20

    def test_epsilon_stream_fraction(self):
        assert DEFAULT_CONFIG.stream_fraction == 0.005

    def test_xi_outlier_fraction(self):
        assert DEFAULT_CONFIG.outlier_fraction == 0.005

    def test_lookup_k(self):
        assert DEFAULT_CONFIG.lookup_k == 3

    def test_activity_threshold_matches_section_6_3(self):
        assert DEFAULT_CONFIG.activity_threshold == 10


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("beta", 0.0),
            ("beta", -1.0),
            ("max_mpe", 0.0),
            ("max_clusters", 0),
            ("max_dim", 0),
            ("stream_fraction", 0.0),
            ("stream_fraction", 1.5),
            ("outlier_fraction", -0.1),
            ("outlier_fraction", 1.0),
            ("lookup_k", 0),
            ("initial_subspace_dim", 0),
            ("mpe_change_threshold", -0.01),
            ("min_cluster_size", 1),
        ],
    )
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError):
            MMDRConfig(**{field: value})

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.beta = 0.5

    def test_with_overrides_copies(self):
        derived = DEFAULT_CONFIG.with_overrides(max_dim=8)
        assert derived.max_dim == 8
        assert DEFAULT_CONFIG.max_dim == 20
        assert derived.beta == DEFAULT_CONFIG.beta

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_overrides(beta=-1.0)
