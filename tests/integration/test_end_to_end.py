"""End-to-end pipeline tests: data -> reduction -> index -> evaluation."""

import numpy as np
import pytest

from repro import (
    ExtendedIDistance,
    GDRReducer,
    GlobalLDRIndex,
    LDRReducer,
    MMDR,
    MMDRReducer,
    ScalableMMDR,
    SequentialScan,
    model_to_reduced,
)
from repro.data import (
    SyntheticSpec,
    generate_correlated_clusters,
    sample_queries,
)
from repro.eval import (
    evaluate_precision,
    exact_knn,
    precision_at_k,
    reduced_knn,
)


@pytest.fixture(scope="module")
def pipeline_setup():
    spec = SyntheticSpec(
        n_points=6000,
        dimensionality=48,
        n_clusters=4,
        retained_dims=6,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(100))
    workload = sample_queries(
        ds.points, 30, np.random.default_rng(101), k=10
    )
    return ds, workload


class TestFullPipeline:
    def test_paper_headline_ordering(self, pipeline_setup):
        """On locally correlated data: MMDR >= LDR >> GDR in precision."""
        ds, workload = pipeline_setup
        precisions = {}
        for reducer in (MMDRReducer(), LDRReducer(), GDRReducer()):
            reduced = reducer.reduce(ds.points, np.random.default_rng(1))
            report = evaluate_precision(ds.points, reduced, workload)
            precisions[reducer.name] = report.precision
        assert precisions["MMDR"] >= precisions["LDR"] - 0.05
        assert precisions["MMDR"] > precisions["GDR"] + 0.2
        assert precisions["MMDR"] > 0.8

    def test_every_index_agrees_on_every_query(self, pipeline_setup):
        """All three index schemes implement the same reduced-space KNN
        semantics, so their answer sets must be identical."""
        ds, workload = pipeline_setup
        reduced = MMDRReducer().reduce(ds.points, np.random.default_rng(1))
        indexes = [
            ExtendedIDistance(reduced),
            GlobalLDRIndex(reduced),
            SequentialScan(reduced),
        ]
        reference = reduced_knn(reduced, workload.queries, workload.k)
        for index in indexes:
            for qi, query in enumerate(workload.queries):
                result = index.knn(query, workload.k)
                assert set(result.ids.tolist()) == set(
                    reference[qi].tolist()
                ), f"{index.name} disagreed on query {qi}"

    def test_index_precision_equals_reduction_precision(
        self, pipeline_setup
    ):
        """Indexing is exact w.r.t. the reduction: going through the
        extended iDistance loses nothing over brute-force reduced KNN."""
        ds, workload = pipeline_setup
        reduced = MMDRReducer().reduce(ds.points, np.random.default_rng(1))
        truth = exact_knn(ds.points, workload.queries, workload.k)
        brute = reduced_knn(reduced, workload.queries, workload.k)
        index = ExtendedIDistance(reduced)
        via_index = np.vstack(
            [
                index.knn(query, workload.k).ids
                for query in workload.queries
            ]
        )
        assert precision_at_k(truth, via_index) == pytest.approx(
            precision_at_k(truth, brute), abs=1e-9
        )

    def test_streamed_model_plugs_into_index(self, pipeline_setup):
        ds, workload = pipeline_setup
        model = ScalableMMDR().fit(ds.points, np.random.default_rng(2))
        index = ExtendedIDistance(model_to_reduced(model))
        result = index.knn(workload.queries[0], 10)
        assert result.k == 10

    def test_dynamic_assignment_routes_new_points(self, pipeline_setup):
        """§5's third structure: covariances + radii support insertion
        routing.  A point sampled from a cluster joins that cluster's
        subspace; junk goes to the outlier set."""
        ds, _ = pipeline_setup
        model = MMDR().fit(ds.points, np.random.default_rng(1))
        hits = 0
        for subspace in model.subspaces:
            member = ds.points[subspace.member_ids[0]]
            sid, projection = model.assign(member, beta=0.1)
            if sid == subspace.subspace_id:
                hits += 1
            assert projection is None or projection.shape == (
                model.subspaces[sid].reduced_dim,
            )
        assert hits >= len(model.subspaces) - 1
        junk = np.full(ds.dimensionality, 50.0)
        assert model.assign(junk, beta=0.1)[0] == -1

    def test_cost_ordering_iMMDR_cheapest(self, pipeline_setup):
        """The efficiency headline: at the paper's dimensionality regime
        (20 retained dims) extended iDistance on MMDR data costs less I/O
        than gLDR and the sequential scan.  (At very low dims the Hybrid
        tree's large fanout can win — the paper's sweep starts at 10.)"""
        from repro.reduction.base import retarget_dimensionality

        ds, workload = pipeline_setup
        mmdr = retarget_dimensionality(
            ds.points,
            MMDRReducer().reduce(ds.points, np.random.default_rng(1)),
            20,
        )
        ldr = retarget_dimensionality(
            ds.points,
            LDRReducer().reduce(ds.points, np.random.default_rng(1)),
            20,
        )
        costs = {}
        for label, index in [
            ("iMMDR", ExtendedIDistance(mmdr)),
            ("gLDR", GlobalLDRIndex(ldr)),
            ("SeqScan", SequentialScan(ldr)),
        ]:
            pages = []
            for query in workload.queries[:10]:
                index.reset_cache()
                pages.append(index.knn(query, 10).stats.page_reads)
            costs[label] = float(np.mean(pages))
        # iMMDR vs gLDR needs realistic data sizes to show (the Hybrid
        # trees over a 6 K-point dataset are only a handful of pages) — the
        # Figure 9 benchmarks assert that ordering at 20 K+ points.  What
        # must hold at any scale is that the index beats scanning.
        assert costs["iMMDR"] < costs["SeqScan"]
        assert costs["gLDR"] < costs["SeqScan"]
