"""End-to-end sharded serving: exact merges and every ladder rung.

Each rung of the router's degrade ladder (retry, hedge, respawn,
route-around, shed) is driven by a deterministic
:class:`~repro.serve.faults.WorkerFaultSpec` — the fault fires on a known
request ordinal in a known process, so every test asserts the *specific*
rung it provoked via the ``serve.*`` metrics, not just "it survived".
"""

import threading

import numpy as np
import pytest

from repro.bench.spec import INDEX_SCHEMES
from repro.index.base import InvalidQueryError
from repro.obs.tracer import Tracer
from repro.serve import (
    NoShardsAvailableError,
    OverloadError,
    RouterConfig,
    WorkerFaultSpec,
)
from repro.serve.router import canonicalize_rows
from repro.storage.faults import FaultPlan

from .conftest import fork_only

pytestmark = fork_only


@pytest.fixture(scope="module")
def baselines(serve_reduced, serve_queries):
    """Canonicalized single-node answers per scheme."""
    out = {}
    for scheme, build in INDEX_SCHEMES.items():
        index = build(serve_reduced)
        batch = index.knn_batch(serve_queries, 5)
        out[scheme] = canonicalize_rows(batch.ids, batch.distances)
    return out


def assert_exact(result, baseline):
    ids, distances = baseline
    np.testing.assert_array_equal(result.ids, ids)
    np.testing.assert_array_equal(result.distances, distances)


@pytest.mark.serve_smoke
@pytest.mark.parametrize("scheme", sorted(INDEX_SCHEMES))
def test_merged_answers_equal_single_node(
    serve_cluster, serve_queries, baselines, scheme
):
    router = serve_cluster(scheme=scheme, n_shards=2)
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert result.shards_answered == 2
    assert_exact(result, baselines[scheme])
    # Per-query stats carry the summed shard work.
    assert sum(s.distance_computations for s in result.stats) > 0


def test_mmap_backed_shards_serve_identically(
    serve_cluster, serve_queries, baselines
):
    router = serve_cluster(scheme="iMMDR", n_shards=2, store="mmap")
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["iMMDR"])


def test_three_shards_hash_mode(serve_cluster, serve_queries, baselines):
    router = serve_cluster(scheme="gLDR", n_shards=3, mode="hash")
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["gLDR"])


# -- ladder rungs --------------------------------------------------------


@pytest.mark.serve_smoke
def test_crash_respawn_recovers_exact_answer(
    serve_cluster, serve_queries, baselines
):
    """Rung: respawn.  SIGKILL on the first request -> EOF -> the
    supervisor respawns from checkpoint + WAL -> the retry answers, and
    the merged result is still exact (recovery, not degradation)."""
    router = serve_cluster(
        fault_specs={0: WorkerFaultSpec(kill_on_request=1)}
    )
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["SeqScan"])
    assert router.metrics.counter("serve.respawns").value >= 1
    assert router.metrics.counter("serve.connection_lost").value >= 1
    assert router.supervisor.spawn_counts[0] == 2


def test_dropped_reply_won_by_hedge(
    serve_cluster, serve_queries, baselines
):
    """Rung: hedge.  The worker swallows reply #1; the hedged duplicate
    (request #2 to the same healthy worker) answers well before the
    deadline, and the win is attributed to the hedge."""
    router = serve_cluster(
        fault_specs={0: WorkerFaultSpec(drop_on_request=1)},
        config=RouterConfig(deadline_s=10.0, hedge_after_s=0.15),
    )
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["SeqScan"])
    assert router.metrics.counter("serve.hedges").value >= 1
    assert router.metrics.counter("serve.hedges_won").value >= 1


def test_slow_reply_wastes_hedge_and_drains_straggler(
    serve_cluster, serve_queries, baselines
):
    """A reply that is merely slow (past the hedge threshold, within the
    deadline) makes the hedge wasted work: the primary wins, the
    straggler reply is drained as stale on the next request."""
    router = serve_cluster(
        fault_specs={
            0: WorkerFaultSpec(hang_on_request=1, hang_s=0.4)
        },
        config=RouterConfig(deadline_s=10.0, hedge_after_s=0.1),
    )
    first = router.knn(serve_queries, 5)
    assert not first.partial
    assert_exact(first, baselines["SeqScan"])
    assert router.metrics.counter("serve.hedges").value >= 1
    assert router.metrics.counter("serve.hedges_wasted").value >= 1
    # The duplicate's answer is still in flight; the next request must
    # discard it by req_id rather than serve a stale payload.
    second = router.knn(serve_queries, 5)
    assert_exact(second, baselines["SeqScan"])
    assert router.metrics.counter("serve.stale_responses").value >= 1


def test_garbled_frame_retried_on_aligned_stream(
    serve_cluster, serve_queries, baselines
):
    """Rung: retry.  A CRC-failing reply is dropped, the stream stays in
    sync, and the bounded retry gets a clean answer."""
    router = serve_cluster(
        fault_specs={1: WorkerFaultSpec(garble_on_request=1)}
    )
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["SeqScan"])
    assert router.metrics.counter("serve.garbled_frames").value >= 1
    assert router.metrics.counter("serve.retries").value >= 1
    # Garbling is retriable on the same process: no respawn happened.
    assert router.supervisor.spawn_counts[1] == 1


def test_timeout_retry_without_respawn(
    serve_cluster, serve_queries, baselines
):
    """Rung: deadline + retry.  One hang longer than the deadline times
    the attempt out; the worker is alive, so the first recourse is a
    plain retry — which succeeds against the now-idle worker."""
    router = serve_cluster(
        fault_specs={
            0: WorkerFaultSpec(hang_on_request=1, hang_s=0.8)
        },
        config=RouterConfig(deadline_s=0.3, max_attempts=3),
    )
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["SeqScan"])
    assert router.metrics.counter("serve.timeouts").value >= 1
    assert router.metrics.counter("serve.retries").value >= 1


@pytest.mark.serve_smoke
def test_persistent_crash_routes_around_with_partial(
    serve_cluster, serve_queries
):
    """Rung: route-around.  A shard whose every incarnation dies on its
    first request exhausts the ladder; the router answers from the
    remaining shards and says so."""
    router = serve_cluster(
        n_shards=3,
        fault_specs={
            0: WorkerFaultSpec(kill_on_request=1, persistent=True)
        },
        config=RouterConfig(deadline_s=5.0, max_attempts=2),
    )
    result = router.knn(serve_queries, 5)
    assert result.partial
    assert result.missing_shards == (0,)
    assert result.shards_answered == 2
    assert router.metrics.counter("serve.partial_results").value == 1
    # The partial answer is exact over the shards that answered: every
    # returned id belongs to shards 1 and 2.
    surviving = np.concatenate(
        [
            a.rid_map
            for a in router.supervisor.plan.shards
            if a.shard_id != 0
        ]
    )
    assert np.isin(result.ids.ravel(), surviving).all()


def test_breaker_opens_then_recovers_after_cooldown(
    serve_cluster, serve_queries, baselines
):
    """Failures trip the breaker OPEN (instant route-around, no ladder
    cost); after the cooldown a half-open probe closes it again and the
    shard rejoins the merge."""
    router = serve_cluster(
        n_shards=3,
        fault_specs={
            0: WorkerFaultSpec(kill_on_request=1, persistent=True)
        },
        config=RouterConfig(
            deadline_s=5.0,
            max_attempts=3,
            breaker_failure_threshold=3,
            breaker_cooldown_s=0.2,
        ),
    )
    first = router.knn(serve_queries, 5)
    assert first.partial
    opened = router.metrics.counter("serve.breaker.open").value
    assert opened >= 1
    # While OPEN, the shard is skipped without touching the worker.
    second = router.knn(serve_queries, 5)
    assert second.partial
    assert router.metrics.counter("serve.breaker_rejected").value >= 1
    # Disarm the fault, wait out the cooldown: the half-open probe's
    # success closes the breaker and the shard answers again.
    router.supervisor._fault_specs.clear()
    router.supervisor.respawn(0)
    import time

    time.sleep(0.25)
    third = router.knn(serve_queries, 5)
    assert not third.partial
    assert_exact(third, baselines["SeqScan"])
    assert router.metrics.counter("serve.breaker.closed").value >= 1


def test_admission_control_sheds_typed(serve_cluster, serve_queries):
    """Rung: shed.  Beyond max_inflight the call fails fast with a typed
    OverloadError instead of queueing without bound."""
    router = serve_cluster(
        config=RouterConfig(deadline_s=10.0, max_inflight=1)
    )
    big = np.repeat(serve_queries, 50, axis=0)
    shed = []
    answered = []

    def call():
        try:
            answered.append(router.knn(big, 5))
        except OverloadError:
            shed.append(1)

    threads = [threading.Thread(target=call) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(shed) >= 1
    assert len(answered) >= 1
    assert router.metrics.counter("serve.shed").value == len(shed)
    # Capacity is restored once in-flight work drains.
    assert not router.knn(serve_queries, 5).partial


def test_all_shards_down_raises_no_shards(serve_cluster, serve_queries):
    router = serve_cluster(
        n_shards=2,
        fault_specs={
            0: WorkerFaultSpec(kill_on_request=1, persistent=True),
            1: WorkerFaultSpec(kill_on_request=1, persistent=True),
        },
        config=RouterConfig(deadline_s=5.0, max_attempts=1),
    )
    with pytest.raises(NoShardsAvailableError):
        router.knn(serve_queries, 5)


# -- storage faults compose with serving ---------------------------------


def test_transient_storage_faults_leave_results_exact(
    serve_cluster, serve_queries, baselines
):
    """A shard running over a seeded transient-only FaultPlan retries
    inside its own storage stack; the served answer stays bit-exact."""
    router = serve_cluster(
        fault_specs={
            0: WorkerFaultSpec(
                storage_plan=FaultPlan(seed=11, transient_read_prob=0.05)
            )
        }
    )
    result = router.knn(serve_queries, 5)
    assert not result.partial
    assert_exact(result, baselines["SeqScan"])


# -- invalid queries (satellite: skip-and-report through the router) ----


@pytest.mark.serve_smoke
def test_invalid_query_skip_and_report(
    serve_cluster, serve_queries, baselines
):
    """A NaN row in a scattered batch is reported exactly once, answered
    rows match single-node, and no shard saw the bad row — nothing
    crashed, no breaker moved."""
    router = serve_cluster(n_shards=3)
    queries = serve_queries.copy()
    queries[2, 0] = np.nan
    queries[5, 1] = np.inf
    result = router.knn(queries, 5)
    assert result.invalid_queries == (2, 5)
    assert not result.partial
    ids, distances = baselines["SeqScan"]
    valid = [i for i in range(len(queries)) if i not in (2, 5)]
    np.testing.assert_array_equal(result.ids[valid], ids[valid])
    assert (result.ids[2] == -1).all() and (result.ids[5] == -1).all()
    assert np.isnan(result.distances[2]).all()
    assert result.stats[2].page_reads == 0
    # No shard was harmed: all workers on their first spawn, breakers
    # closed, zero failures recorded.
    health = router.check_health()
    assert all(entry["breaker"] == "closed" for entry in health.values())
    assert all(entry["responsive"] for entry in health.values())
    assert all(
        count == 1 for count in router.supervisor.spawn_counts.values()
    )


def test_dimension_mismatch_raises_structurally(serve_cluster):
    router = serve_cluster()
    with pytest.raises(InvalidQueryError, match="dimensions"):
        router.knn(np.zeros((2, 3)), 5)


# -- health + observability ---------------------------------------------


def test_check_health_reports_and_heals(serve_cluster, serve_queries):
    router = serve_cluster(n_shards=2)
    health = router.check_health()
    assert set(health) == {0, 1}
    assert all(entry["responsive"] for entry in health.values())
    assert all(
        entry["live_count"] > 0 for entry in health.values()
    )
    # Kill a worker behind the router's back: the heartbeat notices and
    # respawns it.
    router.supervisor.handle(0).process.kill()
    router.supervisor.handle(0).process.join(timeout=5.0)
    health = router.check_health()
    assert router.supervisor.spawn_counts[0] == 2
    assert not router.knn(serve_queries, 5).partial


def test_trace_stitching_across_workers(serve_cluster, serve_queries):
    router = serve_cluster(n_shards=2)
    tracer = Tracer()
    result = router.knn(serve_queries, 5, tracer=tracer)
    assert not result.partial
    scatter = [s for s in tracer.spans if s.name == "serve.scatter"]
    assert len(scatter) == 1
    adopted = [
        s
        for s in tracer.spans
        if s.parent == scatter[0].index
        and s.attributes.get("worker") is not None
    ]
    assert sorted(s.attributes["worker"] for s in adopted) == [0, 1]
    # Worker-side batch spans arrived under the scatter span.
    assert sum(1 for s in tracer.spans if s.name == "knn.batch") == 2
    # Worker metrics merged into the parent registry.
    names = {r["name"] for r in tracer.metrics.as_records()}
    assert "knn.batch_qps" in names
