"""Shard planning: disjoint covering splits with bit-identical floats."""

import numpy as np
import pytest

from repro.serve.planner import ShardPlanner, mode_for_scheme


def _global_rids(plan):
    return np.concatenate([a.rid_map for a in plan.shards])


@pytest.mark.parametrize("mode", ["hash", "partition"])
def test_split_is_disjoint_and_covering(serve_reduced, mode):
    plan = ShardPlanner(2, mode).plan(serve_reduced)
    rids = _global_rids(plan)
    assert rids.size == serve_reduced.n_points
    assert np.unique(rids).size == rids.size
    np.testing.assert_array_equal(
        np.sort(rids), np.arange(serve_reduced.n_points)
    )


@pytest.mark.parametrize("mode", ["hash", "partition"])
def test_shard_local_rid_space(serve_reduced, mode):
    plan = ShardPlanner(2, mode).plan(serve_reduced)
    for assignment in plan.shards:
        reduced = assignment.reduced
        assert reduced.n_points == assignment.rid_map.size
        local = np.concatenate(
            [s.member_ids for s in reduced.subspaces]
            + [reduced.outliers.member_ids]
        )
        np.testing.assert_array_equal(
            np.sort(local), np.arange(reduced.n_points)
        )


def test_hash_mode_preserves_projection_rows_bitwise(serve_reduced):
    plan = ShardPlanner(3, "hash").plan(serve_reduced)
    for assignment in plan.shards:
        for local in assignment.reduced.subspaces:
            # Match the local subspace back to its global original by
            # identical basis (bases are unique per subspace).
            source = next(
                s
                for s in serve_reduced.subspaces
                if s.basis.shape == local.basis.shape
                and np.array_equal(s.basis, local.basis)
            )
            global_rids = assignment.rid_map[local.member_ids]
            lookup = {
                int(rid): i
                for i, rid in enumerate(source.member_ids.tolist())
            }
            rows = np.array([lookup[int(r)] for r in global_rids])
            assert np.array_equal(
                local.projections, source.projections[rows]
            )


def test_partition_mode_keeps_ellipsoids_whole(serve_reduced):
    n_shards = 2
    plan = ShardPlanner(n_shards, "partition").plan(serve_reduced)
    for idx, subspace in enumerate(serve_reduced.subspaces):
        owner = plan.shards[idx % n_shards]
        local = owner.reduced.subspaces
        match = [
            s
            for s in local
            if s.size == subspace.size
            and np.array_equal(s.projections, subspace.projections)
        ]
        assert len(match) == 1
        np.testing.assert_array_equal(
            owner.rid_map[match[0].member_ids], subspace.member_ids
        )


def test_empty_shard_raises(serve_reduced):
    # Far more shards than partitions: partition mode must refuse rather
    # than plan shards that cannot build an index.
    with pytest.raises(ValueError, match="empty"):
        ShardPlanner(64, "partition").plan(serve_reduced)


def test_metric_and_info_propagate(serve_reduced):
    plan = ShardPlanner(2, "hash").plan(serve_reduced)
    assert plan.metric == serve_reduced.metric
    for assignment in plan.shards:
        assert assignment.reduced.metric == serve_reduced.metric
        assert assignment.reduced.info["shard_of"] == 2.0


def test_mode_for_scheme():
    assert mode_for_scheme("iMMDR") == "partition"
    assert mode_for_scheme("gLDR") == "hash"
    assert mode_for_scheme("SeqScan") == "hash"


def test_planner_validation():
    with pytest.raises(ValueError):
        ShardPlanner(0)
    with pytest.raises(ValueError):
        ShardPlanner(2, "range")


def test_describe_mentions_every_shard(serve_reduced):
    plan = ShardPlanner(2, "hash").plan(serve_reduced)
    text = plan.describe()
    assert "shard 0" in text and "shard 1" in text
