"""Circuit-breaker state machine under an injectable clock."""

import pytest

from repro.serve.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, threshold=3, cooldown=10.0, transitions=None):
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_s=cooldown,
        clock=clock,
        on_transition=(
            (lambda old, new: transitions.append((old, new)))
            if transitions is not None
            else None
        ),
    )


def test_stays_closed_below_threshold(clock):
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow_request()


def test_success_resets_consecutive_count(clock):
    breaker = make(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_trips_open_at_threshold_and_refuses(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow_request()


def test_half_open_after_cooldown_admits_one_probe(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow_request()  # the probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow_request()  # second caller refused


def test_probe_success_closes(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow_request()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow_request()


def test_probe_failure_reopens_with_fresh_cooldown(clock):
    breaker = make(clock)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow_request()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    clock.advance(9.9)
    assert not breaker.allow_request()
    clock.advance(0.2)
    assert breaker.allow_request()


def test_transition_callback_sees_full_cycle(clock):
    transitions = []
    breaker = make(clock, transitions=transitions)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(10.0)
    breaker.allow_request()
    breaker.record_success()
    assert transitions == [
        (BreakerState.CLOSED, BreakerState.OPEN),
        (BreakerState.OPEN, BreakerState.HALF_OPEN),
        (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    ]


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=-1)
