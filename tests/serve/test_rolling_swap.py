"""Rolling generational swap across shard workers.

The bench's served leg drives the swap under sustained open-loop load;
these tests pin the mechanism deterministically: route-around of a
draining shard, plan compatibility validation, and post-swap answers
fingerprint-identical to a fresh single-node build of the new generation.
"""

import numpy as np
import pytest

from repro.bench.fingerprint import result_fingerprint
from repro.bench.spec import INDEX_SCHEMES
from repro.reduction import MMDRReducer
from repro.serve import ShardPlanner, Supervisor
from repro.serve.planner import mode_for_scheme
from repro.serve.router import canonicalize_rows

from .conftest import fork_only


@pytest.fixture(scope="module")
def next_generation(serve_points):
    """The post-ingest dataset and its re-fit reduction: the base points
    plus a shifted cluster, re-clustered from scratch."""
    rng = np.random.default_rng(21)
    extra = rng.normal(2.0, 0.3, (80, serve_points.shape[1]))
    points = np.concatenate([serve_points, extra])
    return points, MMDRReducer().reduce(points, np.random.default_rng(1))


def _fingerprint(ids, distances):
    return result_fingerprint(*canonicalize_rows(ids, distances))


@fork_only
class TestRollingSwap:
    def test_swap_serves_the_new_generation_exactly(
        self, serve_cluster, next_generation, serve_queries, tmp_path
    ):
        points, new_reduced = next_generation
        scheme = "SeqScan"
        router = serve_cluster(scheme=scheme, n_shards=3)
        before = router.knn(serve_queries, 5)
        assert not before.partial

        new_plan = ShardPlanner(3, mode_for_scheme(scheme)).plan(new_reduced)
        report = router.rolling_swap(new_plan, tmp_path / "gen1")
        assert report.shards_swapped == tuple(router.supervisor.shard_ids)
        assert router.supervisor.plan is new_plan

        after = router.knn(serve_queries, 5)
        assert not after.partial
        reference = INDEX_SCHEMES[scheme](new_reduced).knn_batch(
            serve_queries, 5
        )
        assert _fingerprint(after.ids, after.distances) == _fingerprint(
            reference.ids, reference.distances
        )
        # The swap changed the answers (new points are in range), so the
        # equality above is not vacuous.
        assert _fingerprint(after.ids, after.distances) != _fingerprint(
            before.ids, before.distances
        )

    def test_draining_shard_is_routed_around(
        self, serve_cluster, serve_queries
    ):
        router = serve_cluster(scheme="SeqScan", n_shards=3)
        router._draining.add(1)
        try:
            result = router.knn(serve_queries, 5)
        finally:
            router._draining.clear()
        assert result.partial
        assert result.missing_shards == (1,)
        assert result.shards_answered == 2
        healed = router.knn(serve_queries, 5)
        assert not healed.partial

    def test_incompatible_plan_is_rejected_before_any_worker_dies(
        self, serve_cluster, next_generation, tmp_path
    ):
        _, new_reduced = next_generation
        router = serve_cluster(scheme="SeqScan", n_shards=3)
        bad_plan = ShardPlanner(2, "hash").plan(new_reduced)
        with pytest.raises(ValueError, match="shard ids"):
            router.rolling_swap(bad_plan, tmp_path / "bad")
        # Nothing drained, nothing respawned: the cluster still answers.
        result = router.knn(np.zeros((1, new_reduced.dimensionality)), 3)
        assert not result.partial

    def test_swap_is_per_shard_spawn_counted(
        self, serve_cluster, next_generation, tmp_path
    ):
        _, new_reduced = next_generation
        router = serve_cluster(scheme="SeqScan", n_shards=2)
        supervisor: Supervisor = router.supervisor
        spawns_before = dict(supervisor.spawn_counts)
        new_plan = ShardPlanner(2, "hash").plan(new_reduced)
        router.rolling_swap(new_plan, tmp_path / "gen1")
        for sid in supervisor.shard_ids:
            assert supervisor.spawn_counts[sid] == spawns_before[sid] + 1
        assert (
            router.metrics.counter("serve.generation_swaps").value
            == len(supervisor.shard_ids)
        )
