"""Framing contract: CRC detection, stream alignment, partial reads."""

import socket

import numpy as np
import pytest

from repro.serve.protocol import (
    MAGIC,
    ConnectionLostError,
    FrameReader,
    GarbledFrameError,
    encode_frame,
    garble_frame,
    send_message,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_round_trip_preserves_arrays(pair):
    a, b = pair
    message = {
        "op": "knn",
        "ids": np.arange(12, dtype=np.int64).reshape(3, 4),
        "distances": np.linspace(0, 1, 12).reshape(3, 4),
    }
    send_message(a, message)
    got = FrameReader(b).read_message(timeout=1.0)
    assert got["op"] == "knn"
    np.testing.assert_array_equal(got["ids"], message["ids"])
    np.testing.assert_array_equal(got["distances"], message["distances"])


def test_garbled_frame_detected_and_stream_stays_aligned(pair):
    a, b = pair
    reader = FrameReader(b)
    a.sendall(garble_frame(encode_frame({"n": 1})))
    send_message(a, {"n": 2})
    with pytest.raises(GarbledFrameError):
        reader.read_message(timeout=1.0)
    # The bad frame was consumed whole; the next one reads clean.
    assert reader.read_message(timeout=1.0) == {"n": 2}


def test_eof_raises_connection_lost(pair):
    a, b = pair
    a.close()
    with pytest.raises(ConnectionLostError):
        FrameReader(b).read_message(timeout=1.0)


def test_bad_magic_is_connection_lost_not_garble(pair):
    a, b = pair
    frame = bytearray(encode_frame({"n": 1}))
    frame[:4] = b"XXXX"
    a.sendall(bytes(frame))
    with pytest.raises(ConnectionLostError):
        FrameReader(b).read_message(timeout=1.0)


def test_absurd_length_prefix_rejected(pair):
    a, b = pair
    frame = bytearray(encode_frame({"n": 1}))
    frame[4:8] = (FrameReader.MAX_FRAME_BYTES + 1).to_bytes(4, "little")
    a.sendall(bytes(frame))
    with pytest.raises(ConnectionLostError):
        FrameReader(b).read_message(timeout=1.0)


def test_partial_frame_survives_timeout(pair):
    a, b = pair
    reader = FrameReader(b)
    frame = encode_frame({"payload": list(range(100))})
    a.sendall(frame[:10])
    with pytest.raises(socket.timeout):
        reader.read_message(timeout=0.05)
    # The half-read bytes stayed buffered; completing the frame works.
    a.sendall(frame[10:])
    assert reader.read_message(timeout=1.0) == {
        "payload": list(range(100))
    }


def test_garble_requires_payload():
    header_only = encode_frame(None)[:12]
    with pytest.raises(ValueError):
        garble_frame(header_only)


def test_magic_constant_framing():
    frame = encode_frame({"x": 1})
    assert frame[:4] == MAGIC
