"""Shared serving-layer fixtures: one small reduction, real fork workers.

The dataset is deliberately small (600 x 10): every e2e test forks worker
processes and pays real checkpoint + recovery per spawn, so the fixture
keeps shard builds cheap while still exercising multiple subspaces plus
outliers.
"""

import multiprocessing
import tempfile

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.data.workload import sample_queries
from repro.reduction import MMDRReducer
from repro.serve import Router, RouterConfig, ShardPlanner, Supervisor
from repro.serve.planner import mode_for_scheme

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard workers require the fork start method",
)


@pytest.fixture(scope="session")
def serve_points():
    spec = SyntheticSpec(
        n_points=600,
        dimensionality=10,
        n_clusters=2,
        retained_dims=3,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    return generate_correlated_clusters(
        spec, np.random.default_rng(7)
    ).points


@pytest.fixture(scope="session")
def serve_reduced(serve_points):
    return MMDRReducer().reduce(serve_points, np.random.default_rng(1))


@pytest.fixture(scope="session")
def serve_queries(serve_points):
    return sample_queries(
        serve_points, 8, np.random.default_rng(5), k=5, method="perturbed"
    ).queries


@pytest.fixture
def serve_cluster(serve_reduced, tmp_path):
    """Factory: spin up a sharded cluster, tear it down afterwards.

    ``serve_cluster(scheme=..., n_shards=..., mode=..., store=...,
    config=..., fault_specs={shard: WorkerFaultSpec})`` -> started Router.
    """
    routers = []

    def factory(
        scheme="SeqScan",
        n_shards=3,
        mode=None,
        store="memory",
        config=None,
        fault_specs=None,
    ):
        plan = ShardPlanner(
            n_shards, mode if mode is not None else mode_for_scheme(scheme)
        ).plan(serve_reduced)
        root = tempfile.mkdtemp(dir=tmp_path)
        supervisor = Supervisor(plan, scheme, root, store=store)
        for shard_id, spec in (fault_specs or {}).items():
            supervisor.set_fault_spec(shard_id, spec)
        router = Router(
            supervisor,
            config if config is not None else RouterConfig(deadline_s=10.0),
        )
        supervisor.start()
        routers.append(router)
        return router

    yield factory
    for router in routers:
        router.close()
