"""Appendix-A synthetic data generator (GCD)."""

import numpy as np
import pytest

from repro.core.geometry import projection_distances
from repro.data.synthetic import (
    ClusterSpec,
    SyntheticSpec,
    generate_correlated_clusters,
    spec_for_ellipticity,
)
from repro.linalg.pca import fit_pca


class TestSpecs:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size": 0, "s_dim": 2, "s_r_dim": 0, "variance_r": 1, "variance_e": 1, "lb": 0},
            {"size": 5, "s_dim": 0, "s_r_dim": 0, "variance_r": 1, "variance_e": 1, "lb": 0},
            {"size": 5, "s_dim": 2, "s_r_dim": -1, "variance_r": 1, "variance_e": 1, "lb": 0},
            {"size": 5, "s_dim": 2, "s_r_dim": 0, "variance_r": 0, "variance_e": 1, "lb": 0},
        ],
    )
    def test_cluster_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterSpec(**kwargs)

    def test_energy_ratio(self):
        spec = ClusterSpec(
            size=10, s_dim=2, s_r_dim=0,
            variance_r=0.4, variance_e=0.02, lb=0.0,
        )
        assert spec.energy_ratio == pytest.approx(20.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_points": 0},
            {"dimensionality": 0},
            {"n_clusters": 0},
            {"noise_fraction": 1.0},
            {"retained_dims": 100, "dimensionality": 10},
        ],
    )
    def test_synthetic_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticSpec(**kwargs)

    def test_spec_for_ellipticity_maps_definition(self):
        spec = spec_for_ellipticity(4.0, base_minor=0.02)
        assert spec.variance_r == pytest.approx(5 * 0.02)
        with pytest.raises(ValueError):
            spec_for_ellipticity(-1.0)


class TestGeneration:
    def test_shapes_and_counts(self, rng):
        spec = SyntheticSpec(
            n_points=1000, dimensionality=16, n_clusters=3,
            retained_dims=4, noise_fraction=0.01,
        )
        ds = generate_correlated_clusters(spec, rng)
        assert ds.points.shape == (1000, 16)
        assert ds.labels.shape == (1000,)
        assert ds.n_points == 1000
        assert ds.dimensionality == 16
        assert set(np.unique(ds.labels)) <= {-1, 0, 1, 2}

    def test_noise_fraction_honored(self, rng):
        spec = SyntheticSpec(
            n_points=2000, dimensionality=8, n_clusters=2,
            retained_dims=2, noise_fraction=0.05,
        )
        ds = generate_correlated_clusters(spec, rng)
        n_noise = int((ds.labels == -1).sum())
        assert n_noise == pytest.approx(100, abs=5)

    def test_clusters_have_intrinsic_dimensionality(self, rng):
        """The defining property: each cluster's local PCA shows exactly
        s_dim strong directions."""
        spec = SyntheticSpec(
            n_points=3000, dimensionality=24, n_clusters=2,
            retained_dims=5, variance_r=0.4, variance_e=0.005,
        )
        ds = generate_correlated_clusters(spec, rng)
        for cluster in range(2):
            pts = ds.cluster_points(cluster)
            model = fit_pca(pts)
            eig = model.eigenvalues
            # Strong gap between the 5th and 6th eigenvalues.
            assert eig[4] > eig[5] * 20

    def test_rotation_mixes_coordinates(self, rng):
        spec = SyntheticSpec(
            n_points=500, dimensionality=12, n_clusters=1,
            retained_dims=2, variance_r=0.5, variance_e=0.001,
            rotate=True,
        )
        ds = generate_correlated_clusters(spec, rng)
        # After rotation the per-axis variance is spread out: no single
        # original axis holds all the energy.
        axis_var = ds.points.var(axis=0)
        assert axis_var.max() < axis_var.sum() * 0.9

    def test_no_rotation_keeps_axes(self, rng):
        spec = SyntheticSpec(
            n_points=500, dimensionality=12, n_clusters=1,
            retained_dims=2, variance_r=0.5, variance_e=0.001,
            rotate=False,
            clusters=(
                ClusterSpec(
                    size=500, s_dim=2, s_r_dim=3,
                    variance_r=0.5, variance_e=0.001, lb=0.0,
                    rotate=False,
                ),
            ),
        )
        ds = generate_correlated_clusters(spec, rng)
        axis_var = ds.points.var(axis=0)
        assert set(np.argsort(axis_var)[-2:].tolist()) == {3, 4}

    def test_center_offset_positions_cluster(self, rng):
        offset = tuple(float(v) for v in np.full(6, 3.0))
        spec = SyntheticSpec(
            n_points=300, dimensionality=6, n_clusters=1,
            retained_dims=2,
            clusters=(
                ClusterSpec(
                    size=300, s_dim=2, s_r_dim=0,
                    variance_r=0.2, variance_e=0.01, lb=0.0,
                    center_offset=offset,
                ),
            ),
        )
        ds = generate_correlated_clusters(spec, rng)
        assert np.allclose(ds.points.mean(axis=0), 3.0, atol=0.05)

    def test_center_offset_dimension_mismatch(self, rng):
        spec = SyntheticSpec(
            n_points=100, dimensionality=6, n_clusters=1,
            retained_dims=2,
            clusters=(
                ClusterSpec(
                    size=100, s_dim=2, s_r_dim=0,
                    variance_r=0.2, variance_e=0.01, lb=0.0,
                    center_offset=(1.0, 2.0),
                ),
            ),
        )
        with pytest.raises(ValueError):
            generate_correlated_clusters(spec, rng)

    def test_points_shuffled(self, rng):
        spec = SyntheticSpec(
            n_points=1000, dimensionality=8, n_clusters=2,
            retained_dims=2,
        )
        ds = generate_correlated_clusters(spec, rng)
        # Labels are not sorted runs: both clusters appear early and late.
        assert len(set(ds.labels[:50].tolist())) > 1

    def test_deterministic_under_seed(self):
        spec = SyntheticSpec(n_points=200, dimensionality=8, n_clusters=2)
        a = generate_correlated_clusters(spec, np.random.default_rng(5))
        b = generate_correlated_clusters(spec, np.random.default_rng(5))
        assert np.array_equal(a.points, b.points)
        assert np.array_equal(a.labels, b.labels)

    def test_gaussian_distribution_supported(self, rng):
        spec = SyntheticSpec(
            n_points=500, dimensionality=8, n_clusters=1,
            retained_dims=2, distribution="gaussian",
        )
        ds = generate_correlated_clusters(spec, rng)
        assert np.all(np.isfinite(ds.points))

    def test_ellipticity_increases_with_variance_ratio(self, rng):
        results = []
        for variance_r in (0.1, 0.5):
            spec = SyntheticSpec(
                n_points=2000, dimensionality=10, n_clusters=1,
                retained_dims=2, variance_r=variance_r,
                variance_e=0.05,
            )
            ds = generate_correlated_clusters(spec, rng)
            model = fit_pca(ds.points)
            results.append(
                projection_distances(ds.points, model, 2).ellipticity
            )
        assert results[1] > results[0]
