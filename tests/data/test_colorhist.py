"""Simulated Corel color histograms."""

import numpy as np
import pytest

from repro.data.colorhist import ColorHistogramSpec, generate_color_histograms


class TestSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_images": 0},
            {"n_bins": 1},
            {"n_themes": 0},
            {"dominant_bins": 0},
            {"dominant_bins": 100},
            {"outlier_fraction": 1.0},
            {"outlier_fraction": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ColorHistogramSpec(**kwargs)

    def test_paper_scale_defaults(self):
        spec = ColorHistogramSpec()
        assert spec.n_images == 70_000
        assert spec.n_bins == 64


class TestGeneration:
    @pytest.fixture(scope="class")
    def histograms(self):
        spec = ColorHistogramSpec(n_images=3000)
        return generate_color_histograms(spec, np.random.default_rng(7)), spec

    def test_shape(self, histograms):
        data, spec = histograms
        assert data.shape == (3000, 64)

    def test_rows_are_histograms(self, histograms):
        data, _ = histograms
        assert np.all(data >= 0)
        assert np.allclose(data.sum(axis=1), 1.0, atol=1e-9)

    def test_many_exact_zeros(self, histograms):
        """The Corel property §6.1 leans on: 'many attributes being 0'."""
        data, _ = histograms
        zero_fraction = (data == 0.0).mean()
        assert zero_fraction > 0.5

    def test_skewed_toward_few_colors(self, histograms):
        """'Color histograms tend to be very skewed towards a small set of
        colors': the top 8 bins of each image carry most of the mass."""
        data, _ = histograms
        top8 = np.sort(data, axis=1)[:, -8:].sum(axis=1)
        assert np.median(top8) > 0.8

    def test_images_form_themes(self, histograms):
        """Loose local correlation exists: nearest neighbors share dominant
        bins far more often than random pairs."""
        data, _ = histograms
        rng = np.random.default_rng(0)
        idx = rng.choice(3000, 200, replace=False)
        sample = data[idx]
        dists = np.linalg.norm(
            sample[:, None, :] - sample[None, :, :], axis=2
        )
        np.fill_diagonal(dists, np.inf)
        nn = np.argmin(dists, axis=1)
        def dominant(row):
            return set(np.argsort(row)[-4:].tolist())
        overlaps = [
            len(dominant(sample[i]) & dominant(sample[nn[i]]))
            for i in range(200)
        ]
        random_pairs = [
            len(dominant(sample[i]) & dominant(sample[(i + 97) % 200]))
            for i in range(200)
        ]
        assert np.mean(overlaps) > np.mean(random_pairs) + 0.5

    def test_deterministic_under_seed(self):
        spec = ColorHistogramSpec(n_images=100)
        a = generate_color_histograms(spec, np.random.default_rng(3))
        b = generate_color_histograms(spec, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_outlier_free_spec(self):
        spec = ColorHistogramSpec(n_images=200, outlier_fraction=0.0)
        data = generate_color_histograms(spec, np.random.default_rng(3))
        assert data.shape == (200, 64)
