"""Query workload sampling."""

import numpy as np
import pytest

from repro.data.workload import QueryWorkload, sample_queries


class TestQueryWorkload:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            QueryWorkload(queries=rng.normal(size=(5, 3)), k=0)
        with pytest.raises(ValueError):
            QueryWorkload(queries=rng.normal(size=5), k=10)

    def test_n_queries(self, rng):
        workload = QueryWorkload(queries=rng.normal(size=(7, 3)), k=10)
        assert workload.n_queries == 7


class TestSampleQueries:
    def test_points_method_returns_data_rows(self, rng):
        data = rng.normal(size=(100, 4))
        workload = sample_queries(data, 20, rng, method="points")
        for query in workload.queries:
            assert np.any(np.all(np.isclose(data, query), axis=1))

    def test_perturbed_method_moves_points(self, rng):
        data = rng.normal(size=(100, 4))
        workload = sample_queries(
            data, 20, rng, method="perturbed", perturbation=0.1
        )
        exact_hits = sum(
            bool(np.any(np.all(np.isclose(data, q), axis=1)))
            for q in workload.queries
        )
        assert exact_hits == 0

    def test_oversampling_allowed(self, rng):
        data = rng.normal(size=(5, 3))
        workload = sample_queries(data, 50, rng)
        assert workload.n_queries == 50

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_queries(np.zeros((0, 3)), 5, rng)
        with pytest.raises(ValueError):
            sample_queries(rng.normal(size=(10, 3)), 0, rng)
        with pytest.raises(ValueError):
            sample_queries(rng.normal(size=(10, 3)), 5, rng, method="bogus")

    def test_deterministic_under_seed(self, rng):
        data = rng.normal(size=(100, 4))
        a = sample_queries(data, 10, np.random.default_rng(1))
        b = sample_queries(data, 10, np.random.default_rng(1))
        assert np.array_equal(a.queries, b.queries)
