"""BufferPool invalidate/clear vs. the batch engine's cold-LRU replay.

The batch engine does not read through the live pool — it *replays* each
query's page sequence against a simulated cold LRU ledger.  That replay is
only correct if the live pool's state transitions (invalidations from
frees/overwrites, clears between cold-cache queries) cannot desynchronize
the two accountings, so these tests mutate the index between and during
measurements and assert batch and sequential page accounting stay equal.
"""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.index.idistance import ExtendedIDistance
from repro.reduction.mmdr_adapter import model_to_reduced
from repro.storage.buffer import BufferPool
from repro.storage.pager import PageStore


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return two_cluster_dataset, model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        12,
        np.random.default_rng(9),
        k=8,
        method="perturbed",
    )


def sequential_reference(index, workload):
    ids, dists, stats = [], [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k)
        ids.append(res.ids)
        dists.append(res.distances)
        stats.append(res.stats)
    return np.vstack(ids), np.vstack(dists), stats


def assert_accounting_equal(seq, batch):
    seq_ids, seq_dists, seq_stats = seq
    assert np.array_equal(seq_ids, batch.ids)
    assert np.array_equal(seq_dists, batch.distances)
    for a, b in zip(seq_stats, batch.stats):
        assert a.page_reads == b.page_reads
        assert a.distance_computations == b.distance_computations
        assert a.key_comparisons == b.key_comparisons


class TestPoolInvalidation:
    def test_invalidate_forces_physical_reread(self):
        store = PageStore()
        ids = [store.allocate({"n": i}, 32) for i in range(4)]
        pool = BufferPool(store, 8)
        for page_id in ids:
            pool.read(page_id)
        assert pool.misses == 4
        pool.read(ids[0])
        assert pool.hits == 1
        pool.invalidate(ids[0])
        pool.read(ids[0])
        assert pool.misses == 5  # resident copy dropped: physical again

    def test_clear_resets_residency_not_counters(self):
        store = PageStore()
        ids = [store.allocate({"n": i}, 32) for i in range(4)]
        pool = BufferPool(store, 8)
        for page_id in ids:
            pool.read(page_id)
        pool.clear()
        assert len(pool) == 0
        assert pool.misses == 4  # history survives the cold-cache reset
        for page_id in ids:
            pool.read(page_id)
        assert pool.misses == 8

    def test_invalidate_missing_page_is_noop(self):
        pool = BufferPool(PageStore(), 4)
        pool.invalidate(999)  # never resident: nothing to drop


class TestBatchReplayAfterInvalidations:
    def test_accounting_equal_after_dynamic_inserts(
        self, reduced, workload
    ):
        """Inserts overwrite B+-tree pages (pool invalidations) between
        builds; the ledger replay must track the post-insert page layout."""
        dataset, red = reduced
        rng = np.random.default_rng(21)
        picks = dataset.points[rng.integers(0, dataset.points.shape[0], 8)]
        new_points = picks + rng.normal(0, 0.01, picks.shape)

        seq_index = ExtendedIDistance(red)
        for j, point in enumerate(new_points):
            seq_index.insert(point, red.n_points + j)
        seq = sequential_reference(seq_index, workload)

        batch_index = ExtendedIDistance(red)
        for j, point in enumerate(new_points):
            batch_index.insert(point, red.n_points + j)
        batch = batch_index.knn_batch(workload.queries, workload.k)
        assert_accounting_equal(seq, batch)

    def test_accounting_equal_with_warm_pool_before_batch(
        self, reduced, workload
    ):
        """A warm (then invalidated) live pool must not leak into the
        replay: batch accounting is defined cold regardless of pool state."""
        _, red = reduced
        index = ExtendedIDistance(red)
        # Warm the pool, then punch holes in it.
        index.knn(workload.queries[0], workload.k)
        for page_id in list(index.pool._resident)[::2]:
            index.pool.invalidate(page_id)
        batch = index.knn_batch(workload.queries, workload.k)
        seq = sequential_reference(ExtendedIDistance(red), workload)
        assert_accounting_equal(seq, batch)

    def test_sequential_and_batch_agree_on_same_instance(
        self, reduced, workload
    ):
        """Interleaving: sequential pass, batch pass, sequential pass on
        ONE instance — every pass reports the same cold-cache accounting."""
        _, red = reduced
        index = ExtendedIDistance(red)
        first = sequential_reference(index, workload)
        batch = index.knn_batch(workload.queries, workload.k)
        second = sequential_reference(index, workload)
        assert_accounting_equal(first, batch)
        assert_accounting_equal(second, batch)
