"""Hybrid tree (the gLDR substrate)."""

import numpy as np
import pytest

from repro.index.hybrid_tree import (
    HybridTree,
    hybrid_internal_fanout,
    hybrid_leaf_capacity,
)
from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters
from repro.storage.pager import PageStore


def make_tree(vectors, rids=None, pool_pages=256):
    counters = CostCounters()
    store = PageStore(counters)
    pool = BufferPool(store, pool_pages, counters)
    if rids is None:
        rids = np.arange(vectors.shape[0])
    return HybridTree(store, pool, vectors, rids), counters


class TestGeometryOfFanout:
    def test_fanout_shrinks_with_dimensionality(self):
        """The structural reason gLDR loses at high dims (§6.2)."""
        assert hybrid_internal_fanout(10) > hybrid_internal_fanout(20)
        assert hybrid_internal_fanout(20) > hybrid_internal_fanout(30)

    def test_leaf_capacity_shrinks_with_dimensionality(self):
        assert hybrid_leaf_capacity(10) > hybrid_leaf_capacity(30)

    @pytest.mark.parametrize("d", [1, 10, 20, 30])
    def test_capacities_positive(self, d):
        assert hybrid_internal_fanout(d) >= 2
        assert hybrid_leaf_capacity(d) >= 1


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_tree(np.zeros((0, 4)))

    def test_rid_mismatch_rejected(self, rng):
        counters = CostCounters()
        store = PageStore(counters)
        pool = BufferPool(store, 16, counters)
        with pytest.raises(ValueError):
            HybridTree(store, pool, rng.normal(size=(5, 3)), np.arange(4))

    def test_single_point(self):
        tree, _ = make_tree(np.array([[1.0, 2.0]]), np.array([42]))
        assert tree.knn(np.array([0.0, 0.0]), 1) == [
            (pytest.approx(np.sqrt(5.0)), 42)
        ]

    def test_duplicate_points(self, rng):
        vectors = np.repeat(rng.normal(size=(3, 4)), 50, axis=0)
        tree, _ = make_tree(vectors)
        result = tree.knn(vectors[0], 10)
        assert len(result) == 10
        assert result[0][0] == pytest.approx(0.0)

    def test_pages_allocated(self, rng):
        vectors = rng.normal(size=(5000, 8))
        tree, counters = make_tree(vectors)
        assert tree.store.allocated_pages > 5000 // hybrid_leaf_capacity(8)


class TestKNN:
    def test_exact_vs_brute_force(self, rng):
        vectors = rng.normal(size=(2000, 6))
        tree, _ = make_tree(vectors)
        for qi in range(10):
            query = rng.normal(size=6)
            truth = np.argsort(np.linalg.norm(vectors - query, axis=1))[:8]
            got = [rid for _, rid in tree.knn(query, 8)]
            assert set(got) == set(truth.tolist())

    def test_distances_sorted(self, rng):
        vectors = rng.normal(size=(500, 4))
        tree, _ = make_tree(vectors)
        result = tree.knn(rng.normal(size=4), 10)
        dists = [d for d, _ in result]
        assert dists == sorted(dists)

    def test_rids_passed_through(self, rng):
        vectors = rng.normal(size=(100, 3))
        rids = np.arange(1000, 1100)
        tree, _ = make_tree(vectors, rids)
        result = tree.knn(vectors[7], 1)
        assert result[0][1] == 1007

    def test_pruning_beats_full_scan(self, rng):
        """Best-first search on clustered low-dim data must not score every
        vector."""
        vectors = np.vstack(
            [
                rng.normal(0, 0.1, (1000, 4)),
                rng.normal(10, 0.1, (1000, 4)),
            ]
        )
        tree, counters = make_tree(vectors)
        counters.reset()
        tree.knn(np.zeros(4), 5)
        assert counters.distance_computations < 1200

    def test_search_charges_page_reads(self, rng):
        vectors = rng.normal(size=(3000, 8))
        tree, counters = make_tree(vectors)
        counters.reset()
        tree.knn(rng.normal(size=8), 10)
        assert counters.logical_reads > 0

    def test_node_work_is_dimension_weighted(self, rng):
        """Every MINDIST / leaf distance is a d-dimensional L-norm — the
        CPU story of Figure 10."""
        vectors = rng.normal(size=(1000, 8))
        tree, counters = make_tree(vectors)
        counters.reset()
        tree.knn(rng.normal(size=8), 5)
        assert counters.distance_flops == counters.distance_computations * 8
