"""Batch / parallel execution must be bit-identical to the per-query loop.

The batched engine (:meth:`VectorIndex.knn_batch`) and the parallel harness
(``run_query_batch(..., workers=N)``) exist purely to amortize per-query
overhead — the contract is that results AND cold-cache cost accounting are
bit-for-bit those of a sequential ``knn`` loop.  These tests enforce that
contract on every scheme, in property style: many queries, several k values,
dynamic inserts, tracer on and off.
"""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import QueryWorkload, sample_queries
from repro.eval.harness import run_query_batch, run_workload
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.reduction.mmdr_adapter import model_to_reduced


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(
        two_cluster_dataset.points, np.random.default_rng(5)
    )
    return two_cluster_dataset, model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        20,
        np.random.default_rng(9),
        k=10,
        method="perturbed",
    )


SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]


def sequential_reference(index, workload):
    """The ground truth: a cold per-query knn loop."""
    ids, dists, stats = [], [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k)
        ids.append(res.ids)
        dists.append(res.distances)
        stats.append(res.stats)
    return np.vstack(ids), np.vstack(dists), stats


def assert_equivalent(seq, batch):
    seq_ids, seq_dists, seq_stats = seq
    batch_ids, batch_dists, batch_stats = batch
    assert np.array_equal(seq_ids, batch_ids)
    assert np.array_equal(seq_dists, batch_dists)
    for a, b in zip(seq_stats, batch_stats):
        assert a.page_reads == b.page_reads
        assert a.distance_computations == b.distance_computations
        assert a.distance_flops == b.distance_flops
        assert a.key_comparisons == b.key_comparisons


class TestBatchEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_knn_batch_bit_identical(self, scheme, reduced, workload):
        _, red = reduced
        seq = sequential_reference(scheme(red), workload)
        index = scheme(red)
        res = index.knn_batch(workload.queries, workload.k)
        assert_equivalent(seq, (res.ids, res.distances, list(res.stats)))

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_parallel_workers_bit_identical(self, scheme, reduced, workload):
        _, red = reduced
        seq = sequential_reference(scheme(red), workload)
        index = scheme(red)
        par = run_workload(index, workload, workers=2, use_batch=True)
        assert_equivalent(seq, par)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_counters_match_sequential_totals(self, scheme, reduced, workload):
        """Batch and parallel runs must leave the index's own counters at
        exactly the sequential totals (deterministic fields)."""
        _, red = reduced
        ref = scheme(red)
        sequential_reference(ref, workload)
        fields = (
            "logical_reads",
            "physical_reads",
            "sequential_reads",
            "distance_computations",
            "distance_flops",
            "key_comparisons",
        )
        batch_index = scheme(red)
        batch_index.knn_batch(workload.queries, workload.k)
        par_index = scheme(red)
        run_workload(par_index, workload, workers=3, use_batch=True)
        for f in fields:
            assert getattr(batch_index.counters, f) == getattr(
                ref.counters, f
            ), f
            assert getattr(par_index.counters, f) == getattr(
                ref.counters, f
            ), f

    @pytest.mark.parametrize("k", [1, 3, 17])
    def test_k_sweep_on_idistance(self, k, reduced, two_cluster_dataset):
        _, red = reduced
        wl = sample_queries(
            two_cluster_dataset.points, 12, np.random.default_rng(k), k=k
        )
        seq = sequential_reference(ExtendedIDistance(red), wl)
        index = ExtendedIDistance(red)
        res = index.knn_batch(wl.queries, wl.k)
        assert_equivalent(seq, (res.ids, res.distances, list(res.stats)))

    def test_after_dynamic_inserts(self, reduced, two_cluster_dataset):
        """The shared scan must score delta (inserted) vectors exactly as
        the sequential search does."""
        _, red = reduced
        rng = np.random.default_rng(31)

        def build():
            index = ExtendedIDistance(red)
            r = np.random.default_rng(31)
            for i in range(25):
                base = two_cluster_dataset.points[
                    r.integers(two_cluster_dataset.points.shape[0])
                ]
                index.insert(
                    base + r.normal(0, 1e-3, base.shape), rid=2_000_000 + i
                )
            return index

        wl = sample_queries(
            two_cluster_dataset.points, 15, rng, k=8, method="perturbed"
        )
        seq = sequential_reference(build(), wl)
        res = build().knn_batch(wl.queries, wl.k)
        assert_equivalent(seq, (res.ids, res.distances, list(res.stats)))

    def test_tracer_does_not_change_batch_results(self, reduced, workload):
        _, red = reduced
        plain = ExtendedIDistance(red).knn_batch(
            workload.queries, workload.k
        )
        traced = ExtendedIDistance(red).knn_batch(
            workload.queries, workload.k, tracer=Tracer()
        )
        assert np.array_equal(plain.ids, traced.ids)
        assert np.array_equal(plain.distances, traced.distances)
        for a, b in zip(plain.stats, traced.stats):
            assert a.page_reads == b.page_reads
            assert a.distance_computations == b.distance_computations

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_zero_overhead_invariant_on_batch_path(
        self, scheme, reduced, workload
    ):
        """The full zero-overhead contract through knn_batch: an active
        tracer must leave results, per-query stats AND the index's own
        counters bit-identical to the NULL_TRACER default."""
        _, red = reduced
        plain_index = scheme(red)
        plain = plain_index.knn_batch(
            workload.queries, workload.k, tracer=NULL_TRACER
        )
        traced_index = scheme(red)
        traced = traced_index.knn_batch(
            workload.queries, workload.k, tracer=Tracer()
        )
        assert_equivalent(
            (plain.ids, plain.distances, list(plain.stats)),
            (traced.ids, traced.distances, list(traced.stats)),
        )
        for f in (
            "logical_reads",
            "physical_reads",
            "sequential_reads",
            "distance_computations",
            "distance_flops",
            "key_comparisons",
        ):
            assert getattr(plain_index.counters, f) == getattr(
                traced_index.counters, f
            ), f

    def test_batch_spans_emitted(self, reduced, workload):
        _, red = reduced
        tracer = Tracer()
        ExtendedIDistance(red).knn_batch(
            workload.queries, workload.k, tracer=tracer
        )
        names = [s.name for s in tracer.spans]
        assert "knn.batch" in names
        assert "knn.batch.project_queries" in names
        assert "knn.batch.expand_radius" in names
        assert tracer.metrics.gauge("knn.batch_qps").value > 0

    def test_empty_and_single_query_batches(self, reduced, two_cluster_dataset):
        _, red = reduced
        index = ExtendedIDistance(red)
        empty = index.knn_batch(np.empty((0, red.dimensionality)), 5)
        assert empty.ids.shape[0] == 0
        query = two_cluster_dataset.points[:1]
        single = index.knn_batch(query, 3)
        index.reset_cache()
        one = index.knn(query[0], 3)
        assert np.array_equal(single.ids[0], one.ids)
        assert np.array_equal(single.distances[0], one.distances)


class TestHarnessRouting:
    def test_run_query_batch_routes_agree(self, reduced, workload):
        _, red = reduced
        ids_loop, ids_batch, ids_par = [], [], []
        loop = run_query_batch(
            ExtendedIDistance(red), workload, collect_ids=ids_loop
        )
        batch = run_query_batch(
            ExtendedIDistance(red),
            workload,
            collect_ids=ids_batch,
            use_batch=True,
        )
        par = run_query_batch(
            ExtendedIDistance(red),
            workload,
            collect_ids=ids_par,
            workers=2,
            use_batch=True,
        )
        assert loop.mean_page_reads == batch.mean_page_reads
        assert loop.mean_page_reads == par.mean_page_reads
        assert (
            loop.mean_distance_computations
            == batch.mean_distance_computations
            == par.mean_distance_computations
        )
        for a, b, c in zip(ids_loop, ids_batch, ids_par):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_warm_cache_fast_paths_rejected(self, reduced, workload):
        _, red = reduced
        with pytest.raises(ValueError):
            run_query_batch(
                ExtendedIDistance(red),
                workload,
                cold_cache=False,
                use_batch=True,
            )
        with pytest.raises(ValueError):
            run_query_batch(
                ExtendedIDistance(red), workload, cold_cache=False, workers=2
            )

    def test_more_workers_than_queries(self, reduced, two_cluster_dataset):
        _, red = reduced
        wl = sample_queries(
            two_cluster_dataset.points, 3, np.random.default_rng(2), k=5
        )
        seq = sequential_reference(ExtendedIDistance(red), wl)
        par = run_workload(
            ExtendedIDistance(red), wl, workers=8, use_batch=True
        )
        assert_equivalent(seq, par)

    def test_workload_chunks_contiguous(self, workload):
        chunks = workload.chunks(3)
        assert sum(c.n_queries for c in chunks) == workload.n_queries
        reassembled = np.vstack([c.queries for c in chunks])
        assert np.array_equal(reassembled, workload.queries)
        with pytest.raises(ValueError):
            workload.chunks(0)


class TestLocate:
    def test_bulk_rids_locatable(self, reduced):
        _, red = reduced
        index = ExtendedIDistance(red)
        for partition in index.partitions:
            if partition.size == 0:
                continue
            rid = int(partition.rids[partition.size // 2])
            p, pos = index.locate(rid)
            assert p == partition.index
            assert int(partition.rids[pos]) == rid

    def test_inserted_rids_locatable(self, reduced, two_cluster_dataset):
        _, red = reduced
        index = ExtendedIDistance(red)
        base = two_cluster_dataset.points[7]
        partition = index.insert(base + 1e-5, rid=3_000_000)
        p, pos = index.locate(3_000_000)
        assert p == partition
        part = index.partitions[p]
        assert pos >= part.rids.size  # delta store positions sit past bulk
        delta_pos = pos - part.rids.size
        assert part.delta_rids[delta_pos] == 3_000_000

    def test_unknown_rid_raises(self, reduced):
        _, red = reduced
        index = ExtendedIDistance(red)
        with pytest.raises(KeyError):
            index.locate(987_654_321)
        with pytest.raises(KeyError):
            index.locate(-1)
