"""Sequential scan and gLDR composite index."""

import numpy as np
import pytest

from repro.eval.precision import reduced_knn
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.seqscan import SequentialScan
from repro.reduction.ldr import LDRReducer
from repro.storage.pager import pages_for_vectors


@pytest.fixture(scope="module")
def ldr_reduced():
    from repro.data.synthetic import (
        SyntheticSpec,
        generate_correlated_clusters,
    )

    spec = SyntheticSpec(
        n_points=4000,
        dimensionality=32,
        n_clusters=4,
        retained_dims=6,
        variance_r=0.25,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(21))
    red = LDRReducer().reduce(ds.points, np.random.default_rng(5))
    return ds.points, red


class TestSequentialScan:
    def test_exact_under_reduced_scoring(self, ldr_reduced):
        data, red = ldr_reduced
        scan = SequentialScan(red)
        truth = reduced_knn(red, data[:15], 10)
        for qi, query in enumerate(data[:15]):
            result = scan.knn(query, 10)
            assert set(result.ids.tolist()) == set(truth[qi].tolist())

    def test_io_is_constant_and_matches_page_math(self, ldr_reduced):
        data, red = ldr_reduced
        scan = SequentialScan(red)
        expected = sum(
            pages_for_vectors(s.size, s.reduced_dim) for s in red.subspaces
        ) + pages_for_vectors(red.outliers.size, red.dimensionality)
        for query in data[:5]:
            result = scan.knn(query, 10)
            assert result.stats.page_reads == expected

    def test_distance_computations_equal_n(self, ldr_reduced):
        data, red = ldr_reduced
        scan = SequentialScan(red)
        result = scan.knn(data[0], 10)
        assert result.stats.distance_computations == red.n_points

    def test_k_validation(self, ldr_reduced):
        data, red = ldr_reduced
        with pytest.raises(ValueError):
            SequentialScan(red).knn(data[0], 0)


class TestGlobalLDR:
    def test_exact_under_reduced_scoring(self, ldr_reduced):
        data, red = ldr_reduced
        index = GlobalLDRIndex(red)
        truth = reduced_knn(red, data[:15], 10)
        for qi, query in enumerate(data[:15]):
            result = index.knn(query, 10)
            assert set(result.ids.tolist()) == set(truth[qi].tolist())

    def test_one_tree_per_subspace(self, ldr_reduced):
        _, red = ldr_reduced
        index = GlobalLDRIndex(red)
        assert len(index.trees) == red.n_subspaces

    def test_outlier_pages_charged_every_query(self, ldr_reduced):
        data, red = ldr_reduced
        index = GlobalLDRIndex(red)
        if red.outliers.size == 0:
            pytest.skip("reduction produced no outliers")
        result = index.knn(data[0], 10)
        assert result.stats.page_reads >= index.outlier_pages

    def test_agrees_with_seqscan(self, ldr_reduced):
        data, red = ldr_reduced
        gldr = GlobalLDRIndex(red)
        scan = SequentialScan(red)
        for query in data[:10]:
            a = gldr.knn(query, 10)
            b = scan.knn(query, 10)
            assert set(a.ids.tolist()) == set(b.ids.tolist())

    def test_prunes_relative_to_scan(self, ldr_reduced):
        data, red = ldr_reduced
        gldr = GlobalLDRIndex(red)
        result = gldr.knn(data[0], 10)
        # Hybrid trees must not score every stored vector.
        scored = result.stats.distance_computations
        assert scored < red.n_points

    def test_k_validation(self, ldr_reduced):
        data, red = ldr_reduced
        with pytest.raises(ValueError):
            GlobalLDRIndex(red).knn(data[0], -1)
