"""Dynamic insertion into the extended iDistance (the §5 capability the
paper's auxiliary covariance/radius arrays exist for)."""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.index.idistance import ExtendedIDistance
from repro.reduction.mmdr_adapter import model_to_reduced


@pytest.fixture(scope="module")
def built_index():
    spec = SyntheticSpec(
        n_points=4000,
        dimensionality=24,
        n_clusters=3,
        retained_dims=4,
        variance_r=0.3,
        variance_e=0.012,
        noise_fraction=0.01,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(55))
    model = MMDR().fit(ds.points, np.random.default_rng(56))
    index = ExtendedIDistance(model_to_reduced(model))
    return ds, model, index


class TestRouting:
    def test_cluster_point_joins_its_subspace(self, built_index):
        ds, model, index = built_index
        subspace = model.subspaces[0]
        # A fresh point synthesized inside subspace 0's plane.
        new_point = subspace.reconstruct(
            subspace.projections[:25].mean(axis=0)
        )
        partition = index.insert(new_point, rid=999_001)
        assert partition == subspace.subspace_id

    def test_far_point_goes_to_outlier_partition(self, built_index):
        _, model, index = built_index
        junk = np.full(model.dimensionality, 40.0)
        partition = index.insert(junk, rid=999_002)
        assert index.partitions[partition].subspace is None

    def test_tree_grows(self, built_index):
        ds, _, index = built_index
        before = len(index.tree)
        index.insert(ds.points[0] + 0.001, rid=999_003)
        assert len(index.tree) == before + 1


class TestSearchAfterInsert:
    def test_inserted_point_is_findable(self, built_index):
        ds, model, index = built_index
        subspace = model.subspaces[1]
        anchor = ds.points[subspace.member_ids[3]]
        new_point = anchor + 1e-6  # essentially a duplicate
        index.insert(new_point, rid=999_100)
        index.reset_cache()
        result = index.knn(anchor, 3)
        assert 999_100 in result.ids.tolist()

    def test_inserted_outlier_is_findable(self, built_index):
        _, model, index = built_index
        lonely = np.full(model.dimensionality, -30.0)
        index.insert(lonely, rid=999_200)
        index.reset_cache()
        result = index.knn(lonely, 1)
        assert result.ids[0] == 999_200

    def test_existing_answers_unchanged_for_far_queries(self, built_index):
        """Inserting into one region must not corrupt answers elsewhere."""
        ds, _, index = built_index
        query = ds.points[100]
        baseline = index.knn(query, 10).ids
        far = np.full(ds.points.shape[1], 25.0)
        index.insert(far, rid=999_300)
        index.reset_cache()
        after = index.knn(query, 10).ids
        assert set(after.tolist()) == set(baseline.tolist())

    def test_many_inserts_then_exact_self_queries(self, built_index):
        ds, model, index = built_index
        rng = np.random.default_rng(4)
        subspace = model.subspaces[0]
        inserted = []
        for i in range(30):
            base = ds.points[subspace.member_ids[rng.integers(
                subspace.member_ids.size)]]
            point = base + rng.normal(0, 1e-4, base.shape)
            rid = 1_000_000 + i
            index.insert(point, rid=rid)
            inserted.append((point, rid))
        index.reset_cache()
        hits = sum(
            rid in index.knn(point, 2).ids.tolist()
            for point, rid in inserted
        )
        assert hits >= 28  # near-duplicates must find themselves


class TestKeySpaceGuard:
    def test_offset_beyond_c_rejected(self, built_index):
        _, model, index = built_index
        subspace = model.subspaces[0]
        # A point inside the subspace's plane but absurdly far out along it
        # would need a key outside the partition's range.
        direction = subspace.basis[:, 0]
        far_in_plane = subspace.mean + direction * (index.c * 5)
        with pytest.raises(ValueError):
            index.insert(far_in_plane, rid=999_999)
