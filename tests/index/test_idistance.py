"""Extended iDistance: construction, exactness, pruning, accounting."""

import numpy as np
import pytest

from repro.eval.precision import reduced_knn
from repro.index.idistance import ExtendedIDistance
from repro.reduction.gdr import GDRReducer
from repro.reduction.mmdr_adapter import MMDRReducer, model_to_reduced


@pytest.fixture(scope="module")
def reduced(five_cluster_dataset_module):
    data, _ = five_cluster_dataset_module
    return data, MMDRReducer().reduce(data, np.random.default_rng(5))


@pytest.fixture(scope="module")
def five_cluster_dataset_module():
    from repro.data.synthetic import (
        SyntheticSpec,
        generate_correlated_clusters,
    )

    spec = SyntheticSpec(
        n_points=5000,
        dimensionality=32,
        n_clusters=5,
        retained_dims=8,
        variance_r=0.25,
        variance_e=0.015,
        noise_fraction=0.005,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(42))
    return ds.points, ds.labels


class TestConstruction:
    def test_partitions_cover_subspaces_and_outliers(self, reduced):
        _, red = reduced
        index = ExtendedIDistance(red)
        expected = red.n_subspaces + (1 if red.outliers.size else 0)
        assert len(index.partitions) == expected

    def test_stretch_constant_exceeds_radii(self, reduced):
        _, red = reduced
        index = ExtendedIDistance(red)
        assert index.c > max(p.max_radius for p in index.partitions)

    def test_tree_holds_every_point(self, reduced):
        _, red = reduced
        index = ExtendedIDistance(red)
        assert len(index.tree) == red.n_points

    def test_keys_respect_partition_ranges(self, reduced):
        """key = i*c + dist puts partition i's keys in [i*c, (i+1)*c)."""
        _, red = reduced
        index = ExtendedIDistance(red)
        for key, rid in index.tree.items():
            partition = int(key // index.c)
            assert 0 <= partition < len(index.partitions)
            offset = key - partition * index.c
            assert 0 <= offset < index.c
            assert rid in set(index.partitions[partition].rids.tolist())


class TestSearch:
    def test_exact_under_reduced_scoring(self, reduced):
        """The expanding-radius search must return exactly the reduced-space
        KNN for every query (the brute-force reference computes it)."""
        data, red = reduced
        index = ExtendedIDistance(red)
        queries = data[:25]
        truth = reduced_knn(red, queries, 10)
        for qi, query in enumerate(queries):
            result = index.knn(query, 10)
            assert set(result.ids.tolist()) == set(truth[qi].tolist())

    def test_distances_sorted_ascending(self, reduced):
        data, red = reduced
        index = ExtendedIDistance(red)
        result = index.knn(data[7], 10)
        assert np.all(np.diff(result.distances) >= 0)

    def test_k_larger_than_dataset(self, rng):
        data = rng.normal(size=(30, 6))
        red = GDRReducer().reduce(data, rng, target_dim=3)
        index = ExtendedIDistance(red)
        result = index.knn(data[0], 100)
        assert result.k == 30

    def test_k_validation(self, reduced):
        data, red = reduced
        index = ExtendedIDistance(red)
        with pytest.raises(ValueError):
            index.knn(data[0], 0)

    def test_query_far_outside_all_partitions(self, reduced):
        data, red = reduced
        index = ExtendedIDistance(red)
        far = data[0] + 100.0
        result = index.knn(far, 5)
        assert result.k == 5
        assert np.all(np.isfinite(result.distances))

    def test_stats_populated(self, reduced):
        data, red = reduced
        index = ExtendedIDistance(red)
        index.reset_cache()
        result = index.knn(data[3], 10)
        assert result.stats.page_reads > 0
        assert result.stats.distance_computations > 0
        assert result.stats.key_comparisons > 0
        assert result.stats.cpu_seconds > 0

    def test_pruning_examines_fraction_of_data(self, reduced):
        """The whole point of the index: far fewer distance computations
        than the sequential scan's n."""
        data, red = reduced
        index = ExtendedIDistance(red)
        result = index.knn(data[11], 10)
        assert result.stats.distance_computations < red.n_points * 0.5

    def test_radius_step_affects_cost_not_result(self, reduced):
        data, red = reduced
        coarse = ExtendedIDistance(red, radius_step=1.0)
        fine = ExtendedIDistance(red, radius_step=0.01)
        for query in data[:5]:
            a = coarse.knn(query, 10)
            b = fine.knn(query, 10)
            assert set(a.ids.tolist()) == set(b.ids.tolist())


class TestIOAccounting:
    def test_cold_cache_costs_more_than_warm(self, reduced):
        data, red = reduced
        index = ExtendedIDistance(red)
        index.reset_cache()
        cold = index.knn(data[2], 10).stats.page_reads
        warm = index.knn(data[2], 10).stats.page_reads
        assert warm <= cold

    def test_gdr_single_partition_works(self, reduced):
        data, _ = reduced
        red = GDRReducer().reduce(data, np.random.default_rng(0), target_dim=8)
        index = ExtendedIDistance(red)
        truth = reduced_knn(red, data[:10], 10)
        for qi, query in enumerate(data[:10]):
            result = index.knn(query, 10)
            assert set(result.ids.tolist()) == set(truth[qi].tolist())

    def test_outlier_only_reduction(self, rng):
        """A degenerate model where everything is an outlier still answers
        exact KNN (at sequential-ish cost)."""
        from repro.core.subspace import OutlierSet
        from repro.reduction.base import ReducedDataset

        data = rng.normal(size=(200, 8))
        red = ReducedDataset(
            method="degenerate",
            subspaces=[],
            outliers=OutlierSet(
                member_ids=np.arange(200), points=data
            ),
            n_points=200,
            dimensionality=8,
        )
        index = ExtendedIDistance(red)
        result = index.knn(data[0], 5)
        true = np.argsort(np.linalg.norm(data - data[0], axis=1))[:5]
        assert set(result.ids.tolist()) == set(true.tolist())
