"""VectorIndex plumbing: QueryStats, KNNResult, measurement wrapper."""

import numpy as np
import pytest

from repro.index.base import KNNResult, QueryStats, VectorIndex
from repro.storage.metrics import CostSnapshot


class TestQueryStats:
    def test_from_snapshots_diffs(self):
        before = CostSnapshot(
            physical_reads=5, distance_computations=10,
            distance_flops=100, key_comparisons=3, cpu_seconds=1.0,
        )
        after = CostSnapshot(
            physical_reads=9, sequential_reads=2,
            distance_computations=25, distance_flops=400,
            key_comparisons=13, cpu_seconds=1.5,
        )
        stats = QueryStats.from_snapshots(before, after)
        assert stats.page_reads == 4 + 2
        assert stats.distance_computations == 15
        assert stats.distance_flops == 300
        assert stats.key_comparisons == 10
        assert stats.cpu_seconds == pytest.approx(0.5)

    def test_cpu_work_combines_flops_and_keys(self):
        stats = QueryStats(
            page_reads=0,
            distance_computations=5,
            distance_flops=50,
            key_comparisons=7,
            cpu_seconds=0.0,
        )
        assert stats.cpu_work == 57


class TestKNNResult:
    def test_shape_mismatch_rejected(self):
        stats = QueryStats(0, 0, 0, 0, 0.0)
        with pytest.raises(ValueError):
            KNNResult(
                ids=np.arange(3),
                distances=np.zeros(2),
                stats=stats,
            )

    def test_k_property(self):
        stats = QueryStats(0, 0, 0, 0, 0.0)
        result = KNNResult(
            ids=np.arange(7), distances=np.zeros(7), stats=stats
        )
        assert result.k == 7


class TestMeasurementWrapper:
    class _Dummy(VectorIndex):
        name = "dummy"

        def knn(self, query, k):
            (ids, dists), stats = self._measured(self._work, query, k)
            return KNNResult(ids=ids, distances=dists, stats=stats)

        def _work(self, query, k):
            self.counters.count_distance(4, dims=3)
            self.counters.count_key_comparison(2)
            page = self.store.allocate("x", 8)
            self.pool.read(page)
            return np.arange(k), np.zeros(k)

    def test_measured_diffs_only_the_call(self):
        index = self._Dummy()
        index.counters.count_distance(100)  # pre-existing noise
        result = index.knn(np.zeros(3), 5)
        assert result.stats.distance_computations == 4
        assert result.stats.distance_flops == 12
        assert result.stats.key_comparisons == 2
        assert result.stats.page_reads == 1
        assert result.stats.cpu_seconds >= 0.0

    def test_reset_cache_empties_pool(self):
        index = self._Dummy()
        index.knn(np.zeros(3), 2)
        assert len(index.pool) > 0
        index.reset_cache()
        assert len(index.pool) == 0

    def test_size_pages_tracks_store(self):
        index = self._Dummy()
        assert index.size_pages == 0
        index.knn(np.zeros(3), 1)
        assert index.size_pages == 1
