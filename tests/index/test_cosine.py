"""Cosine metric, end-to-end: cosine ≡ L2 over unit-normalized vectors.

The reduction is built over normalized rows (the workload spec does this)
and the index normalizes queries and inserted points at the boundary, so
a cosine index over data ``X`` must behave *bit-identically* to an L2
index over ``normalize_rows(X)`` queried with normalized queries — that
is the whole implementation, and these tests pin it for every scheme.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.index.base import InvalidQueryError
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.linalg.kernels import normalize_rows
from repro.reduction.mmdr_adapter import MMDRReducer

SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]


@pytest.fixture(scope="module")
def setting():
    """Unit-normalized dataset, one reduction, and raw (unnormalized)
    query vectors the cosine indexes must normalize themselves."""
    spec = SyntheticSpec(
        n_points=1200,
        dimensionality=12,
        n_clusters=3,
        retained_dims=4,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(3))
    normalized = normalize_rows(
        np.ascontiguousarray(ds.points, dtype=np.float64)
    )
    rng = np.random.default_rng(9)
    raw_queries = ds.points[:8] * rng.uniform(0.1, 10.0, size=(8, 1))
    return normalized, raw_queries


def build_pair(scheme, normalized):
    """The cosine index and its L2 twin over the *same* reduction."""
    cosine_reduced = MMDRReducer().reduce(normalized, np.random.default_rng(7))
    cosine_reduced.metric = "cosine"
    l2_reduced = MMDRReducer().reduce(normalized, np.random.default_rng(7))
    return scheme(cosine_reduced), scheme(l2_reduced)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestCosineEqualsL2OnNormalized:
    def test_metric_property(self, scheme, setting):
        normalized, _ = setting
        cos_index, l2_index = build_pair(scheme, normalized)
        assert cos_index.metric == "cosine"
        assert l2_index.metric == "l2"

    def test_knn_matches_l2_twin_bit_for_bit(self, scheme, setting):
        normalized, raw_queries = setting
        cos_index, l2_index = build_pair(scheme, normalized)
        unit_queries = normalize_rows(raw_queries)
        for raw, unit in zip(raw_queries, unit_queries):
            got = cos_index.knn(raw, 10)
            want = l2_index.knn(unit, 10)
            assert np.array_equal(got.ids, want.ids)
            assert np.array_equal(got.distances, want.distances)

    def test_query_scale_invariance(self, scheme, setting):
        # Not bit-exact: normalizing a scaled vector rounds its unit image
        # differently in the last ulp, so only near-equality is promised.
        normalized, raw_queries = setting
        cos_index, _ = build_pair(scheme, normalized)
        q = raw_queries[0]
        a = cos_index.knn(q, 10)
        b = cos_index.knn(q * 123.0, 10)
        assert np.array_equal(a.ids, b.ids)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-12)

    def test_batch_matches_sequential(self, scheme, setting):
        normalized, raw_queries = setting
        cos_index, _ = build_pair(scheme, normalized)
        batch = cos_index.knn_batch(raw_queries, 10)
        assert batch.invalid_queries == ()
        for qi, raw in enumerate(raw_queries):
            want = cos_index.knn(raw, 10)
            assert np.array_equal(batch.ids[qi], want.ids)
            assert np.array_equal(batch.distances[qi], want.distances)

    def test_insert_normalizes_at_the_boundary(self, scheme, setting):
        normalized, raw_queries = setting
        cos_index, l2_index = build_pair(scheme, normalized)
        new_point = raw_queries[0] * 42.0  # wildly off unit length
        rid = 1_000_000
        cos_index.insert(new_point, rid)
        l2_index.insert(normalize_rows(new_point[None, :])[0], rid)
        got = cos_index.knn(new_point, 3)
        want = l2_index.knn(normalize_rows(new_point[None, :])[0], 3)
        assert rid in got.ids
        assert np.array_equal(got.ids, want.ids)
        assert np.array_equal(got.distances, want.distances)

    def test_delete_under_cosine(self, scheme, setting):
        normalized, raw_queries = setting
        cos_index, _ = build_pair(scheme, normalized)
        rid = 1_000_001
        cos_index.insert(raw_queries[1], rid)
        assert rid in cos_index.knn(raw_queries[1], 3).ids
        cos_index.delete(rid)
        assert rid not in cos_index.knn(raw_queries[1], 10).ids


@pytest.mark.parametrize("scheme", SCHEMES)
class TestZeroVectors:
    """A zero vector has no direction: per-query/insert it is an error,
    in a batch it is skipped and reported like a NaN row."""

    def test_zero_query_raises(self, scheme, setting):
        normalized, _ = setting
        cos_index, _ = build_pair(scheme, normalized)
        with pytest.raises(InvalidQueryError, match="zero"):
            cos_index.knn(np.zeros(normalized.shape[1]), 5)

    def test_zero_insert_raises(self, scheme, setting):
        normalized, _ = setting
        cos_index, _ = build_pair(scheme, normalized)
        with pytest.raises(InvalidQueryError, match="zero"):
            cos_index.insert(np.zeros(normalized.shape[1]), 999)

    def test_batch_skips_and_reports_zero_rows(self, scheme, setting):
        normalized, raw_queries = setting
        cos_index, _ = build_pair(scheme, normalized)
        queries = raw_queries[:3].copy()
        queries[1] = 0.0
        batch = cos_index.knn_batch(queries, 5)
        assert batch.invalid_queries == (1,)
        assert np.all(batch.ids[1] == -1)
        for qi in (0, 2):
            want = cos_index.knn(queries[qi], 5)
            assert np.array_equal(batch.ids[qi], want.ids)

    def test_l2_twin_accepts_zero_queries(self, scheme, setting):
        # The zero-vector rules are cosine-only; L2 must be unaffected.
        normalized, _ = setting
        _, l2_index = build_pair(scheme, normalized)
        result = l2_index.knn(np.zeros(normalized.shape[1]), 5)
        assert len(result.ids) == 5
