"""Transient-only fault plans must leave KNN results bit-identical.

The self-healing contract (DESIGN.md §9): when every injected fault is
recoverable (transient reads with ``transient_repeat`` below the retry
budget, no corruption), the retry path absorbs them all and results AND
cold-cache cost accounting match a fault-free run bit for bit — faults cost
wall-clock only, never answers and never accounting, because retries re-run
the store fetch without re-counting the physical read.
"""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.obs.tracer import Tracer
from repro.reduction.mmdr_adapter import model_to_reduced
from repro.storage.faults import FaultPlan
from repro.storage.pager import PageCorruptionError

# The CI fault-smoke gate: transient faults must not change results and
# corruption must surface as typed errors (see .github/workflows/ci.yml).
pytestmark = pytest.mark.fault_smoke


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        15,
        np.random.default_rng(9),
        k=10,
        method="perturbed",
    )


SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]

#: High enough that the paged schemes hit dozens of faults per workload,
#: repeat below the retry budget so every one is recoverable.
TRANSIENT_PLAN = FaultPlan(
    seed=42, transient_read_prob=0.1, transient_repeat=2
)


def run_sequential(index, workload):
    ids, dists, stats = [], [], []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k)
        ids.append(res.ids)
        dists.append(res.distances)
        stats.append(res.stats)
    return np.vstack(ids), np.vstack(dists), stats


def assert_identical(clean, faulty):
    assert np.array_equal(clean[0], faulty[0])
    assert np.array_equal(clean[1], faulty[1])
    for a, b in zip(clean[2], faulty[2]):
        assert a.page_reads == b.page_reads
        assert a.distance_computations == b.distance_computations
        assert a.key_comparisons == b.key_comparisons


class TestTransientFaultEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_knn_loop_bit_identical(self, scheme, reduced, workload):
        clean = run_sequential(scheme(reduced), workload)
        index = scheme(reduced)
        faulty = index.enable_faults(TRANSIENT_PLAN)
        assert_identical(clean, run_sequential(index, workload))
        if scheme is not SequentialScan:  # seqscan never pages randomly
            assert faulty.faults_injected > 0
            assert (
                faulty.fault_metrics.counter("faults.retried").value
                >= faulty.faults_injected
            )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_knn_batch_bit_identical(self, scheme, reduced, workload):
        clean_index = scheme(reduced)
        clean = clean_index.knn_batch(workload.queries, workload.k)
        index = scheme(reduced)
        index.enable_faults(TRANSIENT_PLAN)
        res = index.knn_batch(workload.queries, workload.k)
        assert_identical(
            (clean.ids, clean.distances, list(clean.stats)),
            (res.ids, res.distances, list(res.stats)),
        )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_zero_overhead_invariant_on_faulted_path(
        self, scheme, reduced, workload
    ):
        """Tracing a faulted run must not change anything the retry path
        produces: same answers, same accounting, same injected/retried
        fault counts as the NULL_TRACER default — the tracer only watches
        the retries, never participates in them."""
        plain_index = scheme(reduced)
        plain_faulty = plain_index.enable_faults(TRANSIENT_PLAN)
        plain = run_sequential(plain_index, workload)

        traced_index = scheme(reduced)
        traced_faulty = traced_index.enable_faults(TRANSIENT_PLAN)
        tracer = Tracer()
        ids, dists, stats = [], [], []
        for query in workload.queries:
            traced_index.reset_cache()
            res = traced_index.knn(query, workload.k, tracer=tracer)
            ids.append(res.ids)
            dists.append(res.distances)
            stats.append(res.stats)
        traced = (np.vstack(ids), np.vstack(dists), stats)

        assert_identical(plain, traced)
        for a, b in zip(plain[2], traced[2]):
            assert a.distance_flops == b.distance_flops
        assert (
            plain_faulty.faults_injected == traced_faulty.faults_injected
        )
        assert (
            plain_faulty.fault_metrics.counter("faults.retried").value
            == traced_faulty.fault_metrics.counter("faults.retried").value
        )
        # The traced run really did trace: one span per query.
        assert (
            sum(1 for s in tracer.spans if s.name == "knn.query")
            == workload.n_queries
        )

    def test_disable_faults_restores_store(self, reduced, workload):
        index = ExtendedIDistance(reduced)
        inner = index.store
        index.enable_faults(TRANSIENT_PLAN)
        index.disable_faults()
        assert index.store is inner
        assert index.pool.store is inner
        assert index.tree.store is inner
        index.disable_faults()  # idempotent

    def test_double_enable_raises(self, reduced):
        index = ExtendedIDistance(reduced)
        index.enable_faults(TRANSIENT_PLAN)
        with pytest.raises(RuntimeError):
            index.enable_faults(TRANSIENT_PLAN)

    def test_corruption_surfaces_as_typed_error(self, reduced, workload):
        # A corrupting plan is NOT in the bit-identical regime: the first
        # poisoned miss must raise, never return wrong neighbors.
        plan = FaultPlan(seed=7, bit_flip_prob=0.2)
        assert not plan.transient_only
        index = ExtendedIDistance(reduced)
        index.enable_faults(plan)
        with pytest.raises(PageCorruptionError):
            for query in workload.queries:
                index.reset_cache()
                index.knn(query, workload.k)
