"""Query validation: NaN/Inf/shape problems are typed errors, not garbage.

NaN comparisons are all false, so an unvalidated NaN query would silently
return confidently wrong neighbors.  ``knn`` refuses with
:class:`InvalidQueryError`; ``knn_batch`` skips the offending rows and
reports them (one bad row must not abort a thousand-query workload).
"""

import numpy as np
import pytest

from repro.core.mmdr import MMDR
from repro.data.workload import sample_queries
from repro.index.base import InvalidQueryError
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.reduction.mmdr_adapter import model_to_reduced


@pytest.fixture(scope="module")
def reduced(two_cluster_dataset):
    model = MMDR().fit(two_cluster_dataset.points, np.random.default_rng(5))
    return model_to_reduced(model)


@pytest.fixture(scope="module")
def workload(two_cluster_dataset):
    return sample_queries(
        two_cluster_dataset.points,
        10,
        np.random.default_rng(9),
        k=5,
        method="perturbed",
    )


SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]


class TestKnnValidation:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_component_raises(
        self, scheme, bad, reduced, workload
    ):
        index = scheme(reduced)
        query = workload.queries[0].copy()
        query[3] = bad
        with pytest.raises(InvalidQueryError):
            index.knn(query, 5)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_dimension_mismatch_raises(self, scheme, reduced):
        index = scheme(reduced)
        with pytest.raises(InvalidQueryError):
            index.knn(np.zeros(index.query_dim + 1), 5)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_non_vector_raises(self, scheme, reduced):
        index = scheme(reduced)
        with pytest.raises(InvalidQueryError):
            index.knn(np.zeros((2, index.query_dim)), 5)

    def test_invalid_query_error_is_value_error(self, reduced):
        with pytest.raises(ValueError):
            ExtendedIDistance(reduced).knn(np.array([np.nan]), 5)


class TestBatchSkipAndReport:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_invalid_rows_skipped_valid_rows_identical(
        self, scheme, reduced, workload
    ):
        clean = scheme(reduced).knn_batch(workload.queries, workload.k)
        poisoned = workload.queries.copy()
        poisoned[2, 0] = np.nan
        poisoned[7, 4] = np.inf
        res = scheme(reduced).knn_batch(poisoned, workload.k)
        assert res.invalid_queries == (2, 7)
        assert res.n_queries == workload.n_queries
        for row in range(workload.n_queries):
            if row in (2, 7):
                assert np.all(res.ids[row] == -1)
                assert np.all(np.isnan(res.distances[row]))
                assert res.stats[row].page_reads == 0
                assert res.stats[row].distance_computations == 0
            else:
                assert np.array_equal(res.ids[row], clean.ids[row])
                assert np.array_equal(
                    res.distances[row], clean.distances[row]
                )
                assert (
                    res.stats[row].page_reads == clean.stats[row].page_reads
                )

    def test_all_rows_invalid(self, reduced, workload):
        poisoned = np.full_like(workload.queries, np.nan)
        res = SequentialScan(reduced).knn_batch(poisoned, workload.k)
        assert res.invalid_queries == tuple(range(workload.n_queries))
        assert np.all(res.ids == -1)

    def test_dimension_mismatch_is_structural(self, reduced, workload):
        # A wrong-width matrix is a caller bug affecting every row: raise.
        index = SequentialScan(reduced)
        with pytest.raises(InvalidQueryError):
            index.knn_batch(workload.queries[:, :-1], workload.k)

    def test_no_invalid_rows_reports_empty(self, reduced, workload):
        res = SequentialScan(reduced).knn_batch(
            workload.queries, workload.k
        )
        assert res.invalid_queries == ()
