"""The durability contract, proven by exhaustive crashpoint sweeps.

For every physical page write the update workload issues, crash exactly
there (before and after the WAL record hits the log), recover from
checkpoint + log, and demand (a) valid B+-tree structure and (b) KNN
answers bit-identical to a freshly built index over the committed prefix
of the workload.
"""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticSpec, generate_correlated_clusters
from repro.index.global_ldr import GlobalLDRIndex
from repro.index.idistance import ExtendedIDistance
from repro.index.seqscan import SequentialScan
from repro.persist import save_index
from repro.recovery import (
    GenerationMismatchError,
    checkpoint,
    count_update_writes,
    crash_sweep,
    make_update_workload,
    recover,
    run_crashpoint,
)
from repro.recovery.harness import apply_op
from repro.reduction.mmdr_adapter import MMDRReducer
from repro.storage.mmap_store import MmapPageStore
from repro.storage.wal import WriteAheadLog

SCHEMES = [ExtendedIDistance, SequentialScan, GlobalLDRIndex]

# The sweep must hold over both physical stores: recovery replays WAL
# records through install/overwrite/stamp_lsn, which the mmap store
# implements via its metadata table rather than in-memory Page objects.
STORE_FACTORIES = {"memory": None, "mmap": MmapPageStore}


@pytest.fixture(scope="module")
def setting():
    """Small correlated dataset + reduction, sized so a full sweep of
    every crashpoint stays fast."""
    spec = SyntheticSpec(
        n_points=600,
        dimensionality=8,
        n_clusters=2,
        retained_dims=3,
        variance_r=0.3,
        variance_e=0.015,
        noise_fraction=0.01,
    )
    ds = generate_correlated_clusters(spec, np.random.default_rng(7))
    reduced = MMDRReducer().reduce(ds.points, np.random.default_rng(7))
    ops = make_update_workload(
        ds.points, reduced.n_points, np.random.default_rng(11)
    )
    return ds, reduced, ops


def fail_summary(outcomes):
    bad = [o for o in outcomes if not o.ok]
    return "; ".join(
        f"{o.crashpoint.phase}@{o.crashpoint.at_write}: {o.error}"
        for o in bad
    )


@pytest.mark.crash_smoke
@pytest.mark.parametrize("store_kind", list(STORE_FACTORIES))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_every_crashpoint_recovers_to_committed_prefix(
    scheme, store_kind, setting, tmp_path
):
    ds, reduced, ops = setting
    factory = STORE_FACTORIES[store_kind]
    outcomes = crash_sweep(
        lambda: scheme(reduced, store_factory=factory),
        ops,
        tmp_path,
        ds.points[:4],
        k=5,
        phases=("after_log", "before_log"),
    )
    assert outcomes, "workload issued no physical writes to sweep"
    assert all(o.ok for o in outcomes), fail_summary(outcomes)
    assert all(o.crashed for o in outcomes)
    # every distinct commit horizon between "nothing" and "all but the
    # last op" must appear somewhere in the sweep's outcomes
    horizons = {o.committed_ops for o in outcomes}
    assert min(horizons) < len(ops)


@pytest.mark.parametrize("store_kind", list(STORE_FACTORIES))
def test_uncrashed_control_replays_every_op(store_kind, setting, tmp_path):
    ds, reduced, ops = setting
    factory = STORE_FACTORIES[store_kind]
    outcome = run_crashpoint(
        lambda: ExtendedIDistance(reduced, store_factory=factory),
        ops,
        tmp_path,
        None,
        ds.points[:4],
        k=5,
    )
    assert outcome.ok, outcome.error
    assert not outcome.crashed
    assert outcome.committed_ops == len(ops)


def test_extended_idistance_sweep_covers_tree_and_delta_writes(
    setting, tmp_path
):
    """The tree-backed scheme must produce a multi-write sweep (tree page
    writes + delta page allocations), or the sweep proves nothing."""
    _, reduced, ops = setting
    total = count_update_writes(
        lambda: ExtendedIDistance(reduced), ops, tmp_path
    )
    assert total >= 5


def test_checkpoint_bounds_recovery_work(setting, tmp_path):
    """Ops committed before a mid-workload checkpoint are served from the
    snapshot, not replayed from the log."""
    ds, reduced, ops = setting
    index = ExtendedIDistance(reduced)
    wal = WriteAheadLog(tmp_path / "wal.log")
    index.enable_wal(wal)
    checkpoint(index, tmp_path / "ckpt0")
    half = len(ops) // 2
    for op in ops[:half]:
        apply_op(index, op)
    checkpoint(index, tmp_path / "ckpt1")
    for op in ops[half:]:
        apply_op(index, op)
    wal.close()

    recovered, report = recover(tmp_path / "wal.log")
    assert report.snapshot_path == str(tmp_path / "ckpt1")
    assert report.committed_txns == len(ops) - half
    reference = ExtendedIDistance(reduced)
    for op in ops:
        apply_op(reference, op)
    for query in ds.points[:4]:
        got, want = recovered.knn(query, 5), reference.knn(query, 5)
        assert np.array_equal(got.ids, want.ids)
        assert np.array_equal(got.distances, want.distances)


def test_torn_log_tail_drops_only_the_unfinished_commit(setting, tmp_path):
    """Tearing bytes off the log (a crash mid-append) loses at most the
    transaction whose COMMIT was in flight; everything durable replays."""
    ds, reduced, ops = setting
    index = ExtendedIDistance(reduced)
    wal = WriteAheadLog(tmp_path / "wal.log")
    index.enable_wal(wal)
    checkpoint(index, tmp_path / "ckpt")
    for op in ops:
        apply_op(index, op)
    wal.close()

    log_path = tmp_path / "wal.log"
    data = log_path.read_bytes()
    log_path.write_bytes(data[:-9])  # tear the final COMMIT record

    recovered, report = recover(log_path)
    assert report.torn_tail_bytes > 0
    assert report.metas_applied == len(ops) - 1
    assert report.discarded_txns == 1
    recovered.tree.check_invariants()
    reference = ExtendedIDistance(reduced)
    for op in ops[: report.metas_applied]:
        apply_op(reference, op)
    for query in ds.points[:4]:
        got, want = recovered.knn(query, 5), reference.knn(query, 5)
        assert np.array_equal(got.ids, want.ids)
        assert np.array_equal(got.distances, want.distances)


def test_recovered_index_resumes_logging(setting, tmp_path):
    """recover() hands back a WAL-detached index; re-enabling the log and
    mutating further must itself stay recoverable."""
    ds, reduced, ops = setting
    index = ExtendedIDistance(reduced)
    wal = WriteAheadLog(tmp_path / "wal.log")
    index.enable_wal(wal)
    checkpoint(index, tmp_path / "ckpt")
    for op in ops[:3]:
        apply_op(index, op)
    wal.close()

    recovered, _ = recover(tmp_path / "wal.log")
    wal2 = WriteAheadLog(tmp_path / "wal.log")
    recovered.enable_wal(wal2)
    checkpoint(recovered, tmp_path / "ckpt2")
    for op in ops[3:6]:
        apply_op(recovered, op)
    wal2.close()

    final, report = recover(tmp_path / "wal.log")
    assert report.snapshot_path == str(tmp_path / "ckpt2")
    reference = ExtendedIDistance(reduced)
    for op in ops[:6]:
        apply_op(reference, op)
    for query in ds.points[:4]:
        got, want = final.knn(query, 5), reference.knn(query, 5)
        assert np.array_equal(got.ids, want.ids)
        assert np.array_equal(got.distances, want.distances)


class TestGenerationCrossCheck:
    """Generational swaps leave snapshots and WALs stamped with a
    generation number; recovery must refuse to marry an older generation's
    snapshot to a newer generation's log with a *typed* error instead of
    silently replaying records against the wrong base state."""

    def test_matching_generations_recover(self, setting, tmp_path):
        ds, reduced, ops = setting
        index = SequentialScan(reduced)
        wal = WriteAheadLog(tmp_path / "wal.log")
        index.enable_wal(wal)
        checkpoint(index, tmp_path / "ckpt", generation=3)
        for op in ops[:2]:
            apply_op(index, op)
        wal.close()
        recovered, report = recover(tmp_path / "wal.log")
        assert report.committed_txns == 2
        assert recovered.live_count == index.live_count

    def test_older_snapshot_newer_wal_is_typed(self, setting, tmp_path):
        ds, reduced, ops = setting
        # An old-generation snapshot sits at the path...
        save_index(SequentialScan(reduced), tmp_path / "ckpt", generation=1)
        # ...but the WAL's checkpoint record claims generation 2 (the
        # post-swap log survived; the snapshot swap write was lost).
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.checkpoint(tmp_path / "ckpt", truncate=True, generation=2)
        wal.close()
        with pytest.raises(GenerationMismatchError):
            recover(tmp_path / "wal.log")

    def test_ungenerational_snapshot_with_generational_wal_is_typed(
        self, setting, tmp_path
    ):
        ds, reduced, ops = setting
        save_index(SequentialScan(reduced), tmp_path / "ckpt")
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.checkpoint(tmp_path / "ckpt", truncate=True, generation=4)
        wal.close()
        with pytest.raises(GenerationMismatchError):
            recover(tmp_path / "wal.log")

    def test_ungenerational_wal_ignores_snapshot_stamp(
        self, setting, tmp_path
    ):
        # Pre-generational logs (or single-index deployments) must keep
        # recovering against generation-stamped snapshots.
        ds, reduced, ops = setting
        save_index(SequentialScan(reduced), tmp_path / "ckpt", generation=5)
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.checkpoint(tmp_path / "ckpt", truncate=True)
        wal.close()
        recovered, _ = recover(tmp_path / "wal.log")
        assert recovered.live_count == reduced.n_points
