"""Experiment plumbing: scale control, dataset builders, sweep helpers.

These tests exercise the experiment machinery at miniature scale; the
full-figure runs (and their shape assertions) live under ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.fig7 import PrecisionSweep
from repro.experiments.fig9 import CostSweep
from repro.experiments.fig11 import run_fig11a
from repro.eval.harness import BatchCost


class TestScaleControl:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert common.bench_scale().name == "ci"

    def test_full_scale_matches_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        scale = common.bench_scale()
        assert scale.synthetic_points == 100_000
        assert scale.colorhist_images == 70_000
        assert scale.scal_points_max == 1_000_000
        assert scale.scal_dims_max == 200

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            common.bench_scale()


class TestDatasets:
    def test_synthetic_small_cached(self):
        a = common.synthetic_small(n_points=2000)
        b = common.synthetic_small(n_points=2000)
        assert a is b
        assert a.shape == (2000, 64)

    def test_workload_shape(self):
        data = common.synthetic_small(n_points=2000)
        workload = common.make_workload(data)
        assert workload.n_queries == common.N_QUERIES
        assert workload.k == common.K_NEIGHBORS

    def test_overlapping_specs_are_paired(self):
        rng = np.random.default_rng(0)
        specs = common.overlapping_cluster_specs(
            10_000, (4, 4, 6, 6), (1, 1, 1, 1), rng
        )
        assert len(specs) == 4
        # Within a pair the centers nearly coincide; across pairs they do
        # not.
        off = [np.asarray(s.center_offset) for s in specs]
        assert np.linalg.norm(off[0] - off[1]) < 0.3
        assert np.linalg.norm(off[0] - off[2]) > 0.5

    def test_default_reducers_names(self):
        reducers = common.default_reducers()
        assert set(reducers) == {"MMDR", "LDR", "GDR"}

    def test_reduce_with_caches(self):
        data = common.synthetic_small(n_points=2000)
        a = common.reduce_with("GDR", data, cache_tag="t")
        b = common.reduce_with("GDR", data, cache_tag="t")
        assert a is b


class TestSweepStructures:
    def test_precision_sweep_series_shape(self):
        sweep = PrecisionSweep(
            x_label="x",
            x_values=[1.0, 2.0],
            series={"MMDR": [0.9, 0.8], "LDR": [0.5, 0.4]},
        )
        assert sweep.x_label == "x"
        assert len(sweep.series["MMDR"]) == 2

    def test_cost_sweep_series_extraction(self):
        cost = BatchCost(
            scheme="iMMDR",
            mean_page_reads=10.0,
            mean_cpu_seconds=0.1,
            median_cpu_seconds=0.09,
            mean_cpu_work=1000.0,
            mean_distance_computations=50.0,
            n_queries=5,
            index_pages=100,
        )
        sweep = CostSweep(
            x_label="dims", x_values=[10], schemes={"iMMDR": [cost]}
        )
        assert sweep.series("mean_page_reads") == {"iMMDR": [10.0]}
        assert sweep.series("mean_cpu_work") == {"iMMDR": [1000.0]}


class TestFig11Miniature:
    def test_fig11a_runs_at_tiny_scale(self):
        points = run_fig11a(sizes=(1200, 2400), dimensionality=16)
        assert len(points) == 2
        assert points[0].n_points == 1200
        assert points[1].n_points == 2400
        assert all(p.trt_seconds > 0 for p in points)
        assert all(p.sequential_page_reads > 0 for p in points)
        assert all(p.n_subspaces >= 1 for p in points)
