"""LDR baseline: Euclidean clusters + per-cluster PCA + greedy cover."""

import numpy as np
import pytest

from repro.reduction.ldr import LDRReducer


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_clusters": 0},
            {"max_recon_dist": 0.0},
            {"frac_points": 0.0},
            {"frac_points": 1.5},
            {"max_dim": 0},
            {"min_cluster_size": 1},
            {"recluster_iterations": 0},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LDRReducer(**kwargs)

    def test_empty_data(self, rng):
        with pytest.raises(ValueError):
            LDRReducer().reduce(np.zeros((0, 4)), rng)

    def test_bad_target_dim(self, rng):
        with pytest.raises(ValueError):
            LDRReducer().reduce(rng.normal(size=(100, 4)), rng, target_dim=0)


class TestReduction:
    def test_covers_every_point_once(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        red = LDRReducer().reduce(data, np.random.default_rng(5))
        seen = np.zeros(red.n_points, dtype=int)
        for subspace in red.subspaces:
            seen[subspace.member_ids] += 1
        seen[red.outliers.member_ids] += 1
        assert np.all(seen == 1)

    def test_finds_separated_clusters(self, five_cluster_dataset):
        ds = five_cluster_dataset
        red = LDRReducer().reduce(ds.points, np.random.default_rng(5))
        assert 2 <= red.n_subspaces <= 10
        # Most points are represented, not outliers.
        assert red.outliers.size < ds.points.shape[0] * 0.3

    def test_members_reconstruct_within_bound(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        reducer = LDRReducer(max_recon_dist=0.1)
        red = reducer.reduce(data, np.random.default_rng(5))
        for subspace in red.subspaces:
            residuals = subspace.proj_dist_r(data[subspace.member_ids])
            assert np.all(residuals <= 0.1 + 1e-9)

    def test_target_dim_pins_every_cluster(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        red = LDRReducer().reduce(
            data, np.random.default_rng(5), target_dim=4
        )
        assert all(d == 4 for d in red.reduced_dims())

    def test_tighter_bound_more_outliers(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        loose = LDRReducer(max_recon_dist=0.3).reduce(
            data, np.random.default_rng(5)
        )
        tight = LDRReducer(max_recon_dist=0.02).reduce(
            data, np.random.default_rng(5)
        )
        assert tight.outliers.size >= loose.outliers.size

    def test_max_clusters_respected(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        red = LDRReducer(max_clusters=3).reduce(
            data, np.random.default_rng(5)
        )
        assert red.n_subspaces <= 3

    def test_greedy_cover_prefers_covering_clusters(self, rng):
        """A single elongated cluster: the reclustering loop should
        consolidate coverage into few subspaces rather than keep all ten
        k-means cells."""
        data = rng.normal(0, [2.0] * 3 + [0.01] * 9, (3000, 12))
        red = LDRReducer().reduce(data, rng)
        # Consolidation: the largest subspace dominates.
        largest = max(s.size for s in red.subspaces)
        assert largest > 1000

    def test_uses_euclidean_clustering_not_orientation(self, rng):
        """LDR's known blind spot (paper Figure 1): two co-centered
        differently-oriented ellipsoids are not separated by Euclidean
        k-means, so at least one LDR subspace mixes them."""
        a = rng.normal(0, [5, 1, 0.05, 0.05, 0.05], (1000, 5))
        b = rng.normal(0, [1, 5, 0.05, 0.05, 0.05], (1000, 5))
        data = np.vstack([a, b])
        truth = np.repeat([0, 1], 1000)
        red = LDRReducer(min_cluster_size=50).reduce(
            data, np.random.default_rng(4)
        )
        mixed = False
        for subspace in red.subspaces:
            labels = truth[subspace.member_ids]
            _, counts = np.unique(labels, return_counts=True)
            if counts.size > 1 and counts.min() / counts.sum() > 0.2:
                mixed = True
        assert mixed
