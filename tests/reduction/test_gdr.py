"""GDR baseline: one global PCA subspace."""

import numpy as np
import pytest

from repro.reduction.gdr import GDRReducer


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            GDRReducer(variance_target=0.0)
        with pytest.raises(ValueError):
            GDRReducer(variance_target=1.5)
        with pytest.raises(ValueError):
            GDRReducer(max_dim=0)

    def test_empty_data(self, rng):
        with pytest.raises(ValueError):
            GDRReducer().reduce(np.zeros((0, 4)), rng)

    def test_bad_target_dim(self, rng):
        with pytest.raises(ValueError):
            GDRReducer().reduce(rng.normal(size=(10, 4)), rng, target_dim=0)


class TestReduction:
    def test_single_subspace_no_outliers(self, rng):
        data = rng.normal(size=(500, 16))
        red = GDRReducer().reduce(data, rng, target_dim=4)
        assert red.n_subspaces == 1
        assert red.outliers.size == 0
        assert red.subspaces[0].size == 500

    def test_target_dim_respected(self, rng):
        data = rng.normal(size=(200, 10))
        for target in (1, 5, 10, 15):
            red = GDRReducer().reduce(data, rng, target_dim=target)
            assert red.subspaces[0].reduced_dim == min(target, 10)

    def test_auto_dim_by_variance_target(self, rng):
        # Two dominant directions carry ~99% of variance.
        data = rng.normal(0, [10, 8, 0.1, 0.1, 0.1, 0.1], (2000, 6))
        red = GDRReducer(variance_target=0.95).reduce(data, rng)
        assert red.subspaces[0].reduced_dim == 2

    def test_auto_dim_capped_by_max_dim(self, rng):
        data = rng.normal(size=(500, 30))  # isotropic: wants many dims
        red = GDRReducer(variance_target=0.99, max_dim=5).reduce(data, rng)
        assert red.subspaces[0].reduced_dim == 5

    def test_projections_match_subspace_transform(self, rng):
        data = rng.normal(size=(100, 8))
        red = GDRReducer().reduce(data, rng, target_dim=3)
        subspace = red.subspaces[0]
        assert np.allclose(subspace.project(data), subspace.projections)

    def test_globally_correlated_data_tiny_mpe(self, rng):
        line = rng.normal(size=(300, 1)) @ rng.normal(size=(1, 12))
        noisy = line + rng.normal(0, 1e-4, line.shape)
        red = GDRReducer().reduce(noisy, rng, target_dim=1)
        assert red.subspaces[0].mpe < 1e-2

    def test_deterministic(self, rng):
        data = rng.normal(size=(100, 6))
        r1 = GDRReducer().reduce(data, np.random.default_rng(1), target_dim=2)
        r2 = GDRReducer().reduce(data, np.random.default_rng(99), target_dim=2)
        assert np.allclose(
            r1.subspaces[0].projections, r2.subspaces[0].projections
        )
