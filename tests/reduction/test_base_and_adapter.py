"""ReducedDataset invariants, retargeting, and the MMDR adapter."""

import numpy as np
import pytest

from repro.core.subspace import OutlierSet
from repro.reduction.base import ReducedDataset, retarget_dimensionality
from repro.reduction.gdr import GDRReducer
from repro.reduction.mmdr_adapter import MMDRReducer, model_to_reduced
from repro.core.mmdr import MMDR


class TestReducedDataset:
    def test_coverage_must_be_exact(self, rng):
        red = GDRReducer().reduce(rng.normal(size=(50, 6)), rng, target_dim=2)
        with pytest.raises(ValueError):
            ReducedDataset(
                method="broken",
                subspaces=red.subspaces,
                outliers=red.outliers,
                n_points=51,  # one point unaccounted for
                dimensionality=6,
            )

    def test_mean_reduced_dim_weighted(self, rng):
        data = rng.normal(size=(100, 8))
        red = GDRReducer().reduce(data, rng, target_dim=3)
        assert red.mean_reduced_dim() == pytest.approx(3.0)

    def test_mean_reduced_dim_counts_outliers_at_full_d(
        self, five_cluster_dataset
    ):
        red = MMDRReducer().reduce(
            five_cluster_dataset.points, np.random.default_rng(5)
        )
        if red.outliers.size == 0:
            pytest.skip("no outliers in this reduction")
        manual = (
            sum(s.size * s.reduced_dim for s in red.subspaces)
            + red.outliers.size * red.dimensionality
        ) / red.n_points
        assert red.mean_reduced_dim() == pytest.approx(manual)

    def test_labels_match_membership(self, five_cluster_dataset):
        red = MMDRReducer().reduce(
            five_cluster_dataset.points, np.random.default_rng(5)
        )
        labels = red.labels()
        for idx, subspace in enumerate(red.subspaces):
            assert np.all(labels[subspace.member_ids] == idx)
        assert np.all(labels[red.outliers.member_ids] == -1)


class TestRetarget:
    def test_membership_preserved(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        base = MMDRReducer().reduce(data, np.random.default_rng(5))
        red = retarget_dimensionality(data, base, 4)
        for a, b in zip(base.subspaces, red.subspaces):
            assert np.array_equal(a.member_ids, b.member_ids)
        assert np.array_equal(
            base.outliers.member_ids, red.outliers.member_ids
        )

    def test_dimensionality_pinned(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        base = MMDRReducer().reduce(data, np.random.default_rng(5))
        for target in (2, 6, 12):
            red = retarget_dimensionality(data, base, target)
            assert all(d == target for d in red.reduced_dims())

    def test_target_above_d_capped(self, rng):
        data = rng.normal(size=(100, 6))
        base = GDRReducer().reduce(data, rng, target_dim=3)
        red = retarget_dimensionality(data, base, 50)
        assert red.reduced_dims() == [6]

    def test_bad_target_rejected(self, rng):
        data = rng.normal(size=(50, 4))
        base = GDRReducer().reduce(data, rng, target_dim=2)
        with pytest.raises(ValueError):
            retarget_dimensionality(data, base, 0)

    def test_more_dims_lower_mpe(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        base = MMDRReducer().reduce(data, np.random.default_rng(5))
        narrow = retarget_dimensionality(data, base, 2)
        wide = retarget_dimensionality(data, base, 10)
        for n_sub, w_sub in zip(narrow.subspaces, wide.subspaces):
            assert w_sub.mpe <= n_sub.mpe + 1e-12


class TestMMDRAdapter:
    def test_model_to_reduced_roundtrip(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        model = MMDR().fit(data, np.random.default_rng(5))
        red = model_to_reduced(model)
        assert red.method == "MMDR"
        assert red.n_points == model.n_points
        assert red.n_subspaces == model.n_subspaces
        assert "fit_seconds" in red.info

    def test_target_dim_caps_subspaces(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        red = MMDRReducer().reduce(
            data, np.random.default_rng(5), target_dim=3
        )
        assert all(d <= 3 for d in red.reduced_dims())

    def test_scalable_flag_uses_streaming(self, five_cluster_dataset):
        data = five_cluster_dataset.points
        red = MMDRReducer(scalable=True).reduce(
            data, np.random.default_rng(5)
        )
        assert red.n_subspaces >= 1
        assert red.method == "MMDR"

    def test_bad_target_dim(self, five_cluster_dataset):
        with pytest.raises(ValueError):
            MMDRReducer().reduce(
                five_cluster_dataset.points,
                np.random.default_rng(5),
                target_dim=0,
            )
