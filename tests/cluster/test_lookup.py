"""Lookup table with Activity field (paper §4.2)."""

import numpy as np
import pytest

from repro.cluster.lookup import CentroidLookupTable


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            CentroidLookupTable(-1, 3, 10)
        with pytest.raises(ValueError):
            CentroidLookupTable(5, 0, 10)
        with pytest.raises(ValueError):
            CentroidLookupTable(5, 3, 0)

    def test_starts_uncached_and_active(self):
        table = CentroidLookupTable(4, 3, 10)
        assert np.all(table.candidates == -1)
        assert np.all(table.active_mask())
        assert table.inactive_fraction == 0.0


class TestRefresh:
    def test_stores_k_closest_in_order(self):
        table = CentroidLookupTable(2, 2, 10)
        dists = np.array([[3.0, 1.0, 2.0], [0.5, 5.0, 0.1]])
        table.refresh(np.array([0, 1]), dists)
        assert table.candidates[0].tolist() == [1, 2]
        assert table.candidates[1].tolist() == [2, 0]

    def test_fewer_clusters_than_k_pads_with_minus_one(self):
        table = CentroidLookupTable(1, 3, 10)
        table.refresh(np.array([0]), np.array([[2.0, 1.0]]))
        assert table.candidates[0].tolist() == [1, 0, -1]

    def test_partial_refresh_leaves_others(self):
        table = CentroidLookupTable(3, 2, 10)
        table.refresh(np.array([1]), np.array([[1.0, 2.0]]))
        assert np.all(table.candidates[0] == -1)
        assert table.candidates[1].tolist() == [0, 1]
        assert np.all(table.candidates[2] == -1)

    def test_empty_refresh_noop(self):
        table = CentroidLookupTable(2, 2, 10)
        table.refresh(np.array([], dtype=np.int64), np.zeros((0, 3)))
        assert np.all(table.candidates == -1)


class TestActivity:
    def test_unchanged_points_accumulate(self):
        table = CentroidLookupTable(3, 2, activity_threshold=2)
        rows = np.arange(3)
        stable = np.array([False, False, False])
        table.record_outcome(rows, changed=stable)
        assert np.all(table.active_mask())
        table.record_outcome(rows, changed=stable)
        assert not np.any(table.active_mask())
        assert table.inactive_fraction == 1.0

    def test_change_resets_counter(self):
        table = CentroidLookupTable(2, 2, activity_threshold=2)
        rows = np.arange(2)
        table.record_outcome(rows, np.array([False, False]))
        table.record_outcome(rows, np.array([True, False]))
        mask = table.active_mask()
        assert mask[0] and not mask[1]

    def test_shape_mismatch_rejected(self):
        table = CentroidLookupTable(3, 2, 10)
        with pytest.raises(ValueError):
            table.record_outcome(np.arange(3), np.array([True]))

    def test_reactivate_all(self):
        table = CentroidLookupTable(2, 2, activity_threshold=1)
        table.record_outcome(np.arange(2), np.array([False, False]))
        assert not np.any(table.active_mask())
        table.reactivate_all()
        assert np.all(table.active_mask())

    def test_invalidate_keeps_activity(self):
        table = CentroidLookupTable(2, 2, activity_threshold=1)
        table.refresh(np.arange(2), np.ones((2, 2)))
        table.record_outcome(np.arange(2), np.array([False, False]))
        table.invalidate()
        assert np.all(table.candidates == -1)
        assert not np.any(table.active_mask())

    def test_inactive_fraction_empty_table(self):
        assert CentroidLookupTable(0, 2, 5).inactive_fraction == 0.0
