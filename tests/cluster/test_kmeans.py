"""Euclidean k-means (the LDR substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.kmeans import euclidean_sq, kmeans, kmeans_pp_seeds
from repro.storage.metrics import CostCounters


class TestEuclideanSq:
    def test_matches_direct_computation(self, rng):
        pts = rng.normal(size=(20, 4))
        cents = rng.normal(size=(3, 4))
        direct = ((pts[:, None, :] - cents[None, :, :]) ** 2).sum(axis=2)
        assert np.allclose(euclidean_sq(pts, cents), direct, atol=1e-9)

    def test_never_negative(self, rng):
        pts = rng.normal(size=(50, 3)) * 1e6
        assert np.all(euclidean_sq(pts, pts[:5]) >= 0)

    def test_counts_work(self, rng):
        c = CostCounters()
        euclidean_sq(rng.normal(size=(10, 4)), rng.normal(size=(3, 4)), c)
        assert c.distance_computations == 30
        assert c.distance_flops == 120


class TestSeeding:
    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            kmeans_pp_seeds(np.zeros((0, 2)), 3, rng)

    def test_returns_requested_count(self, rng):
        data = rng.normal(size=(100, 3))
        assert kmeans_pp_seeds(data, 5, rng).shape == (5, 3)

    def test_caps_at_data_size(self, rng):
        data = rng.normal(size=(3, 2))
        assert kmeans_pp_seeds(data, 10, rng).shape[0] == 3

    def test_all_identical_points(self, rng):
        data = np.ones((10, 2))
        seeds = kmeans_pp_seeds(data, 3, rng)
        assert seeds.shape == (3, 2)
        assert np.allclose(seeds, 1.0)

    def test_seeds_are_data_points(self, rng):
        data = rng.normal(size=(50, 4))
        seeds = kmeans_pp_seeds(data, 4, rng)
        for seed in seeds:
            assert np.any(np.all(np.isclose(data, seed), axis=1))


class TestKMeans:
    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2, rng)
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 2)), 0, rng)
        with pytest.raises(ValueError):
            kmeans(np.ones((5, 2)), 2, rng, max_iterations=0)

    def test_separates_obvious_clusters(self, rng):
        a = rng.normal(0.0, 0.1, (100, 2))
        b = rng.normal(10.0, 0.1, (120, 2))
        result = kmeans(np.vstack([a, b]), 2, rng)
        assert result.n_clusters == 2
        sizes = sorted(np.bincount(result.labels).tolist())
        assert sizes == [100, 120]
        assert result.converged

    def test_every_point_labelled(self, rng):
        data = rng.normal(size=(200, 3))
        result = kmeans(data, 4, rng)
        assert result.labels.shape == (200,)
        assert np.all(result.labels >= 0)
        assert np.all(result.labels < result.n_clusters)

    def test_centroids_are_member_means(self, rng):
        data = rng.normal(size=(150, 3))
        result = kmeans(data, 3, rng)
        for cluster in range(result.n_clusters):
            members = result.members(cluster)
            assert np.allclose(
                result.centroids[cluster],
                data[members].mean(axis=0),
                atol=1e-9,
            )

    def test_empty_clusters_dropped(self, rng):
        # 2 distinct values, k=5: at most 2 non-empty clusters survive.
        data = np.repeat([[0.0, 0.0], [5.0, 5.0]], 20, axis=0)
        result = kmeans(data, 5, rng)
        assert result.n_clusters <= 2

    def test_inertia_decreases_vs_single_cluster(self, rng):
        data = np.vstack(
            [rng.normal(0, 1, (50, 2)), rng.normal(20, 1, (50, 2))]
        )
        one = kmeans(data, 1, rng)
        two = kmeans(data, 2, rng)
        assert two.inertia < one.inertia

    def test_deterministic_under_seed(self):
        data = np.random.default_rng(5).normal(size=(100, 3))
        r1 = kmeans(data, 3, np.random.default_rng(11))
        r2 = kmeans(data, 3, np.random.default_rng(11))
        assert np.array_equal(r1.labels, r2.labels)

    def test_counters_accumulate(self, rng):
        c = CostCounters()
        kmeans(rng.normal(size=(100, 3)), 3, rng, counters=c)
        assert c.distance_computations > 0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=60),
    d=st.integers(min_value=1, max_value=5),
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_kmeans_partition(n, d, k, seed):
    """Labels always form a partition; inertia is finite and non-negative."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    result = kmeans(data, k, rng)
    assert result.labels.shape == (n,)
    assert result.n_clusters >= 1
    assert set(np.unique(result.labels)) <= set(range(result.n_clusters))
    # Every cluster id is used (empties are dropped and compacted).
    assert set(np.unique(result.labels)) == set(range(result.n_clusters))
    assert np.isfinite(result.inertia) and result.inertia >= 0
