"""Elliptical k-means — the Sung-Poggio engine inside Generate Ellipsoid."""

import numpy as np
import pytest

from repro.cluster.elliptical import EllipticalKMeans
from repro.storage.metrics import CostCounters


def purity(labels, truth):
    """Mean per-found-cluster majority share."""
    total, correct = 0, 0
    for cluster in np.unique(labels):
        mask = labels == cluster
        values, counts = np.unique(truth[mask], return_counts=True)
        total += mask.sum()
        correct += counts.max()
    return correct / total


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            EllipticalKMeans(0)
        with pytest.raises(ValueError):
            EllipticalKMeans(2, lookup_k=0)
        with pytest.raises(ValueError):
            EllipticalKMeans(2, max_outer_iterations=0)

    def test_empty_data_rejected(self, rng):
        with pytest.raises(ValueError):
            EllipticalKMeans(2).fit(np.zeros((0, 3)), rng)


class TestClustering:
    def test_separates_colocated_anisotropic_clusters(
        self, anisotropic_pair, rng
    ):
        """Figure 1's scenario: two clusters distinguishable only by their
        covariance orientation.  Euclidean k-means cannot do this.

        Hard-assignment elliptical k-means at exactly k=2 has a sticky
        symmetric local optimum on a perfectly co-centered cross (the two
        'V' halves), so — like MMDR itself, which runs with MaxEC=10 and
        merges afterwards — we over-provision clusters and check that the
        pieces are *orientation-pure*: no piece mixes the two ellipsoids.
        (Points near the shared center are intrinsically ambiguous since
        both densities peak there, so ~0.85 is the hard-assignment
        ceiling.)"""
        points, truth = anisotropic_pair
        result = EllipticalKMeans(10).fit(points, rng)
        assert result.n_clusters >= 2
        assert purity(result.labels, truth) > 0.8

    def test_separates_offset_anisotropic_clusters(self, rng):
        """With even a modest centroid offset, k=2 recovers the two
        differently-oriented clusters exactly."""
        gen = np.random.default_rng(3)
        a = gen.normal(0, [5, 1, 0.1, 0.1, 0.1], (400, 5))
        b = gen.normal(0, [1, 5, 0.1, 0.1, 0.1], (400, 5))
        b[:, 0] += 12.0
        points = np.vstack([a, b])
        truth = np.repeat([0, 1], 400)
        result = EllipticalKMeans(2).fit(points, rng)
        assert result.n_clusters == 2
        assert purity(result.labels, truth) > 0.95

    def test_result_structure(self, anisotropic_pair, rng):
        points, _ = anisotropic_pair
        result = EllipticalKMeans(2).fit(points, rng)
        assert result.labels.shape == (points.shape[0],)
        assert len(result.shapes) == result.n_clusters
        assert result.centroids.shape == (result.n_clusters, 5)
        for cluster in range(result.n_clusters):
            members = result.members(cluster)
            assert members.size > 0
            assert np.allclose(
                result.shapes[cluster].centroid,
                points[members].mean(axis=0),
                atol=1e-9,
            )

    def test_single_cluster_request(self, rng):
        data = rng.normal(size=(100, 3))
        result = EllipticalKMeans(1).fit(data, rng)
        assert result.n_clusters == 1
        assert np.all(result.labels == 0)

    def test_more_clusters_than_points(self, rng):
        data = rng.normal(size=(5, 2))
        result = EllipticalKMeans(10).fit(data, rng)
        assert 1 <= result.n_clusters <= 5

    def test_deterministic_under_seed(self, anisotropic_pair):
        points, _ = anisotropic_pair
        r1 = EllipticalKMeans(2).fit(points, np.random.default_rng(4))
        r2 = EllipticalKMeans(2).fit(points, np.random.default_rng(4))
        assert np.array_equal(r1.labels, r2.labels)

    def test_duplicate_points_handled(self, rng):
        data = np.repeat(rng.normal(size=(4, 3)), 30, axis=0)
        result = EllipticalKMeans(4).fit(data, rng)
        assert result.n_clusters >= 1
        assert np.all(np.isfinite(result.centroids))


class TestOptimizations:
    @pytest.mark.parametrize(
        "use_lookup,use_activity",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_optimizations_preserve_quality(
        self, anisotropic_pair, use_lookup, use_activity
    ):
        """§4.2's claim: the lookup table and activity filter are pure
        speedups — clustering quality must not degrade."""
        points, truth = anisotropic_pair
        result = EllipticalKMeans(
            10, use_lookup=use_lookup, use_activity=use_activity
        ).fit(points, np.random.default_rng(8))
        assert purity(result.labels, truth) > 0.8

    def test_lookup_reduces_distance_computations(self, anisotropic_pair):
        points, _ = anisotropic_pair
        costs = {}
        for use_lookup in (False, True):
            counters = CostCounters()
            EllipticalKMeans(
                5,
                use_lookup=use_lookup,
                use_activity=False,
                lookup_k=1,
                n_init=1,
            ).fit(points, np.random.default_rng(8), counters)
            costs[use_lookup] = counters.distance_computations
        assert costs[True] <= costs[False]

    def test_activity_freezes_points(self, anisotropic_pair):
        points, _ = anisotropic_pair
        result = EllipticalKMeans(
            2, use_activity=True, activity_threshold=2,
            max_outer_iterations=8, max_inner_iterations=20,
        ).fit(points, np.random.default_rng(8))
        # After convergence on easy data, a large share should be frozen.
        assert result.final_inactive_fraction > 0.3


class TestNormalizations:
    @pytest.mark.parametrize("norm", ["none", "gaussian", "paper"])
    def test_all_normalizations_run(self, anisotropic_pair, norm, rng):
        points, _ = anisotropic_pair
        result = EllipticalKMeans(2, normalization=norm).fit(points, rng)
        assert result.n_clusters >= 1

    def test_normalized_resists_size_imbalance(self, rng):
        """Definition 3.2: without normalization a big elongated cluster
        tends to absorb a small compact one."""
        big = rng.normal(0, [8.0, 0.5], (1500, 2))
        small = rng.normal([6.0, 4.0], 0.25, (150, 2))
        points = np.vstack([big, small])
        truth = np.repeat([0, 1], [1500, 150])
        result = EllipticalKMeans(
            2, normalization="gaussian"
        ).fit(points, np.random.default_rng(17))
        assert purity(result.labels, truth) > 0.9
