"""Shared storage-test fixtures.

``make_store`` runs every test that takes it against BOTH physical page
stores — the in-memory reference and the mmap-backed out-of-core store —
so the whole pager/buffer/fault/WAL contract is enforced on each.  Tests
that exercise in-memory internals (e.g. Page object aliasing) construct
``PageStore`` directly and are intentionally not parametrized.
"""

import pytest

from repro.storage.metrics import CostCounters
from repro.storage.mmap_store import MmapPageStore
from repro.storage.pager import PageStore


@pytest.fixture(params=["memory", "mmap"])
def make_store(request):
    """Factory fixture: ``make_store(counters=None)`` -> a fresh PageStore
    of the parametrized kind; mmap-backed stores are closed at teardown."""
    created = []

    def factory(counters: CostCounters = None) -> PageStore:
        if request.param == "mmap":
            store = MmapPageStore(counters)
        else:
            store = PageStore(counters)
        created.append(store)
        return store

    factory.kind = request.param
    yield factory
    for store in created:
        close = getattr(store, "close", None)
        if close is not None:
            close()
