"""Wrapper passthrough contract: every PageStore protocol method forwards.

The store wrappers (:class:`~repro.storage.faults.FaultyPageStore`,
:class:`~repro.storage.wal.WALPageStore`) deliberately skip
``super().__init__`` — all page state lives in ``inner``.  That makes
silent *inheritance* of a base-class method a bug class: the inherited
body would touch the wrapper's nonexistent ``_pages``/``_pools`` (crash),
or — worse, for the in-place metadata hooks — mutate a transient object
and silently persist nothing on a serializing store.  PR 7 hit exactly
this with ``stamp_lsn``/``corrupt_checksum`` over mmap.

Two guards:

* an introspective audit — every public protocol name defined on
  :class:`~repro.storage.pager.PageStore` must be *redefined* on each
  wrapper, so adding a protocol method without forwarding it fails CI
  immediately;
* a behavioral regression stacking every layer at once
  (WAL over faults over mmap) and driving the named hooks end to end.
"""

import numpy as np
import pytest

from repro.storage.buffer import BufferPool
from repro.storage.faults import FaultPlan, FaultyPageStore, corrupt_page
from repro.storage.metrics import CostCounters
from repro.storage.mmap_store import MmapPageStore
from repro.storage.pager import (
    PageCorruptionError,
    PageStore,
    TransientPageError,
)
from repro.storage.wal import WALPageStore, WriteAheadLog

WRAPPERS = [FaultyPageStore, WALPageStore]


def _protocol_names():
    """Public protocol surface of PageStore (plus the dunder container
    protocol), excluding construction."""
    names = {
        name
        for name in vars(PageStore)
        if not name.startswith("_") or name in ("__len__", "__contains__")
    }
    return sorted(names - {"__init__"})


@pytest.mark.parametrize("wrapper", WRAPPERS, ids=lambda w: w.__name__)
def test_every_protocol_method_is_explicitly_forwarded(wrapper):
    missing = [
        name for name in _protocol_names() if name not in vars(wrapper)
    ]
    assert not missing, (
        f"{wrapper.__name__} inherits {missing} from PageStore instead of "
        f"forwarding to .inner; the inherited body would operate on the "
        f"wrapper's own (nonexistent) page state"
    )


def test_protocol_audit_sees_lifecycle_methods():
    # The audit itself must cover the names this PR added; if flush/close
    # ever leave the base protocol the stacked test below loses meaning.
    names = _protocol_names()
    assert "flush" in names and "close" in names
    assert "stamp_lsn" in names and "corrupt_checksum" in names


@pytest.fixture
def stacked(tmp_path):
    """WAL over faults over mmap — the deepest supported stack — plus a
    handle on each layer.  ``enable_wal`` refuses this layering on an
    index (the equivalence tests need the simple cases); the raw stores
    compose it directly, which is exactly what this regression guards."""
    counters = CostCounters()
    mmap_store = MmapPageStore(counters)
    faulty = FaultyPageStore(
        mmap_store, FaultPlan(seed=3, transient_read_prob=1.0, max_faults=1)
    )
    wal = WriteAheadLog(tmp_path / "stack.wal")
    stacked = WALPageStore(faulty, wal)
    yield stacked, faulty, mmap_store, wal
    wal.close()
    mmap_store.close()


def test_stacked_stamp_lsn_reaches_mmap_metadata(stacked):
    store, _faulty, mmap_store, wal = stacked
    with wal.transaction("test") as txn:
        page_id = store.allocate({"rows": list(range(8))}, 256)
        txn.set_meta({})
    store.stamp_lsn(page_id, 41)
    # The stamp must land in the mmap metadata table, not on a transient
    # deserialized Page: a fresh fetch (new Page object) must carry it.
    assert mmap_store.raw_fetch(page_id).lsn == 41
    store.stamp_lsn(page_id, None)
    assert mmap_store.raw_fetch(page_id).lsn is None


def test_stacked_corrupt_checksum_persists_and_detects(stacked):
    store, _faulty, mmap_store, wal = stacked
    with wal.transaction("test") as txn:
        page_id = store.allocate(np.arange(16).tolist(), 128)
        txn.set_meta({})
    store.corrupt_checksum(page_id, bit=2)
    pool = BufferPool(mmap_store, 4, CostCounters())
    with pytest.raises(PageCorruptionError):
        pool.read(page_id)


def test_stacked_transient_fault_fires_through_wal_layer(stacked):
    store, faulty, _mmap_store, wal = stacked
    with wal.transaction("test") as txn:
        page_id = store.allocate("payload", 64)
        txn.set_meta({})
    with pytest.raises(TransientPageError):
        store.fetch(page_id)
    assert faulty.faults_injected == 1
    # The plan's budget (max_faults=1) is spent; reads are clean again.
    assert store.fetch(page_id).payload == "payload"


def test_stacked_raw_fetch_bypasses_faults(tmp_path):
    counters = CostCounters()
    mmap_store = MmapPageStore(counters)
    faulty = FaultyPageStore(
        mmap_store, FaultPlan(seed=3, transient_read_prob=1.0)
    )
    wal = WriteAheadLog(tmp_path / "raw.wal")
    store = WALPageStore(faulty, wal)
    try:
        with wal.transaction("test") as txn:
            page_id = store.allocate("x", 8)
            txn.set_meta({})
        # raw_fetch models no real I/O: it must never see injected faults,
        # no matter how deep the stack.
        for _ in range(5):
            assert store.raw_fetch(page_id).payload == "x"
    finally:
        wal.close()
        mmap_store.close()


def test_stacked_flush_and_close_reach_physical_layer(tmp_path):
    counters = CostCounters()
    mmap_store = MmapPageStore(counters)
    faulty = FaultyPageStore(mmap_store, FaultPlan(seed=1))
    wal = WriteAheadLog(tmp_path / "life.wal")
    store = WALPageStore(faulty, wal)
    with wal.transaction("test") as txn:
        page_id = store.allocate("durable", 64)
        txn.set_meta({})
    store.flush()
    store.close()
    wal.close()
    # close() propagated through both wrappers to the mmap file: further
    # physical access fails rather than touching a dangling mapping.
    with pytest.raises(Exception):
        mmap_store.raw_fetch(page_id)


def test_corrupt_page_helper_routes_through_wrapper_stack(stacked):
    store, _faulty, mmap_store, wal = stacked
    with wal.transaction("test") as txn:
        page_id = store.allocate([1, 2, 3], 64)
        txn.set_meta({})
    corrupt_page(store, page_id)
    pool = BufferPool(mmap_store, 4, CostCounters())
    with pytest.raises(PageCorruptionError):
        pool.read(page_id)
