"""Fault injection, checksums, retries, and typed page errors (DESIGN.md §9)."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.faults import (
    FaultPlan,
    FaultyPageStore,
    RetryPolicy,
    corrupt_page,
)
from repro.storage.pager import (
    Page,
    PageCorruptionError,
    PageNotFoundError,
    PageStore,
    TransientPageError,
    page_checksum,
    verify_page,
)


def seeded_store(store_factory=PageStore, n_pages=8):
    store = store_factory()
    ids = [store.allocate({"n": i}, 64) for i in range(n_pages)]
    return store, ids


class TestChecksums:
    def test_allocate_stamps_checksum(self, make_store):
        store, ids = seeded_store(make_store)
        page = store.fetch(ids[0])
        assert page.checksum == page_checksum(page.payload)

    def test_overwrite_restamps_checksum(self, make_store):
        store, ids = seeded_store(make_store)
        store.overwrite(ids[0], {"n": 999}, 64)
        page = store.fetch(ids[0])
        assert page.payload == {"n": 999}
        verify_page(page)  # restamped: must pass

    def test_verify_detects_mismatch(self, make_store):
        store, ids = seeded_store(make_store)
        corrupt_page(store, ids[0])
        with pytest.raises(PageCorruptionError):
            verify_page(store.fetch(ids[0]))

    def test_verify_skips_unstamped_pages(self):
        verify_page(Page(0, {"hand": "built"}, 16))  # checksum=None: no raise

    def test_corrupt_page_flips_one_bit(self, make_store):
        store, ids = seeded_store(make_store)
        original = store.fetch(ids[0]).checksum
        corrupt_page(store, ids[0], bit=3)
        assert store.fetch(ids[0]).checksum == original ^ (1 << 3)
        corrupt_page(store, ids[0], bit=3)
        verify_page(store.fetch(ids[0]))  # double flip restores


class TestTypedPageErrors:
    def test_fetch_unknown_page(self):
        store, _ = seeded_store()
        with pytest.raises(PageNotFoundError):
            store.fetch(999)

    def test_overwrite_unknown_page(self):
        store, _ = seeded_store()
        with pytest.raises(PageNotFoundError):
            store.overwrite(999, {}, 0)

    def test_free_unknown_page(self):
        store, _ = seeded_store()
        with pytest.raises(PageNotFoundError):
            store.free(999)

    def test_page_not_found_is_key_error(self):
        # Pre-existing callers catch bare KeyError; the subclass keeps them
        # working.
        store, _ = seeded_store()
        with pytest.raises(KeyError):
            store.fetch(999)

    def test_free_invalidates_registered_pools(self):
        store, ids = seeded_store()
        pool = BufferPool(store, 4)
        pool.read(ids[0])
        assert ids[0] in pool
        store.free(ids[0])
        assert ids[0] not in pool
        with pytest.raises(PageNotFoundError):
            pool.read(ids[0])

    def test_register_pool_deduplicates(self):
        store, _ = seeded_store()
        pool = BufferPool(store, 4)  # __init__ registers
        store.register_pool(pool)
        assert store._pools.count(pool) == 1


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, transient_read_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, transient_repeat=0)
        with pytest.raises(ValueError):
            FaultPlan(seed=0, max_faults=-1)

    def test_transient_only(self):
        assert FaultPlan(seed=0, transient_read_prob=0.5).transient_only
        assert not FaultPlan(seed=0, bit_flip_prob=0.1).transient_only
        assert not FaultPlan(seed=0, torn_write_prob=0.1).transient_only


def faulty_fixture(plan, store_factory=PageStore, n_pages=8):
    store, ids = seeded_store(store_factory, n_pages)
    faulty = FaultyPageStore(store, plan)
    pool = BufferPool(faulty, 4, store.counters)
    return faulty, pool, ids


class TestFaultInjection:
    def test_deterministic_for_same_plan(self):
        plan = FaultPlan(seed=7, transient_read_prob=0.3)

        def run():
            faulty, pool, ids = faulty_fixture(plan)
            outcomes = []
            for page_id in ids * 4:
                try:
                    faulty.fetch(page_id)
                    outcomes.append("ok")
                except TransientPageError:
                    outcomes.append("fault")
            return outcomes

        assert run() == run()
        assert "fault" in run() and "ok" in run()

    def test_max_faults_budget(self, make_store):
        plan = FaultPlan(seed=1, transient_read_prob=1.0, max_faults=2)
        faulty, _, ids = faulty_fixture(plan, make_store)
        failures = 0
        for page_id in ids:
            try:
                faulty.fetch(page_id)
            except TransientPageError:
                failures += 1
        assert failures == 2
        assert faulty.faults_injected == 2

    def test_injection_metrics(self):
        plan = FaultPlan(seed=1, transient_read_prob=1.0, max_faults=3)
        faulty, pool, ids = faulty_fixture(plan)
        for page_id in ids:
            pool.read(page_id)  # retry path absorbs every fault
        counters = faulty.fault_metrics.counters
        assert counters["faults.injected"].value == 3
        assert counters["faults.injected.transient"].value == 3
        assert counters["faults.retried"].value == 3

    def test_transient_fault_recovered_by_retry(self, make_store):
        # repeat=2 < max_attempts=5, budget of 1: the pool must recover.
        plan = FaultPlan(
            seed=3, transient_read_prob=1.0, transient_repeat=2, max_faults=1
        )
        faulty, pool, ids = faulty_fixture(plan, make_store)
        assert pool.read(ids[0]) == {"n": 0}
        assert faulty.fault_metrics.counter("faults.retried").value == 2

    def test_retry_exhaustion_reraises(self):
        # repeat=10 > max_attempts: the fault outlives the retry budget.
        plan = FaultPlan(
            seed=3, transient_read_prob=1.0, transient_repeat=10
        )
        faulty, pool, ids = faulty_fixture(plan)
        with pytest.raises(TransientPageError):
            pool.read(ids[0])
        assert (
            faulty.fault_metrics.counter("faults.retried").value
            == pool.retry.max_attempts - 1
        )

    def test_bit_flip_detected_on_miss(self, make_store):
        plan = FaultPlan(seed=5, bit_flip_prob=1.0, max_faults=1)
        faulty, pool, ids = faulty_fixture(plan, make_store)
        with pytest.raises(PageCorruptionError):
            pool.read(ids[0])
        assert (
            faulty.fault_metrics.counter("faults.injected.bit_flip").value
            == 1
        )

    def test_torn_write_detected_on_next_miss(self, make_store):
        plan = FaultPlan(seed=5, torn_write_prob=1.0, max_faults=1)
        faulty, pool, ids = faulty_fixture(plan, make_store)
        page_id = faulty.allocate({"torn": True}, 32)
        with pytest.raises(PageCorruptionError):
            pool.read(page_id)
        assert (
            faulty.fault_metrics.counter("faults.injected.torn_write").value
            == 1
        )

    def test_raw_fetch_bypasses_faults(self):
        plan = FaultPlan(seed=1, transient_read_prob=1.0)
        faulty, _, ids = faulty_fixture(plan)
        for page_id in ids:  # never raises, never consumes the budget
            assert faulty.raw_fetch(page_id).payload == {
                "n": ids.index(page_id)
            }
        assert faulty.faults_injected == 0

    def test_free_clears_fault_state(self):
        plan = FaultPlan(
            seed=3, transient_read_prob=1.0, transient_repeat=10,
            max_faults=1,
        )
        faulty, _, ids = faulty_fixture(plan)
        with pytest.raises(TransientPageError):
            faulty.fetch(ids[0])
        faulty.free(ids[0])
        with pytest.raises(PageNotFoundError):
            faulty.fetch(ids[0])

    def test_wrapper_delegates_state(self):
        plan = FaultPlan(seed=0)
        faulty, _, ids = faulty_fixture(plan)
        assert len(faulty) == len(ids)
        assert ids[0] in faulty
        assert faulty.allocated_pages == len(ids)
        assert faulty.counters is faulty.inner.counters


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)

    def test_zero_backoff_does_not_sleep(self):
        RetryPolicy(backoff_s=0.0).sleep(3)  # returns immediately


class TestWrapperPoolForwarding:
    """Regression: a store wrapper must forward ``register_pool`` to the
    inner store (which owns the ``_pools`` list consulted at free time).
    A wrapper that shadowed the registration would leave stale pages
    cached in pools after ``free``."""

    def test_register_pool_reaches_inner_store(self):
        store, _ = seeded_store()
        faulty = FaultyPageStore(store, FaultPlan(seed=1))
        pool = BufferPool(faulty, 4)  # __init__ registers via the wrapper
        assert pool in store._pools

    def test_free_through_wrapper_invalidates_pool(self):
        store, ids = seeded_store()
        faulty = FaultyPageStore(store, FaultPlan(seed=1))
        pool = BufferPool(faulty, 4)
        pool.read(ids[0])
        assert ids[0] in pool
        faulty.free(ids[0])
        assert ids[0] not in pool
        with pytest.raises(PageNotFoundError):
            pool.read(ids[0])

    def test_pool_registered_before_wrapping_still_invalidated(self):
        # enable_faults() wraps a live index whose pool registered with
        # the bare store; frees through the wrapper must still reach it.
        store, ids = seeded_store()
        pool = BufferPool(store, 4)
        faulty = FaultyPageStore(store, FaultPlan(seed=1))
        pool.store = faulty
        pool.read(ids[1])
        faulty.free(ids[1])
        assert ids[1] not in pool
