"""Write-ahead log: framing, torn tails, transactions, checkpoints."""

import pickle

import numpy as np
import pytest

from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters
from repro.storage.pager import PageStore
from repro.storage.wal import (
    BEGIN,
    CHECKPOINT,
    COMMIT,
    PAGE_ALLOC,
    PAGE_FREE,
    PAGE_WRITE,
    WAL_MAGIC,
    WALPageStore,
    WALProtocolError,
    WriteAheadLog,
)
from repro.storage.faults import CrashError, CrashPoint


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(tmp_path / "wal.log")
    yield log
    log.close()


class TestFraming:
    def test_append_and_scan_round_trip(self, wal):
        lsn1 = wal.append(PAGE_WRITE, {"page_id": 3, "x": [1, 2]}, txn_id=7)
        lsn2 = wal.append(PAGE_FREE, {"page_id": 3}, txn_id=7)
        assert (lsn1, lsn2) == (1, 2)
        records = wal.records()
        assert [r.lsn for r in records] == [1, 2]
        assert [r.txn_id for r in records] == [7, 7]
        assert records[0].rtype == PAGE_WRITE
        assert records[0].payload == {"page_id": 3, "x": [1, 2]}

    def test_lsns_are_strictly_increasing(self, wal):
        lsns = [wal.append(BEGIN, {}, txn_id=1) for _ in range(10)]
        assert lsns == list(range(1, 11))
        assert wal.last_lsn == 10

    def test_file_starts_with_magic(self, wal, tmp_path):
        wal.append(BEGIN, {}, txn_id=1)
        wal.flush()
        assert (tmp_path / "wal.log").read_bytes()[:4] == WAL_MAGIC

    def test_payloads_survive_arbitrary_pickles(self, wal):
        payload = {"vec": np.arange(5.0), "nested": {"k": (1, 2.5)}}
        wal.append(COMMIT, payload, txn_id=1)
        got = wal.records()[0].payload
        assert np.array_equal(got["vec"], payload["vec"])
        assert got["nested"] == payload["nested"]

    def test_cannot_pickle_open_log(self, wal):
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(wal)


class TestTornTail:
    def _write_then_tear(self, tmp_path, cut):
        path = tmp_path / "torn.log"
        log = WriteAheadLog(path)
        for i in range(4):
            log.append(PAGE_WRITE, {"page_id": i, "blob": "x" * 50}, 1)
        log.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - cut])
        return path

    @pytest.mark.parametrize("cut", [1, 7, 30])
    def test_scan_stops_at_last_intact_record(self, tmp_path, cut):
        path = self._write_then_tear(tmp_path, cut)
        records, valid, torn = WriteAheadLog.scan(path)
        assert torn > 0
        assert len(records) == 3
        assert [r.payload["page_id"] for r in records] == [0, 1, 2]

    def test_reopen_truncates_and_continues_lsns(self, tmp_path):
        path = self._write_then_tear(tmp_path, 5)
        log = WriteAheadLog(path)
        assert log.metrics.counter("wal.torn_tail_dropped").value > 0
        lsn = log.append(PAGE_WRITE, {"page_id": 9}, 2)
        assert lsn == 4  # records 1..3 survived; the torn 4th is replaced
        records = log.records()
        assert [r.lsn for r in records] == [1, 2, 3, 4]
        log.close()

    def test_corrupted_middle_record_truncates_rest(self, tmp_path):
        path = tmp_path / "bitflip.log"
        log = WriteAheadLog(path)
        for i in range(3):
            log.append(PAGE_WRITE, {"page_id": i}, 1)
        log.close()
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        records, _, torn = WriteAheadLog.scan(path)
        assert len(records) < 3
        assert torn > 0


class TestTransactions:
    def test_commit_appends_begin_and_commit(self, wal):
        with wal.transaction("insert") as txn:
            txn.set_meta({"rid": 5})
        types = [r.rtype for r in wal.records()]
        assert types == [BEGIN, COMMIT]
        commit = wal.records()[-1]
        assert commit.payload == {"kind": "insert", "meta": {"rid": 5}}
        assert wal.metrics.counter("wal.commits").value == 1

    def test_exception_abandons_without_commit(self, wal):
        with pytest.raises(RuntimeError, match="boom"):
            with wal.transaction("insert"):
                raise RuntimeError("boom")
        types = [r.rtype for r in wal.records()]
        assert COMMIT not in types
        assert wal.active_txn is None

    def test_nested_transactions_raise(self, wal):
        wal.begin("insert")
        with pytest.raises(WALProtocolError, match="still open"):
            wal.begin("delete")

    def test_commit_of_foreign_txn_raises(self, wal):
        txn = wal.begin("insert")
        wal.commit(txn)
        with pytest.raises(WALProtocolError):
            wal.commit(txn)

    def test_txn_ids_resume_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        with log.transaction("insert"):
            pass
        log.close()
        log = WriteAheadLog(path)
        txn = log.begin("delete")
        assert txn.txn_id == 2
        log.commit(txn)
        log.close()


class TestCheckpoint:
    def test_truncation_keeps_only_checkpoint_record(self, wal):
        with wal.transaction("insert"):
            wal.append(PAGE_WRITE, {"page_id": 1}, wal.active_txn.txn_id)
        last = wal.last_lsn
        wal.checkpoint("/snap/dir")
        records = wal.records()
        assert [r.rtype for r in records] == [CHECKPOINT]
        assert records[0].payload == {"snapshot": "/snap/dir"}
        assert records[0].lsn == last + 1  # LSNs survive truncation

    def test_checkpoint_with_open_txn_raises(self, wal):
        wal.begin("insert")
        with pytest.raises(WALProtocolError, match="open"):
            wal.checkpoint("/snap")

    def test_non_truncating_checkpoint_appends(self, wal):
        with wal.transaction("insert"):
            pass
        wal.checkpoint("/snap", truncate=False)
        types = [r.rtype for r in wal.records()]
        assert types == [BEGIN, COMMIT, CHECKPOINT]

    def test_generation_and_extra_ride_in_payload(self, wal):
        wal.checkpoint("/snap", generation=3, extra={"ingest_seq": 41})
        payload = wal.records()[-1].payload
        assert payload == {
            "snapshot": "/snap",
            "generation": 3,
            "ingest_seq": 41,
        }

    def test_extra_cannot_shadow_reserved_keys(self, wal):
        with pytest.raises(WALProtocolError, match="reserved"):
            wal.checkpoint("/snap", extra={"snapshot": "/evil"})
        with pytest.raises(WALProtocolError, match="reserved"):
            wal.checkpoint("/snap", extra={"generation": 9})


class TestReopenStats:
    """``commits_since_checkpoint`` must survive close/reopen exactly —
    the health gauge and the ingest watermark both read it."""

    def _commit_n(self, log, n):
        for _ in range(n):
            with log.transaction("insert"):
                pass

    def test_reopen_after_truncating_checkpoint_counts_new_commits(
        self, tmp_path
    ):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        self._commit_n(log, 4)
        log.checkpoint("/snap")  # truncate=True
        self._commit_n(log, 2)
        live = log.stats()["commits_since_checkpoint"]
        log.close()
        reopened = WriteAheadLog(path)
        try:
            assert live == 2
            assert reopened.stats()["commits_since_checkpoint"] == live
        finally:
            reopened.close()

    def test_reopen_after_non_truncating_checkpoint(self, tmp_path):
        # Regression: the reopen path used to count every COMMIT in the
        # surviving log, including those *before* the CHECKPOINT record —
        # wrong whenever the log was checkpointed with truncate=False.
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        self._commit_n(log, 5)
        log.checkpoint("/snap", truncate=False)
        self._commit_n(log, 3)
        live = log.stats()["commits_since_checkpoint"]
        log.close()
        reopened = WriteAheadLog(path)
        try:
            assert live == 3
            assert reopened.stats()["commits_since_checkpoint"] == live
        finally:
            reopened.close()

    def test_reopen_with_no_checkpoint_counts_all_commits(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        self._commit_n(log, 3)
        log.close()
        reopened = WriteAheadLog(path)
        try:
            assert reopened.stats()["commits_since_checkpoint"] == 3
        finally:
            reopened.close()


class TestWALPageStore:
    # Every test takes make_store: the WAL wrapper must behave identically
    # over the in-memory and the mmap-backed store (LSN stamping goes
    # through the stamp_lsn hook, which serializing stores override).
    def _stack(self, wal, make_store=None):
        counters = CostCounters()
        inner = (
            make_store(counters) if make_store is not None
            else PageStore(counters)
        )
        return inner, WALPageStore(inner, wal)

    def test_mutation_outside_txn_raises(self, wal):
        _, store = self._stack(wal)
        with pytest.raises(WALProtocolError, match="outside"):
            store.allocate("payload", 10)

    def test_log_before_write_order_and_lsn_stamp(self, wal, make_store):
        inner, store = self._stack(wal, make_store)
        with wal.transaction("insert"):
            pid = store.allocate({"v": 1}, 16)
            store.overwrite(pid, {"v": 2}, 16)
        records = wal.records()
        body = [(r.rtype, r.payload) for r in records[1:-1]]
        assert body[0][0] == PAGE_ALLOC
        assert body[0][1]["page_id"] == pid
        assert body[1][0] == PAGE_WRITE
        assert body[1][1]["payload"] == {"v": 2}
        # the page carries the LSN of its latest record
        assert inner.raw_fetch(pid).lsn == records[2].lsn
        assert store.physical_writes == 2

    def test_free_is_logged_and_applied(self, wal, make_store):
        inner, store = self._stack(wal, make_store)
        with wal.transaction("delete"):
            pid = store.allocate({"v": 1}, 16)
            store.free(pid)
        assert pid not in inner
        assert PAGE_FREE in [r.rtype for r in wal.records()]

    def test_register_pool_forwards_to_inner(self, wal, make_store):
        inner, store = self._stack(wal, make_store)
        pool = BufferPool(store, 4, inner.counters)
        store.register_pool(pool)
        with wal.transaction("insert"):
            pid = store.allocate({"v": 1}, 16)
            pool.read(pid)
            assert pid in pool
            store.free(pid)
        # invalidation must reach the pool through the wrapper
        assert pid not in pool

    def test_reads_are_delegated_not_logged(self, wal):
        inner, store = self._stack(wal)
        with wal.transaction("insert"):
            pid = store.allocate({"v": 1}, 16)
        n_records = len(wal.records())
        assert store.fetch(pid).payload == {"v": 1}
        assert store.raw_fetch(pid).payload == {"v": 1}
        assert len(store) == 1
        assert store.allocated_pages == 1
        assert len(wal.records()) == n_records

    @pytest.mark.parametrize("phase", ["before_log", "after_log"])
    def test_crashpoint_fires_at_exact_write(self, wal, phase, make_store):
        inner, _ = self._stack(wal, make_store)
        store = WALPageStore(
            inner, wal, crashpoint=CrashPoint(at_write=2, phase=phase)
        )
        with pytest.raises(CrashError, match="write 2"):
            with wal.transaction("insert"):
                store.allocate({"v": 1}, 16)
                store.allocate({"v": 2}, 16)
        logged = [
            r for r in wal.records() if r.rtype == PAGE_ALLOC
        ]
        # before_log: the 2nd record never hit the log; after_log: it did
        assert len(logged) == (1 if phase == "before_log" else 2)
        # either way the 2nd page was never applied to the store
        assert len(inner) == 1


class TestCrashPointValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CrashPoint(at_write=0)
        with pytest.raises(ValueError):
            CrashPoint(at_write=1, phase="sideways")
