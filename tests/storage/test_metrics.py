"""CostCounters / CostSnapshot behaviour."""

import time

import pytest

from repro.storage.metrics import CostCounters, CostSnapshot


class TestCounting:
    def test_initial_state_is_zero(self):
        c = CostCounters()
        snap = c.snapshot()
        assert snap.logical_reads == 0
        assert snap.physical_reads == 0
        assert snap.page_writes == 0
        assert snap.sequential_reads == 0
        assert snap.distance_computations == 0
        assert snap.distance_flops == 0
        assert snap.key_comparisons == 0
        assert snap.cpu_seconds == 0.0

    def test_each_counter_increments(self):
        c = CostCounters()
        c.count_logical_read(3)
        c.count_physical_read(2)
        c.count_page_write(4)
        c.count_sequential_read(5)
        c.count_key_comparison(7)
        assert c.logical_reads == 3
        assert c.physical_reads == 2
        assert c.page_writes == 4
        assert c.sequential_reads == 5
        assert c.key_comparisons == 7

    def test_distance_counts_and_flops(self):
        c = CostCounters()
        c.count_distance(10, dims=8)
        c.count_distance(5)  # default dims=1
        assert c.distance_computations == 15
        assert c.distance_flops == 10 * 8 + 5

    def test_reset_zeroes_everything(self):
        c = CostCounters()
        c.count_logical_read()
        c.count_distance(3, dims=4)
        c.count_key_comparison()
        c.reset()
        assert c.snapshot() == CostSnapshot()


class TestSnapshots:
    def test_snapshot_is_immutable_copy(self):
        c = CostCounters()
        c.count_physical_read(2)
        snap = c.snapshot()
        c.count_physical_read(5)
        assert snap.physical_reads == 2

    def test_snapshot_difference(self):
        c = CostCounters()
        c.count_physical_read(2)
        c.count_distance(3, dims=2)
        before = c.snapshot()
        c.count_physical_read(4)
        c.count_sequential_read(1)
        diff = c.snapshot() - before
        assert diff.physical_reads == 4
        assert diff.sequential_reads == 1
        assert diff.distance_computations == 0
        assert diff.distance_flops == 0

    def test_total_page_reads_combines_random_and_sequential(self):
        snap = CostSnapshot(physical_reads=3, sequential_reads=4)
        assert snap.total_page_reads == 7


class TestCpuTimer:
    def test_timer_accumulates(self):
        c = CostCounters()
        with c.cpu_timer():
            time.sleep(0.01)
        assert c.cpu_seconds >= 0.009

    def test_nested_timer_counts_once(self):
        c = CostCounters()
        with c.cpu_timer():
            with c.cpu_timer():
                time.sleep(0.01)
        # Not double-counted: well under 2x the sleep.
        assert c.cpu_seconds < 0.018

    def test_timer_survives_exceptions(self):
        c = CostCounters()
        with pytest.raises(ValueError):
            with c.cpu_timer():
                raise ValueError("boom")
        # Depth restored: a later timed block still accumulates.
        with c.cpu_timer():
            time.sleep(0.005)
        assert c.cpu_seconds >= 0.004

    def test_exception_in_nested_inner_timer_keeps_outer_accumulating(self):
        """Regression: an exception inside an *inner* timer block must leave
        ``_timer_depth`` consistent so the outer block still accumulates."""
        c = CostCounters()
        with c.cpu_timer():
            with pytest.raises(ValueError):
                with c.cpu_timer():
                    raise ValueError("inner boom")
            assert c._timer_depth == 1
            time.sleep(0.01)
        assert c._timer_depth == 0
        assert c.cpu_seconds >= 0.009
        # And a fresh nested pair still counts exactly once.
        before = c.cpu_seconds
        with c.cpu_timer():
            with c.cpu_timer():
                time.sleep(0.005)
        assert c.cpu_seconds - before < 0.010


class TestFieldSync:
    """snapshot()/__sub__/reset() are derived from dataclasses.fields, so
    the two classes can only desync loudly (import-time TypeError)."""

    def test_snapshot_covers_every_public_counter_field(self):
        from dataclasses import fields

        counter_fields = {
            f.name for f in fields(CostCounters)
            if not f.name.startswith("_")
        }
        snapshot_fields = {f.name for f in fields(CostSnapshot)}
        assert counter_fields == snapshot_fields

    def test_snapshot_picks_up_every_field_value(self):
        from dataclasses import fields

        c = CostCounters()
        for i, f in enumerate(fields(CostSnapshot), start=1):
            setattr(c, f.name, float(i) if f.name == "cpu_seconds" else i)
        snap = c.snapshot()
        for i, f in enumerate(fields(CostSnapshot), start=1):
            assert getattr(snap, f.name) == i

    def test_subtraction_covers_every_field(self):
        from dataclasses import fields

        kwargs_a = {
            f.name: 10.0 if f.name == "cpu_seconds" else 10
            for f in fields(CostSnapshot)
        }
        kwargs_b = {
            f.name: 4.0 if f.name == "cpu_seconds" else 4
            for f in fields(CostSnapshot)
        }
        diff = CostSnapshot(**kwargs_a) - CostSnapshot(**kwargs_b)
        for f in fields(CostSnapshot):
            assert getattr(diff, f.name) == 6
