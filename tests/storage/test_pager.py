"""PageStore and page-size arithmetic."""

import pytest

from repro.storage.pager import (
    FLOAT_SIZE,
    PAGE_SIZE,
    Page,
    PageOverflowError,
    PageStore,
    pages_for_vectors,
    vector_bytes,
)


class TestSizeArithmetic:
    def test_vector_bytes(self):
        assert vector_bytes(0) == 0
        assert vector_bytes(1) == FLOAT_SIZE
        assert vector_bytes(64) == 64 * FLOAT_SIZE

    def test_vector_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            vector_bytes(-1)

    @pytest.mark.parametrize(
        "count,dim,expected",
        [
            (0, 10, 0),
            (1, 10, 1),
            (102, 10, 1),  # 4096 // 40 = 102 vectors fit one page
            (103, 10, 2),
            (1000, 1024, 1000),  # one vector per page when vectors are fat
            (5, 0, 1),  # zero-width vectors still occupy one page
        ],
    )
    def test_pages_for_vectors(self, count, dim, expected):
        assert pages_for_vectors(count, dim) == expected

    def test_pages_for_vectors_rejects_negative_count(self):
        with pytest.raises(ValueError):
            pages_for_vectors(-1, 4)


class TestPage:
    def test_oversized_payload_rejected(self):
        with pytest.raises(PageOverflowError):
            Page(0, "x", PAGE_SIZE + 1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Page(0, "x", -1)

    def test_exact_fit_allowed(self):
        page = Page(0, "x", PAGE_SIZE)
        assert page.size_bytes == PAGE_SIZE


class TestPageStore:
    """Contract tests, run against both physical stores (see conftest)."""

    def test_allocate_returns_distinct_ids(self, make_store):
        store = make_store()
        ids = [store.allocate(i, 10) for i in range(5)]
        assert len(set(ids)) == 5
        assert len(store) == 5

    def test_allocate_counts_write(self, make_store):
        store = make_store()
        store.allocate("a", 10)
        assert store.counters.page_writes == 1

    def test_fetch_returns_payload_without_read_accounting(self, make_store):
        store = make_store()
        pid = store.allocate({"k": 1}, 10)
        page = store.fetch(pid)
        assert page.payload == {"k": 1}
        assert store.counters.logical_reads == 0
        assert store.counters.physical_reads == 0

    def test_fetch_unknown_page_raises(self, make_store):
        store = make_store()
        with pytest.raises(KeyError):
            store.fetch(99)

    def test_read_sequential_counts(self, make_store):
        store = make_store()
        pid = store.allocate("x", 1)
        store.read_sequential(pid)
        assert store.counters.sequential_reads == 1

    def test_overwrite_replaces_payload_and_counts(self, make_store):
        store = make_store()
        pid = store.allocate("old", 5)
        store.overwrite(pid, "new", 7)
        assert store.fetch(pid).payload == "new"
        assert store.counters.page_writes == 2

    def test_overwrite_unknown_page_raises(self, make_store):
        store = make_store()
        with pytest.raises(KeyError):
            store.overwrite(3, "x", 1)

    def test_free_releases_page(self, make_store):
        store = make_store()
        pid = store.allocate("x", 1)
        store.free(pid)
        assert pid not in store
        assert store.allocated_pages == 0
        with pytest.raises(KeyError):
            store.free(pid)

    def test_freed_ids_are_not_reused(self, make_store):
        store = make_store()
        first = store.allocate("a", 1)
        store.free(first)
        second = store.allocate("b", 1)
        assert second != first

    def test_install_places_specific_id_and_advances_counter(
        self, make_store
    ):
        store = make_store()
        store.install(7, "redo", 4, lsn=3)
        page = store.fetch(7)
        assert page.payload == "redo"
        assert page.lsn == 3
        assert store.next_page_id == 8
        assert store.allocate("next", 1) == 8

    def test_stamp_lsn_persists(self, make_store):
        store = make_store()
        pid = store.allocate("x", 1)
        assert store.fetch(pid).lsn is None
        store.stamp_lsn(pid, 11)
        assert store.fetch(pid).lsn == 11

    def test_corrupt_checksum_detected_on_verify(self, make_store):
        from repro.storage.pager import PageCorruptionError, verify_page

        store = make_store()
        pid = store.allocate({"k": 1}, 10)
        verify_page(store.fetch(pid))
        store.corrupt_checksum(pid)
        with pytest.raises(PageCorruptionError):
            verify_page(store.fetch(pid))
        # A second flip of the same bit restores the stored checksum.
        store.corrupt_checksum(pid)
        verify_page(store.fetch(pid))
