"""MmapPageStore-specific behaviour (the PageStore contract itself is
covered by the parametrized suites in test_pager/test_buffer/test_faults/
test_wal; this file tests what only the out-of-core store does: the heap
file, growth, ownership, pickling, and serialize-on-write semantics)."""

import os
import pickle

import pytest

from repro.storage.metrics import CostCounters
from repro.storage.mmap_store import _INITIAL_CAPACITY, MmapPageStore
from repro.storage.pager import (
    PAGE_SIZE,
    PageNotFoundError,
    PageOverflowError,
    page_checksum,
)


@pytest.fixture
def store():
    s = MmapPageStore()
    yield s
    s.close()


class TestHeapFile:
    def test_backing_file_exists_and_is_owned(self, store):
        assert os.path.exists(store.path)
        store.allocate({"a": 1}, 16)
        store.flush()
        assert os.path.getsize(store.path) >= store.heap_bytes

    def test_close_removes_owned_file(self):
        s = MmapPageStore()
        path = s.path
        s.close()
        assert not os.path.exists(path)
        s.close()  # idempotent

    def test_caller_owned_path_survives_close(self, tmp_path):
        path = tmp_path / "heap.pages"
        s = MmapPageStore(path=path)
        s.allocate("x", 1)
        s.close()
        assert path.exists()

    def test_heap_grows_past_initial_capacity(self, store):
        blob = b"x" * 3900
        ids = [store.allocate(blob, 4000) for _ in range(400)]
        assert store.heap_bytes > _INITIAL_CAPACITY
        assert store.fetch(ids[0]).payload == blob
        assert store.fetch(ids[-1]).payload == blob

    def test_overwrite_appends_and_repoints(self, store):
        pid = store.allocate({"v": 1}, 16)
        used = store.heap_bytes
        store.overwrite(pid, {"v": 2}, 16)
        assert store.heap_bytes > used  # log-structured: old blob leaked
        assert store.fetch(pid).payload == {"v": 2}


class TestPageImageSemantics:
    def test_fetch_returns_fresh_deserialized_page(self, store):
        pid = store.allocate({"k": [1, 2]}, 32)
        a = store.fetch(pid)
        b = store.fetch(pid)
        assert a.payload == b.payload
        assert a.payload is not b.payload  # no aliasing: images, not objects

    def test_mutating_a_fetched_payload_does_not_persist(self, store):
        pid = store.allocate({"k": 1}, 16)
        store.fetch(pid).payload["k"] = 999
        assert store.fetch(pid).payload == {"k": 1}

    def test_checksum_matches_reference_formula(self, store):
        payload = {"n": 7, "v": [1.5, 2.5]}
        pid = store.allocate(payload, 64)
        assert store.fetch(pid).checksum == page_checksum(payload)

    def test_oversized_payload_rejected(self, store):
        with pytest.raises(PageOverflowError):
            store.allocate("x", PAGE_SIZE + 1)

    def test_metadata_hooks_hit_table_not_transient_page(self, store):
        pid = store.allocate({"k": 1}, 16)
        # Stamping through a fetched Page would be lost (see above); the
        # hook must land in the metadata table instead.
        store.stamp_lsn(pid, 5)
        assert store.fetch(pid).lsn == 5
        with pytest.raises(PageNotFoundError):
            store.stamp_lsn(99, 5)
        with pytest.raises(PageNotFoundError):
            store.corrupt_checksum(99)


class TestPickling:
    def test_round_trip_preserves_pages_and_ids(self, store):
        pid = store.allocate({"v": 1}, 16)
        store.stamp_lsn(pid, 42)
        store.install(9, "redo", 4, lsn=7)
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert clone.fetch(pid).payload == {"v": 1}
            assert clone.fetch(pid).lsn == 42
            assert clone.fetch(9).payload == "redo"
            assert clone.next_page_id == store.next_page_id
            assert clone.path != store.path  # fresh heap, not a shared file
        finally:
            clone.close()

    def test_round_trip_compacts_leaked_blobs(self, store):
        pid = store.allocate({"v": 0}, 16)
        for i in range(1, 50):
            store.overwrite(pid, {"v": i}, 16)
        clone = pickle.loads(pickle.dumps(store))
        try:
            assert clone.fetch(pid).payload == {"v": 49}
            assert clone.heap_bytes < store.heap_bytes
        finally:
            clone.close()

    def test_counters_ride_along(self):
        counters = CostCounters()
        s = MmapPageStore(counters)
        s.allocate("x", 1)
        clone = pickle.loads(pickle.dumps(s))
        try:
            assert clone.counters.page_writes == 1
        finally:
            clone.close()
            s.close()
