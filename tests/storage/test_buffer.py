"""BufferPool LRU behaviour and I/O accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferPool
from repro.storage.metrics import CostCounters
from repro.storage.pager import PageStore


def make_pool(capacity=3, n_pages=10, store_factory=PageStore):
    counters = CostCounters()
    store = store_factory(counters)
    pids = [store.allocate(f"payload-{i}", 8) for i in range(n_pages)]
    return BufferPool(store, capacity, counters), pids, counters


@pytest.fixture
def pool_factory(make_store):
    """``make_pool`` against the parametrized store kind (memory + mmap)."""

    def factory(capacity=3, n_pages=10):
        return make_pool(capacity, n_pages, store_factory=make_store)

    return factory


class TestBasics:
    def test_capacity_must_be_positive(self, make_store):
        store = make_store()
        with pytest.raises(ValueError):
            BufferPool(store, 0)

    def test_first_read_misses_then_hits(self, pool_factory):
        pool, pids, c = pool_factory()
        assert pool.read(pids[0]) == "payload-0"
        assert (c.logical_reads, c.physical_reads) == (1, 1)
        assert pool.read(pids[0]) == "payload-0"
        assert (c.logical_reads, c.physical_reads) == (2, 1)
        assert pool.hits == 1 and pool.misses == 1

    def test_hit_rate(self, pool_factory):
        pool, pids, _ = pool_factory()
        assert pool.hit_rate == 0.0
        pool.read(pids[0])
        pool.read(pids[0])
        assert pool.hit_rate == 0.5


class TestEviction:
    def test_lru_evicts_least_recent(self, pool_factory):
        pool, pids, c = pool_factory(capacity=2)
        pool.read(pids[0])
        pool.read(pids[1])
        pool.read(pids[0])  # 0 is now most recent
        pool.read(pids[2])  # evicts 1
        assert pids[1] not in pool
        assert pids[0] in pool
        pool.read(pids[1])  # miss again
        assert c.physical_reads == 4

    def test_capacity_never_exceeded(self, pool_factory):
        pool, pids, _ = pool_factory(capacity=3)
        for pid in pids:
            pool.read(pid)
        assert len(pool) == 3

    def test_invalidate_forces_reread(self, pool_factory):
        pool, pids, c = pool_factory()
        pool.read(pids[0])
        pool.invalidate(pids[0])
        pool.read(pids[0])
        assert c.physical_reads == 2

    def test_clear_empties_pool(self, pool_factory):
        pool, pids, _ = pool_factory()
        pool.read(pids[0])
        pool.clear()
        assert len(pool) == 0


class TestSimulatedWorkloads:
    def test_sequential_scan_of_large_set_misses_every_page(
        self, pool_factory
    ):
        pool, pids, c = pool_factory(capacity=3, n_pages=10)
        for _ in range(2):
            for pid in pids:
                pool.read(pid)
        # Working set (10) exceeds capacity (3): LRU gives zero reuse.
        assert c.physical_reads == 20

    def test_working_set_within_capacity_is_free_after_warmup(
        self, pool_factory
    ):
        pool, pids, c = pool_factory(capacity=5, n_pages=4)
        for _ in range(3):
            for pid in pids[:4]:
                pool.read(pid)
        assert c.physical_reads == 4

    # Memory store only: hypothesis re-runs the body many times, and a
    # function-scoped parametrized fixture would trip its health checks.
    @settings(max_examples=25, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        accesses=st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=60
        ),
    )
    def test_property_counters_consistent(self, capacity, accesses):
        pool, pids, c = make_pool(capacity=capacity, n_pages=10)
        for idx in accesses:
            pool.read(pids[idx])
        assert c.logical_reads == len(accesses)
        assert pool.hits + pool.misses == len(accesses)
        assert c.physical_reads == pool.misses
        # Every distinct page misses at least once.
        assert c.physical_reads >= len(set(accesses)) > 0
        assert len(pool) <= capacity
