"""Numba-compiled fused kernels (imported only when numba is installed).

These are the genuinely *compiled* implementations behind the ``"numba"``
backend: each one collapses the reference kernel's chain of numpy
temporaries into one fused loop nest, tiled for cache reuse, compiled with
``@njit(cache=True)`` so the machine code persists across processes.

Numerical contract: ``fastmath`` stays **off** — every accumulation is
plain IEEE float64 in a fixed order, so results agree with the reference to
the last few ulps (well within the 1e-9 the bench fingerprints quantize
at), and all *logical* counters are byte-identical because counting happens
at the call sites, never inside kernels.  ``cold_lru_physical_reads``
returns an exact integer equal to the reference's by construction (same
LRU policy, replayed over factorized page codes).
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "COMPILED",
    "batch_l2_rows",
    "flat_l2",
    "batch_mahalanobis_rows",
    "cold_lru_physical_reads",
    "warmup",
]

COMPILED = True

#: Point-axis tile reused across every query (see _batch_l2_rows_jit).
_TILE_N = 512


@njit(cache=True)
def _batch_l2_rows_jit(points, queries, out):
    n, d = points.shape
    n_queries = queries.shape[0]
    for j0 in range(0, n, _TILE_N):
        j1 = min(j0 + _TILE_N, n)
        # The point tile stays hot in cache while every query streams by.
        for i in range(n_queries):
            for j in range(j0, j1):
                acc = 0.0
                for c in range(d):
                    diff = points[j, c] - queries[i, c]
                    acc += diff * diff
                out[i, j] = np.sqrt(acc)


def batch_l2_rows(points: np.ndarray, queries: np.ndarray) -> np.ndarray:
    out = np.empty((queries.shape[0], points.shape[0]), dtype=np.float64)
    if points.shape[0] and queries.shape[0]:
        _batch_l2_rows_jit(points, queries, out)
    return out


@njit(cache=True)
def _flat_l2_jit(points, positions, queries, query_of_entry, out):
    d = points.shape[1]
    for e in range(positions.size):
        p = positions[e]
        q = query_of_entry[e]
        acc = 0.0
        for c in range(d):
            diff = points[p, c] - queries[q, c]
            acc += diff * diff
        out[e] = np.sqrt(acc)


def flat_l2(
    points: np.ndarray,
    positions: np.ndarray,
    queries: np.ndarray,
    query_of_entry: np.ndarray,
) -> np.ndarray:
    n = positions.size
    out = np.empty(n, dtype=np.float64)
    if n:
        _flat_l2_jit(
            points,
            np.ascontiguousarray(positions, dtype=np.int64),
            queries,
            np.ascontiguousarray(query_of_entry, dtype=np.int64),
            out,
        )
    return out


@njit(cache=True)
def _batch_mahalanobis_jit(points, centroids, chol_invs, penalties,
                           has_penalty, out):
    n, d = points.shape
    k = centroids.shape[0]
    # Whiten + norm + penalty fused per (point, cluster): no (n, d)
    # temporaries at all.  Clusters outermost so each (d, d) factor is
    # read once per point tile; points tiled to keep the factor resident.
    for j in range(k):
        pen = penalties[j] if has_penalty else 0.0
        for i0 in range(0, n, _TILE_N):
            i1 = min(i0 + _TILE_N, n)
            for i in range(i0, i1):
                acc = 0.0
                for r in range(d):
                    s = 0.0
                    for c in range(d):
                        s += chol_invs[j, r, c] * (
                            points[i, c] - centroids[j, c]
                        )
                    acc += s * s
                if has_penalty:
                    out[i, j] = 0.5 * (pen + acc)
                else:
                    out[i, j] = acc


def batch_mahalanobis_rows(points, centroids, chol_invs, penalties=None):
    points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
    centroids = np.ascontiguousarray(centroids, dtype=np.float64)
    chol_invs = np.ascontiguousarray(chol_invs, dtype=np.float64)
    n = points.shape[0]
    k = centroids.shape[0]
    out = np.empty((n, k), dtype=np.float64)
    if n == 0 or k == 0:
        return out
    has_penalty = penalties is not None
    pen = (
        np.ascontiguousarray(penalties, dtype=np.float64)
        if has_penalty
        else np.zeros(k, dtype=np.float64)
    )
    _batch_mahalanobis_jit(points, centroids, chol_invs, pen,
                           has_penalty, out)
    return out


@njit(cache=True)
def _lru_replay_jit(codes, n_pages, capacity):
    # Exact LRU over factorized page codes: doubly-linked list with a
    # sentinel at index n_pages (next of sentinel = MRU, prev = LRU).
    # Mirrors BufferPool.read/_admit: hit moves to MRU, miss admits at MRU
    # and evicts the LRU slot on overflow.
    sent = n_pages
    prev = np.empty(n_pages + 1, dtype=np.int64)
    nxt = np.empty(n_pages + 1, dtype=np.int64)
    resident = np.zeros(n_pages, dtype=np.bool_)
    prev[sent] = sent
    nxt[sent] = sent
    size = 0
    physical = 0
    for idx in range(codes.size):
        p = codes[idx]
        if resident[p]:
            prev[nxt[p]] = prev[p]
            nxt[prev[p]] = nxt[p]
        else:
            physical += 1
            resident[p] = True
            size += 1
        head = nxt[sent]
        nxt[p] = head
        prev[p] = sent
        prev[head] = p
        nxt[sent] = p
        if size > capacity:
            tail = prev[sent]
            prev[sent] = prev[tail]
            nxt[prev[tail]] = sent
            resident[tail] = False
            size -= 1
    return physical


def cold_lru_physical_reads(page_sequence: np.ndarray, capacity: int) -> int:
    if page_sequence.size == 0:
        return 0
    uniques, codes = np.unique(page_sequence, return_inverse=True)
    distinct = int(uniques.size)
    if distinct <= capacity:
        return distinct
    return int(
        _lru_replay_jit(
            np.ascontiguousarray(codes, dtype=np.int64),
            distinct,
            int(capacity),
        )
    )


def warmup() -> None:
    """Force-compile every kernel on tiny inputs (CI / bench setup)."""
    pts = np.zeros((2, 3), dtype=np.float64)
    qs = np.ones((2, 3), dtype=np.float64)
    batch_l2_rows(pts, qs)
    flat_l2(
        pts,
        np.array([0, 1], dtype=np.int64),
        qs,
        np.array([0, 1], dtype=np.int64),
    )
    batch_mahalanobis_rows(
        pts, qs[:1], np.eye(3, dtype=np.float64)[None, :, :],
        np.zeros(1, dtype=np.float64),
    )
    batch_mahalanobis_rows(pts, qs[:1], np.eye(3)[None, :, :], None)
    cold_lru_physical_reads(np.array([0, 1, 0, 2, 1], dtype=np.int64), 1)
