"""Linear-algebra substrate: PCA, Mahalanobis distances, random rotations.

Everything is implemented from scratch on numpy primitives — the paper's
Definitions 3.2–3.5 map one-to-one onto this subpackage:

* :func:`fit_pca` / :func:`project` / :func:`residual_norms` — Definition 3.3
  (multi-level projections) and the ``ProjDist_r`` half of Definition 3.4.
* :class:`ClusterShape` — Definition 3.2 (MahaDist and normalized MahaDist).
* :func:`random_orthonormal` — the Appendix-A rotation step.
* :mod:`~repro.linalg.kernels` — bit-exact batched distance kernels and the
  cold-LRU replay used by the batch query engine.
* :mod:`~repro.linalg.backend` — the pluggable kernel backend (reference
  numpy vs compiled numba) the package-level kernel names dispatch through.
"""

from .backend import (
    batch_l2_rows,
    batch_mahalanobis_rows,
    cold_lru_physical_reads,
    flat_l2,
    get_kernel_backend,
    kernel_backend_info,
    multi_arange,
    normalize_rows,
    set_kernel_backend,
)
from .mahalanobis import (
    ClusterShape,
    Normalization,
    batch_normalized_mahalanobis,
    estimate_covariance,
)
from .pca import PCAModel, fit_pca, project, reconstruct, residual_norms
from .rotation import is_orthonormal, random_orthonormal

__all__ = [
    "ClusterShape",
    "Normalization",
    "PCAModel",
    "batch_l2_rows",
    "batch_mahalanobis_rows",
    "batch_normalized_mahalanobis",
    "cold_lru_physical_reads",
    "estimate_covariance",
    "fit_pca",
    "flat_l2",
    "get_kernel_backend",
    "is_orthonormal",
    "kernel_backend_info",
    "multi_arange",
    "normalize_rows",
    "project",
    "random_orthonormal",
    "reconstruct",
    "residual_norms",
    "set_kernel_backend",
]
