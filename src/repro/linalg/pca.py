"""Principal Component Analysis, implemented from scratch on numpy.

MMDR (Definition 3.3) uses PCA twice: globally/locally to produce the
multi-level low-dimensional projections that `Generate Ellipsoid` clusters
in, and per-ellipsoid to pick the retained subspace during Dimensionality
Optimization.  The principal components are exactly the eigenvectors of the
covariance matrix that the Mahalanobis distance is built from, which is the
observation the whole algorithm rests on.

The implementation eigendecomposes the (symmetric) covariance matrix with
``numpy.linalg.eigh`` and orders components by decreasing eigenvalue.  Signs
of eigenvectors are canonicalized (largest-magnitude coordinate positive) so
results are deterministic across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PCAModel", "fit_pca", "project", "reconstruct", "residual_norms"]


@dataclass(frozen=True)
class PCAModel:
    """A fitted PCA basis.

    Attributes
    ----------
    mean:
        ``(d,)`` sample mean subtracted before projection.
    components:
        ``(d, d)`` orthonormal matrix whose *columns* are principal
        components ordered by decreasing eigenvalue, i.e. column 0 is the
        first principal component (:math:`\\Phi` in Definition 3.3 is
        ``components[:, :d_r]``).
    eigenvalues:
        ``(d,)`` variances along each component, non-increasing.
    n_samples:
        Number of points the model was fitted on.
    """

    mean: np.ndarray
    components: np.ndarray
    eigenvalues: np.ndarray
    n_samples: int = field(default=0)

    @property
    def dimensionality(self) -> int:
        """Original dimensionality ``d``."""
        return self.components.shape[0]

    def basis(self, n_components: int) -> np.ndarray:
        """The ``(d, n_components)`` matrix of leading components."""
        d = self.dimensionality
        if not 0 <= n_components <= d:
            raise ValueError(
                f"n_components must be in [0, {d}], got {n_components}"
            )
        return self.components[:, :n_components]

    def explained_variance_ratio(self) -> np.ndarray:
        """Per-component fraction of total variance (all zeros if the data
        had no variance at all)."""
        total = float(self.eigenvalues.sum())
        if total <= 0.0:
            return np.zeros_like(self.eigenvalues)
        return self.eigenvalues / total


def fit_pca(data: np.ndarray) -> PCAModel:
    """Fit a full PCA basis to ``(n, d)`` data.

    Degenerate inputs are handled explicitly: a single point (or identical
    points) yields zero eigenvalues and an identity basis contribution, and
    clusters with fewer points than dimensions simply produce a rank-deficient
    covariance whose trailing eigenvalues are zero.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (n, d), got shape {data.shape}")
    n, d = data.shape
    if n == 0:
        raise ValueError("cannot fit PCA on an empty dataset")
    mean = data.mean(axis=0)
    if n == 1:
        return PCAModel(
            mean=mean,
            components=np.eye(d),
            eigenvalues=np.zeros(d),
            n_samples=1,
        )
    centered = data - mean
    # Population covariance (divide by n): matches the Mahalanobis covariance
    # used for clustering, and keeps single-cluster MPE values consistent.
    cov = centered.T @ centered / n
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    # eigh can return tiny negative eigenvalues for rank-deficient matrices.
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    eigenvectors = _canonicalize_signs(eigenvectors)
    return PCAModel(
        mean=mean,
        components=eigenvectors,
        eigenvalues=eigenvalues,
        n_samples=n,
    )


def _canonicalize_signs(vectors: np.ndarray) -> np.ndarray:
    """Flip eigenvector signs so the largest-|coordinate| entry is positive."""
    flipped = vectors.copy()
    for j in range(flipped.shape[1]):
        col = flipped[:, j]
        pivot = int(np.argmax(np.abs(col)))
        if col[pivot] < 0:
            flipped[:, j] = -col
    return flipped


def project(
    data: np.ndarray, model: PCAModel, n_components: int
) -> np.ndarray:
    """Project ``(n, d)`` (or a single ``(d,)``) point(s) onto the leading
    ``n_components`` principal components.

    This is Definition 3.3's :math:`P'_{d_r} = P \\cdot \\Phi_{d_r}` with the
    conventional mean-centering step made explicit.
    """
    basis = model.basis(n_components)
    arr = np.asarray(data, dtype=np.float64)
    return (arr - model.mean) @ basis


def reconstruct(
    projections: np.ndarray, model: PCAModel, n_components: int
) -> np.ndarray:
    """Map reduced points back into the original space (lossy inverse)."""
    basis = model.basis(n_components)
    arr = np.asarray(projections, dtype=np.float64)
    return arr @ basis.T + model.mean


def residual_norms(
    data: np.ndarray, model: PCAModel, n_components: int
) -> np.ndarray:
    """Euclidean distance from each point to the retained subspace.

    This is the paper's :math:`ProjDist_r` (Definition 3.4): the information
    *lost* when a point is represented by its ``n_components``-dimensional
    projection.  Computed as the norm of the point's coordinates along the
    eliminated components, which equals the reconstruction error because the
    basis is orthonormal.
    """
    arr = np.atleast_2d(np.asarray(data, dtype=np.float64))
    centered = arr - model.mean
    eliminated = model.components[:, n_components:]
    if eliminated.shape[1] == 0:
        return np.zeros(arr.shape[0])
    coords = centered @ eliminated
    return np.linalg.norm(coords, axis=1)
