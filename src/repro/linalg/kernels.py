"""Vectorized kernels shared by the batch query engine.

The batch KNN paths (:meth:`repro.index.base.VectorIndex.knn_batch`) promise
*bit-identical* results to the per-query search.  That rules out the usual
``cdist`` expansion ``sqrt(x·x - 2x·q + q·q)``, whose re-association changes
the last ulp, and also rules out replacing the per-query ``(d,) @ (d, d_r)``
projection with one ``(Q, d) @ (d, d_r)`` matmul (BLAS picks different
kernels for gemv vs gemm, and their row results differ bit-wise — measured,
not hypothetical).  What *is* safe is broadcasting the subtraction and
reducing the contiguous last axis: numpy's pairwise summation tree depends
only on the length and layout of the reduced axis, so

    np.linalg.norm(P[None, :, :] - Q[:, None, :], axis=2)[i]
        == np.linalg.norm(P - Q[i], axis=1)          # bit-for-bit

holds for C-contiguous inputs.  The helpers here package that identity (plus
the flat gather variant the iDistance scan uses) with query-chunking so the
broadcast buffer stays bounded.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["multi_arange", "batch_l2_rows", "flat_l2", "cold_lru_physical_reads"]

#: Cap on the number of float64 elements a broadcast diff buffer may hold
#: (~64 MiB).  Chunking slices the *query* axis only, so each output row is
#: still produced by one contiguous last-axis reduction — bit-identity holds.
_MAX_BUFFER_ELEMS = 1 << 23


def multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], stops[i])`` for every segment.

    Segments may be empty (``stops[i] == starts[i]``); ``stops`` must be
    >= ``starts`` elementwise.  Output order is segment order, ascending
    within each segment — exactly the order a per-segment Python loop of
    ``np.arange`` calls would produce, without the per-segment overhead.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    lengths = stops - starts
    if np.any(lengths < 0):
        raise ValueError("multi_arange requires stops >= starts")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    seg_starts = ends - lengths  # first output index of each segment
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lengths)
    return np.repeat(starts, lengths) + within


def batch_l2_rows(points: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """``(Q, n)`` matrix whose row ``i`` is bit-identical to
    ``np.linalg.norm(points - queries[i], axis=1)``.

    ``points`` is ``(n, d)``, ``queries`` is ``(Q, d)``.  Queries are
    processed in chunks so the ``(q, n, d)`` diff buffer stays under
    ~64 MiB; chunk boundaries cannot affect bit-identity because each
    output row's reduction runs over its own contiguous length-``d`` run.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    n, d = points.shape
    n_queries = queries.shape[0]
    out = np.empty((n_queries, n), dtype=np.float64)
    if n == 0 or n_queries == 0:
        return out
    chunk = max(1, _MAX_BUFFER_ELEMS // max(1, n * d))
    for lo in range(0, n_queries, chunk):
        hi = min(lo + chunk, n_queries)
        diff = points[None, :, :] - queries[lo:hi, None, :]
        out[lo:hi] = np.linalg.norm(diff, axis=2)
    return out


def flat_l2(
    points: np.ndarray, positions: np.ndarray, queries: np.ndarray,
    query_of_entry: np.ndarray,
) -> np.ndarray:
    """Per-entry distances ``||points[positions[e]] - queries[query_of_entry[e]]||``.

    This is the shared-scan kernel: every (query, candidate) pair the batch
    scan needs is one row of a single ``(N, d)`` elementwise subtraction, so
    no distances are computed for pairs no query asked for, and each entry is
    bit-identical to the sequential per-block
    ``np.linalg.norm(block - q_proj, axis=1)``.

    Large gathers are chunked along the entry axis so the two gathered
    ``(N, d)`` temporaries stay cache-friendly instead of forcing fresh
    multi-hundred-MB allocations; rows are independent, so chunk boundaries
    cannot affect bit-identity.
    """
    n = positions.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    d = points.shape[1]
    out = np.empty(n, dtype=np.float64)
    chunk = max(1, _MAX_BUFFER_ELEMS // (4 * max(1, d)))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        diff = points[positions[lo:hi]] - queries[query_of_entry[lo:hi]]
        out[lo:hi] = np.linalg.norm(diff, axis=1)
    return out


def cold_lru_physical_reads(page_sequence: np.ndarray, capacity: int) -> int:
    """Physical reads a cold LRU buffer pool of ``capacity`` pages performs
    for ``page_sequence`` (in order), mirroring
    :class:`repro.storage.buffer.BufferPool` exactly.

    Fast path: while the pool never fills, every first touch misses and
    every revisit hits, so physical reads = distinct pages.  Only when the
    working set exceeds the capacity does eviction order matter, and then
    the sequence is replayed through an exact LRU model (hit moves to MRU,
    overflow evicts LRU) — the same policy ``BufferPool.read``/``_admit``
    implement.
    """
    if page_sequence.size == 0:
        return 0
    distinct = int(np.unique(page_sequence).size)
    if distinct <= capacity:
        return distinct
    resident: OrderedDict[int, bool] = OrderedDict()
    physical = 0
    for page in page_sequence.tolist():
        if page in resident:
            resident.move_to_end(page)
            continue
        physical += 1
        resident[page] = True
        if len(resident) > capacity:
            resident.popitem(last=False)
    return physical
