"""Vectorized kernels shared by the batch query engine.

The batch KNN paths (:meth:`repro.index.base.VectorIndex.knn_batch`) promise
*bit-identical* results to the per-query search.  That rules out the usual
``cdist`` expansion ``sqrt(x·x - 2x·q + q·q)``, whose re-association changes
the last ulp, and also rules out replacing the per-query ``(d,) @ (d, d_r)``
projection with one ``(Q, d) @ (d, d_r)`` matmul (BLAS picks different
kernels for gemv vs gemm, and their row results differ bit-wise — measured,
not hypothetical).  What *is* safe is broadcasting the subtraction and
reducing the contiguous last axis: numpy's pairwise summation tree depends
only on the length and layout of the reduced axis, so

    np.linalg.norm(P[None, :, :] - Q[:, None, :], axis=2)[i]
        == np.linalg.norm(P - Q[i], axis=1)          # bit-for-bit

holds for C-contiguous inputs.  The helpers here package that identity (plus
the flat gather variant the iDistance scan uses) with query-chunking so the
broadcast buffer stays bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

__all__ = [
    "multi_arange",
    "batch_l2_rows",
    "flat_l2",
    "batch_mahalanobis_rows",
    "normalize_rows",
    "cold_lru_physical_reads",
    "require_kernel_matrix",
]

#: Cap on the number of float64 elements a broadcast diff buffer may hold
#: (~64 MiB).  Chunking slices the *query* axis only, so each output row is
#: still produced by one contiguous last-axis reduction — bit-identity holds.
_MAX_BUFFER_ELEMS = 1 << 23


def require_kernel_matrix(name: str, arr: np.ndarray) -> np.ndarray:
    """Reject inputs the hot kernels would otherwise silently copy.

    The query-path kernels used to ``ascontiguousarray`` their operands on
    every call, which hid a per-query allocate+copy whenever a caller handed
    over float32 or F-ordered data.  All build paths now produce C-contiguous
    float64 once, at construction, so a non-conforming input here is a caller
    bug — raise early (``TypeError`` for dtype, ``ValueError`` for layout)
    instead of quietly re-paying the copy on the hot path.
    """
    arr = np.asarray(arr)
    if arr.dtype != np.float64:
        raise TypeError(
            f"{name} must be float64, got {arr.dtype} (convert once at "
            "construction; kernels no longer copy per call)"
        )
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-d, got shape {arr.shape}")
    if not arr.flags.c_contiguous:
        raise ValueError(
            f"{name} must be C-contiguous (F-ordered or strided views "
            "would force a silent per-call copy; make the copy once at "
            "construction instead)"
        )
    return arr


def multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], stops[i])`` for every segment.

    Segments may be empty (``stops[i] == starts[i]``); ``stops`` must be
    >= ``starts`` elementwise.  Output order is segment order, ascending
    within each segment — exactly the order a per-segment Python loop of
    ``np.arange`` calls would produce, without the per-segment overhead.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    lengths = stops - starts
    if np.any(lengths < 0):
        raise ValueError("multi_arange requires stops >= starts")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    seg_starts = ends - lengths  # first output index of each segment
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lengths)
    return np.repeat(starts, lengths) + within


def batch_l2_rows(points: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """``(Q, n)`` matrix whose row ``i`` is bit-identical to
    ``np.linalg.norm(points - queries[i], axis=1)``.

    ``points`` is ``(n, d)``, ``queries`` is ``(Q, d)``.  Queries are
    processed in chunks so the ``(q, n, d)`` diff buffer stays under
    ~64 MiB; chunk boundaries cannot affect bit-identity because each
    output row's reduction runs over its own contiguous length-``d`` run.

    Both operands must already be C-contiguous float64 (see
    :func:`require_kernel_matrix`).
    """
    points = require_kernel_matrix("points", points)
    queries = require_kernel_matrix("queries", queries)
    n, d = points.shape
    n_queries = queries.shape[0]
    out = np.empty((n_queries, n), dtype=np.float64)
    if n == 0 or n_queries == 0:
        return out
    chunk = max(1, _MAX_BUFFER_ELEMS // max(1, n * d))
    for lo in range(0, n_queries, chunk):
        hi = min(lo + chunk, n_queries)
        diff = points[None, :, :] - queries[lo:hi, None, :]
        out[lo:hi] = np.linalg.norm(diff, axis=2)
    return out


def flat_l2(
    points: np.ndarray, positions: np.ndarray, queries: np.ndarray,
    query_of_entry: np.ndarray,
) -> np.ndarray:
    """Per-entry distances ``||points[positions[e]] - queries[query_of_entry[e]]||``.

    This is the shared-scan kernel: every (query, candidate) pair the batch
    scan needs is one row of a single ``(N, d)`` elementwise subtraction, so
    no distances are computed for pairs no query asked for, and each entry is
    bit-identical to the sequential per-block
    ``np.linalg.norm(block - q_proj, axis=1)``.

    Large gathers are chunked along the entry axis so the two gathered
    ``(N, d)`` temporaries stay cache-friendly instead of forcing fresh
    multi-hundred-MB allocations; rows are independent, so chunk boundaries
    cannot affect bit-identity.

    ``points`` and ``queries`` must already be C-contiguous float64 (see
    :func:`require_kernel_matrix`).
    """
    points = require_kernel_matrix("points", points)
    queries = require_kernel_matrix("queries", queries)
    n = positions.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    d = points.shape[1]
    out = np.empty(n, dtype=np.float64)
    chunk = max(1, _MAX_BUFFER_ELEMS // (4 * max(1, d)))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        diff = points[positions[lo:hi]] - queries[query_of_entry[lo:hi]]
        out[lo:hi] = np.linalg.norm(diff, axis=1)
    return out


def batch_mahalanobis_rows(
    points: np.ndarray,
    centroids: np.ndarray,
    chol_invs: np.ndarray,
    penalties: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(n, k)`` matrix of (normalized) Mahalanobis distances.

    Column ``j`` is bit-identical to
    ``ClusterShape.normalized_distance(points)`` for the shape whose
    centroid is ``centroids[j]`` and whose inverse Cholesky factor is
    ``chol_invs[j]``: the whitening ``(points - c) @ L_inv.T`` runs as the
    same gemm, the squared norm as the same einsum, and the volume penalty
    as the same scalar ``0.5 * (penalty + msq)``.  ``penalties`` is the
    per-cluster precomputed ``d ln 2π + ln|C|`` term (``None`` means the
    raw quadratic form, i.e. ``normalization="none"``).

    This is the reference implementation of the fused kernel: the compiled
    backend computes the same values without materializing the ``(n, d)``
    whitened temporaries, one accumulation per (point, cluster) pair.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    k = centroids.shape[0]
    out = np.empty((n, k), dtype=np.float64)
    for j in range(k):
        diff = points - centroids[j]
        z = diff @ chol_invs[j].T
        msq = np.einsum("ij,ij->i", z, z)
        if penalties is None:
            out[:, j] = msq
        else:
            out[:, j] = 0.5 * (penalties[j] + msq)
    return out


def normalize_rows(rows: np.ndarray) -> np.ndarray:
    """Row-normalize ``(n, d)`` data to unit L2 norm; zero rows unchanged.

    The cosine metric reduces to L2 on unit vectors, so the *same*
    normalization must be applied to build data, online inserts, and
    queries.  The per-row norm is a contiguous last-axis reduction, so
    ``normalize_rows(Q)[i]`` is bit-identical to
    ``normalize_rows(Q[i][None, :])[0]`` — which keeps the batched and
    per-query paths bit-identical under cosine exactly as under L2.
    """
    rows = np.ascontiguousarray(np.atleast_2d(rows), dtype=np.float64)
    norms = np.linalg.norm(rows, axis=1)
    out = rows.copy()
    nonzero = norms > 0.0
    if np.any(nonzero):
        out[nonzero] = rows[nonzero] / norms[nonzero, None]
    return out


def cold_lru_physical_reads(page_sequence: np.ndarray, capacity: int) -> int:
    """Physical reads a cold LRU buffer pool of ``capacity`` pages performs
    for ``page_sequence`` (in order), mirroring
    :class:`repro.storage.buffer.BufferPool` exactly.

    Fast path: while the pool never fills, every first touch misses and
    every revisit hits, so physical reads = distinct pages.  Only when the
    working set exceeds the capacity does eviction order matter, and then
    the sequence is replayed through an exact LRU model (hit moves to MRU,
    overflow evicts LRU) — the same policy ``BufferPool.read``/``_admit``
    implement.
    """
    if page_sequence.size == 0:
        return 0
    distinct = int(np.unique(page_sequence).size)
    if distinct <= capacity:
        return distinct
    resident: OrderedDict[int, bool] = OrderedDict()
    physical = 0
    for page in page_sequence.tolist():
        if page in resident:
            resident.move_to_end(page)
            continue
        physical += 1
        resident[page] = True
        if len(resident) > capacity:
            resident.popitem(last=False)
    return physical
