"""Cache-blocked pure-numpy kernels: the compiled backend's fallback.

When the ``numba`` extra is not installed, the ``"numba"`` backend resolves
to these implementations so that backend selection never fails — it merely
stops being *compiled*.  Every function here is **bit-identical** to its
reference twin in :mod:`repro.linalg.kernels`, which is what lets the bench
gate's fingerprints and counters hold across backends with or without the
compiler present.

What may be blocked and what may not
------------------------------------
``batch_l2_rows`` and ``flat_l2`` reduce each output element over its own
contiguous length-``d`` run, so tiling their *outer* axes to cache-sized
blocks cannot change a single bit (see the reference module's docstring).
``batch_mahalanobis_rows`` is different: its whitening step is a gemm, and
BLAS picks differently-blocked (and differently-rounded, in the last ulp)
kernels per operand shape — row-tiling the matmul is *not* bit-stable.  The
fallback therefore reuses the reference implementation unchanged; only the
compiled path fuses it.  ``cold_lru_physical_reads`` returns an exact
integer either way, so the reference is reused as-is.
"""

from __future__ import annotations

import numpy as np

from .kernels import batch_mahalanobis_rows, cold_lru_physical_reads

__all__ = [
    "COMPILED",
    "batch_l2_rows",
    "flat_l2",
    "batch_mahalanobis_rows",
    "cold_lru_physical_reads",
]

#: Whether this module provides machine code (it does not; it is the
#: graceful fallback the backend selects when numba is unavailable).
COMPILED = False

#: Query-axis tile: a handful of rows so the diff block stays register/L1
#: friendly while still amortizing the Python loop.
_TILE_Q = 64
#: Point-axis tile: ~1k vectors keeps tile + diff block inside L2 for the
#: dimensionalities the indexes use (d_r ≤ 64).
_TILE_N = 1024
#: Entry-axis budget for the flat gather (elements of the diff temporary).
_TILE_FLAT_ELEMS = 1 << 16


def batch_l2_rows(points: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Tile-blocked twin of :func:`repro.linalg.kernels.batch_l2_rows`.

    Both axes are tiled so one ``(TILE_Q, TILE_N, d)`` diff block is live
    at a time and the point tile is reused across every query tile.  Each
    output element's reduction still runs over its own contiguous
    length-``d`` run, so the result is bit-identical to the reference.
    """
    n, d = points.shape
    n_queries = queries.shape[0]
    out = np.empty((n_queries, n), dtype=np.float64)
    if n == 0 or n_queries == 0:
        return out
    for j0 in range(0, n, _TILE_N):
        j1 = min(j0 + _TILE_N, n)
        tile = points[j0:j1]
        for i0 in range(0, n_queries, _TILE_Q):
            i1 = min(i0 + _TILE_Q, n_queries)
            diff = tile[None, :, :] - queries[i0:i1, None, :]
            out[i0:i1, j0:j1] = np.linalg.norm(diff, axis=2)
    return out


def flat_l2(
    points: np.ndarray,
    positions: np.ndarray,
    queries: np.ndarray,
    query_of_entry: np.ndarray,
) -> np.ndarray:
    """Cache-tiled twin of :func:`repro.linalg.kernels.flat_l2`.

    Identical gather-subtract-reduce per entry, just with an L2-cache-sized
    entry chunk instead of the reference's 64 MiB budget; rows are
    independent, so the result is bit-identical.
    """
    n = positions.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    d = points.shape[1]
    out = np.empty(n, dtype=np.float64)
    chunk = max(1, _TILE_FLAT_ELEMS // (2 * max(1, d)))
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        diff = points[positions[lo:hi]] - queries[query_of_entry[lo:hi]]
        out[lo:hi] = np.linalg.norm(diff, axis=1)
    return out
