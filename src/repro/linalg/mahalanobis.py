"""Mahalanobis distance and its normalized variant (Definition 3.2).

The Mahalanobis distance weights displacement by the inverse covariance of a
cluster, so iso-distance surfaces are ellipsoids aligned with the cluster's
principal axes — exactly the shape MMDR wants to discover.  The *normalized*
variant adds a volume penalty so that a large, elongated cluster does not
keep absorbing points from smaller neighbours (the failure mode Definition
3.2 warns about, citing Sung & Poggio's elliptical k-means).

Two normalizations are provided:

* ``"gaussian"`` (default): :math:`\\tfrac12 (d \\ln 2\\pi + \\ln|C| + m)` —
  the Gaussian negative log-likelihood, which is the Sung–Poggio normalized
  distance the paper cites.
* ``"paper"``: :math:`\\tfrac12 (d \\ln(2\\pi\\,|C|) + m)` — the formula
  exactly as printed in Definition 3.2 (almost certainly a typesetting slip,
  but preserved for fidelity; it scales the volume penalty by ``d``).

Covariance matrices from small or degenerate clusters are regularized with a
relative ridge before factorization; the class precomputes the Cholesky
factor once so distance evaluation over ``n`` points is a vectorized
``O(n d^2)`` instead of per-point inversions.
"""

from __future__ import annotations

import math
from typing import Literal, Optional, Sequence

import numpy as np

from ..storage.metrics import CostCounters

__all__ = [
    "Normalization",
    "ClusterShape",
    "batch_normalized_mahalanobis",
    "estimate_covariance",
]

Normalization = Literal["none", "gaussian", "paper"]

#: Relative ridge added to covariance diagonals for invertibility.
_RIDGE_SCALE = 1e-8
#: Absolute floor used when a covariance is entirely zero.
_RIDGE_FLOOR = 1e-12


def estimate_covariance(
    data: np.ndarray, mean: Optional[np.ndarray] = None
) -> np.ndarray:
    """Population covariance of ``(n, d)`` data around ``mean``.

    A single point (or none) yields the zero matrix, which
    :class:`ClusterShape` then regularizes to a tiny isotropic ball —
    mirroring how elliptical k-means seeds clusters with identity shape.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n, d = data.shape
    if n == 0:
        return np.zeros((d, d))
    if mean is None:
        mean = data.mean(axis=0)
    centered = data - mean
    return centered.T @ centered / n


class ClusterShape:
    """A cluster's centroid and covariance, ready for distance queries.

    The constructor factors a regularized covariance once so that each
    distance evaluation costs a pair of triangular solves instead of a fresh
    inversion.  ``log_det`` is the log-determinant of the regularized
    covariance, used by the normalized distance.
    """

    def __init__(self, centroid: np.ndarray, covariance: np.ndarray) -> None:
        self.centroid = np.asarray(centroid, dtype=np.float64)
        self.covariance = np.asarray(covariance, dtype=np.float64)
        d = self.centroid.shape[0]
        if self.covariance.shape != (d, d):
            raise ValueError(
                f"covariance shape {self.covariance.shape} does not match "
                f"centroid dimensionality {d}"
            )
        regularized = self._regularize(self.covariance)
        self._chol = np.linalg.cholesky(regularized)
        # Inverse of the lower-triangular factor: mahalanobis^2 of x is then
        # || L^{-1} (x - centroid) ||^2, computed as one matmul per batch.
        self._chol_inv = np.linalg.inv(self._chol)
        self.log_det = 2.0 * float(np.sum(np.log(np.diag(self._chol))))

    @staticmethod
    def _regularize(cov: np.ndarray) -> np.ndarray:
        d = cov.shape[0]
        scale = float(np.trace(cov)) / d if d else 0.0
        ridge = max(scale * _RIDGE_SCALE, _RIDGE_FLOOR)
        return cov + ridge * np.eye(d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterShape(d={self.dimensionality}, "
            f"log_det={self.log_det:.3f})"
        )

    @property
    def dimensionality(self) -> int:
        return self.centroid.shape[0]

    @classmethod
    def from_points(
        cls, points: np.ndarray, centroid: Optional[np.ndarray] = None
    ) -> "ClusterShape":
        """Fit centroid + covariance from member points."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("cannot fit a ClusterShape on zero points")
        if centroid is None:
            centroid = points.mean(axis=0)
        return cls(
            centroid=centroid,
            covariance=estimate_covariance(points, centroid),
        )

    @classmethod
    def spherical(
        cls, centroid: np.ndarray, radius: float = 1.0
    ) -> "ClusterShape":
        """Isotropic shape used to seed elliptical k-means."""
        centroid = np.asarray(centroid, dtype=np.float64)
        d = centroid.shape[0]
        return cls(centroid=centroid, covariance=(radius**2) * np.eye(d))

    def mahalanobis_sq(
        self, points: np.ndarray, counters: Optional[CostCounters] = None
    ) -> np.ndarray:
        """MahaDist from each point to the centroid.

        Definition 3.2 defines *MahaDist* as the quadratic form
        :math:`(P-O)^T C^{-1} (P-O)` (no square root), so this **is** the
        paper's MahaDist; the ``_sq`` suffix records that it scales like a
        squared Euclidean distance.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.shape[1] != self.dimensionality:
            raise ValueError(
                f"points have dimensionality {pts.shape[1]}, "
                f"shape expects {self.dimensionality}"
            )
        diff = pts - self.centroid
        z = diff @ self._chol_inv.T
        if counters is not None:
            counters.count_distance(pts.shape[0], dims=self.dimensionality)
        return np.einsum("ij,ij->i", z, z)

    def normalized_distance(
        self,
        points: np.ndarray,
        normalization: Normalization = "gaussian",
        counters: Optional[CostCounters] = None,
    ) -> np.ndarray:
        """Normalized Mahalanobis distance (Definition 3.2).

        With ``normalization="none"`` this degenerates to plain MahaDist,
        which lets the elliptical k-means implementation switch metric with
        one parameter (and lets the ablation bench show why the volume
        penalty matters).
        """
        msq = self.mahalanobis_sq(points, counters=counters)
        if normalization == "none":
            return msq
        return 0.5 * (self.volume_penalty(normalization) + msq)

    def volume_penalty(self, normalization: Normalization) -> float:
        """The scalar volume term of the normalized distance.

        Factored out so the fused batch kernel can precompute one penalty
        per cluster with *exactly* the arithmetic the per-shape path uses.
        """
        d = self.dimensionality
        if normalization == "gaussian":
            return d * math.log(2.0 * math.pi) + self.log_det
        if normalization == "paper":
            return d * (math.log(2.0 * math.pi) + self.log_det)
        raise ValueError(f"unknown normalization {normalization!r}")


def batch_normalized_mahalanobis(
    points: np.ndarray,
    shapes: Sequence[ClusterShape],
    normalization: Normalization = "gaussian",
    counters: Optional[CostCounters] = None,
) -> np.ndarray:
    """``(n, k)`` normalized distances from every point to every shape.

    This is the batched form of calling ``shape.normalized_distance`` once
    per shape and stacking the columns — the hottest loop of elliptical
    k-means — routed through the fused
    :func:`repro.linalg.backend.batch_mahalanobis_rows` kernel.  Under the
    reference backend each column is bit-identical to the per-shape call;
    the compiled backend agrees to well under the fingerprints' 1e-9
    quantum.  Counters are charged here exactly as the per-shape loop
    charged them (``n`` distance evaluations per shape, at full ``d``),
    so logical costs are invariant to both batching and backend.
    """
    from .backend import batch_mahalanobis_rows

    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    shapes = list(shapes)
    if not shapes:
        return np.empty((pts.shape[0], 0), dtype=np.float64)
    d = shapes[0].dimensionality
    if pts.shape[1] != d:
        raise ValueError(
            f"points have dimensionality {pts.shape[1]}, "
            f"shapes expect {d}"
        )
    centroids = np.ascontiguousarray(
        np.stack([s.centroid for s in shapes])
    )
    chol_invs = np.ascontiguousarray(
        np.stack([s._chol_inv for s in shapes])
    )
    penalties = (
        None
        if normalization == "none"
        else np.array(
            [s.volume_penalty(normalization) for s in shapes],
            dtype=np.float64,
        )
    )
    if counters is not None:
        for _ in shapes:
            counters.count_distance(pts.shape[0], dims=d)
    return batch_mahalanobis_rows(pts, centroids, chol_invs, penalties)
