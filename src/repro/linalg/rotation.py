"""Random orthonormal rotation matrices.

Appendix A of the paper generates each synthetic cluster axis-aligned and
then rotates it by "a random orthonormal rotation matrix (generated using
MATLAB)" so that every cluster lives in an arbitrarily oriented subspace.
We reproduce that with the standard QR construction: take a matrix of i.i.d.
standard normals, QR-factorize, and fix the signs so the distribution is
Haar (uniform over the orthogonal group).
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_orthonormal", "is_orthonormal"]


def random_orthonormal(
    dimensionality: int, rng: np.random.Generator
) -> np.ndarray:
    """A ``(d, d)`` Haar-distributed orthonormal matrix.

    Parameters
    ----------
    dimensionality:
        Matrix size ``d`` (>= 1).
    rng:
        Numpy random generator; callers pass seeded generators so datasets
        are reproducible.
    """
    if dimensionality < 1:
        raise ValueError(
            f"dimensionality must be >= 1, got {dimensionality}"
        )
    gaussian = rng.standard_normal((dimensionality, dimensionality))
    q, r = np.linalg.qr(gaussian)
    # Sign fix (Mezzadri 2007): without it QR's sign convention biases the
    # distribution away from Haar.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs


def is_orthonormal(matrix: np.ndarray, tolerance: float = 1e-9) -> bool:
    """True when ``matrix.T @ matrix`` is the identity within ``tolerance``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    gram = matrix.T @ matrix
    return bool(
        np.allclose(gram, np.eye(matrix.shape[0]), atol=tolerance)
    )
