"""Pluggable kernel backend: reference numpy vs compiled (numba) kernels.

Every hot distance kernel in the query and clustering paths is reachable
through exactly one of two implementations, selected process-wide:

* ``"numpy"`` — the reference kernels in :mod:`repro.linalg.kernels`,
  kept bit-identical forever; this is the default and the implementation
  every equivalence test compares against.
* ``"numba"`` — fused, cache-blocked kernels compiled with
  ``@njit(cache=True)`` (:mod:`repro.linalg._kernels_numba`).  When numba
  is not installed the backend *degrades gracefully* to the bit-identical
  blocked-numpy fallbacks (:mod:`repro.linalg._kernels_blocked`) instead
  of failing — selection is about speed, never availability.

Selection is explicit: :func:`set_kernel_backend` at runtime, or the
``REPRO_KERNEL_BACKEND`` environment variable at import (unknown names
raise either way — a typo'd backend silently running the default would
invalidate a benchmark).  Logical cost counters (distance evaluations,
flops, page reads, key comparisons) are charged at the call sites, never
inside kernels, so they are identical across backends by construction —
which is what keeps the machine-independent bench gate meaningful while
wall-clock improves.

The dispatchers below enforce the contiguity/dtype contract once per call
(:func:`repro.linalg.kernels.require_kernel_matrix`) for the compiled
path; the reference kernels carry the same guard themselves.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from . import kernels as _reference
from .kernels import multi_arange, normalize_rows, require_kernel_matrix

__all__ = [
    "KERNEL_BACKENDS",
    "set_kernel_backend",
    "get_kernel_backend",
    "kernel_backend_info",
    "batch_l2_rows",
    "flat_l2",
    "batch_mahalanobis_rows",
    "cold_lru_physical_reads",
    "multi_arange",
    "normalize_rows",
]

#: Selectable backend names.
KERNEL_BACKENDS = ("numpy", "numba")

_ENV_KNOB = "REPRO_KERNEL_BACKEND"

#: Lazily resolved implementation module for the "numba" backend:
#: _kernels_numba when importable, else the blocked-numpy fallback.
_fast_module = None


def _resolve_fast_module():
    global _fast_module
    if _fast_module is None:
        try:
            from . import _kernels_numba as fast
        except ImportError:
            from . import _kernels_blocked as fast
        _fast_module = fast
    return _fast_module


def _validate(name: str) -> str:
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"expected one of {list(KERNEL_BACKENDS)}"
        )
    return name


_active = _validate(os.environ.get(_ENV_KNOB, "numpy"))


def set_kernel_backend(name: str) -> str:
    """Select the process-wide kernel backend; returns the previous one.

    ``"numpy"`` is the bit-exact reference; ``"numba"`` is the compiled
    fast path (or its bit-identical blocked-numpy fallback when numba is
    absent).  Switching backends never changes logical counters or bench
    fingerprints — only wall-clock.
    """
    global _active
    previous = _active
    _active = _validate(name)
    return previous


def get_kernel_backend() -> str:
    """The currently selected backend name."""
    return _active


def kernel_backend_info() -> dict:
    """Resolved backend state, for bench reports and diagnostics.

    ``compiled`` reports whether the *fast* implementations are actual
    machine code (numba importable) — informative even while the numpy
    backend is selected.
    """
    fast = _resolve_fast_module()
    return {
        "backend": _active,
        "compiled": bool(fast.COMPILED),
        "fast_module": fast.__name__.rsplit(".", 1)[-1],
    }


def batch_l2_rows(points: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Backend-dispatched :func:`repro.linalg.kernels.batch_l2_rows`."""
    if _active == "numpy":
        return _reference.batch_l2_rows(points, queries)
    points = require_kernel_matrix("points", points)
    queries = require_kernel_matrix("queries", queries)
    return _resolve_fast_module().batch_l2_rows(points, queries)


def flat_l2(
    points: np.ndarray,
    positions: np.ndarray,
    queries: np.ndarray,
    query_of_entry: np.ndarray,
) -> np.ndarray:
    """Backend-dispatched :func:`repro.linalg.kernels.flat_l2`."""
    if _active == "numpy":
        return _reference.flat_l2(points, positions, queries, query_of_entry)
    points = require_kernel_matrix("points", points)
    queries = require_kernel_matrix("queries", queries)
    return _resolve_fast_module().flat_l2(
        points, positions, queries, query_of_entry
    )


def batch_mahalanobis_rows(
    points: np.ndarray,
    centroids: np.ndarray,
    chol_invs: np.ndarray,
    penalties: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Backend-dispatched fused normalized-Mahalanobis batch kernel."""
    if _active == "numpy":
        return _reference.batch_mahalanobis_rows(
            points, centroids, chol_invs, penalties
        )
    return _resolve_fast_module().batch_mahalanobis_rows(
        points, centroids, chol_invs, penalties
    )


def cold_lru_physical_reads(page_sequence: np.ndarray, capacity: int) -> int:
    """Backend-dispatched LRU cold-read model (exact integer both ways)."""
    if _active == "numpy":
        return _reference.cold_lru_physical_reads(page_sequence, capacity)
    return _resolve_fast_module().cold_lru_physical_reads(
        page_sequence, capacity
    )
