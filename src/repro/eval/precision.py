"""Query precision (§6): ground truth KNN vs KNN in the reduced spaces.

The paper defines precision as ``|R_dr ∩ R_d| / |R_d|`` where ``R_d`` is the
KNN answer computed with L2 distance in the original space and ``R_dr`` the
answer computed in the reduced subspaces.  Reduction is lossy, so reduced
distances underestimate true distances and the reduced answer drifts from
the true one; a better reduction loses less distance information and keeps
precision higher.

Reduced-space KNN semantics (matching the extended iDistance's final answer
set): for a query ``q`` and a subspace ``i`` with reference frame
``(mean_i, basis_i)``, every member ``P`` of that subspace scores
``||q_i - P_i||`` with ``q_i = (q - mean_i) · basis_i``; outliers (stored at
full dimensionality) score their exact L2 distance.  The K smallest scores
across all subspaces and the outlier set form ``R_dr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..data.workload import QueryWorkload
from ..reduction.base import ReducedDataset

__all__ = [
    "exact_knn",
    "reduced_knn",
    "precision_at_k",
    "PrecisionReport",
    "evaluate_precision",
]


def exact_knn(
    data: np.ndarray, queries: np.ndarray, k: int, batch: int = 256
) -> np.ndarray:
    """IDs of the K nearest neighbors (L2, original space) per query.

    Returns ``(n_queries, k)`` int ids, nearest first.  Batched so the
    ``(n_queries, n_points)`` distance matrix never fully materializes.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n = data.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, n)
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    d_sq = np.einsum("ij,ij->i", data, data)
    for lo in range(0, queries.shape[0], batch):
        hi = min(lo + batch, queries.shape[0])
        block = queries[lo:hi]
        dist = (
            np.einsum("ij,ij->i", block, block)[:, None]
            + d_sq[None, :]
            - 2.0 * block @ data.T
        )
        part = np.argpartition(dist, k - 1, axis=1)[:, :k]
        row_dist = np.take_along_axis(dist, part, axis=1)
        order = np.argsort(row_dist, axis=1)
        out[lo:hi] = np.take_along_axis(part, order, axis=1)
    return out


def reduced_knn(
    reduced: ReducedDataset, queries: np.ndarray, k: int
) -> np.ndarray:
    """IDs of the K nearest neighbors per query, scored in reduced spaces.

    Scores are squared distances (monotone with distances, cheaper); the
    outlier partition scores exact squared L2 since it keeps full
    dimensionality.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    nq = queries.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, reduced.n_points)

    all_ids: List[np.ndarray] = []
    all_scores: List[np.ndarray] = []
    for subspace in reduced.subspaces:
        q_proj = subspace.project(queries)  # (nq, d_r)
        p = subspace.projections  # (m, d_r)
        dist = (
            np.einsum("ij,ij->i", q_proj, q_proj)[:, None]
            + np.einsum("ij,ij->i", p, p)[None, :]
            - 2.0 * q_proj @ p.T
        )
        all_ids.append(subspace.member_ids)
        all_scores.append(dist)
    if reduced.outliers.size:
        pts = reduced.outliers.points
        dist = (
            np.einsum("ij,ij->i", queries, queries)[:, None]
            + np.einsum("ij,ij->i", pts, pts)[None, :]
            - 2.0 * queries @ pts.T
        )
        all_ids.append(reduced.outliers.member_ids)
        all_scores.append(dist)

    ids = np.concatenate(all_ids)
    scores = np.concatenate(all_scores, axis=1)
    np.clip(scores, 0.0, None, out=scores)
    part = np.argpartition(scores, k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(row_scores, axis=1)
    best_cols = np.take_along_axis(part, order, axis=1)
    return ids[best_cols].reshape(nq, k)


def precision_at_k(true_ids: np.ndarray, reduced_ids: np.ndarray) -> float:
    """Mean ``|R_dr ∩ R_d| / |R_d|`` over the query batch."""
    true_ids = np.atleast_2d(true_ids)
    reduced_ids = np.atleast_2d(reduced_ids)
    if true_ids.shape[0] != reduced_ids.shape[0]:
        raise ValueError(
            f"{true_ids.shape[0]} true rows vs "
            f"{reduced_ids.shape[0]} reduced rows"
        )
    overlaps = [
        len(set(t.tolist()) & set(r.tolist())) / max(1, t.size)
        for t, r in zip(true_ids, reduced_ids)
    ]
    return float(np.mean(overlaps))


@dataclass(frozen=True)
class PrecisionReport:
    """Precision of one reduction against one workload."""

    method: str
    precision: float
    n_queries: int
    k: int
    mean_reduced_dim: float
    n_subspaces: int
    outlier_fraction: float


def evaluate_precision(
    data: np.ndarray,
    reduced: ReducedDataset,
    workload: QueryWorkload,
) -> PrecisionReport:
    """End-to-end §6.1 measurement for one method on one dataset."""
    true_ids = exact_knn(data, workload.queries, workload.k)
    approx_ids = reduced_knn(reduced, workload.queries, workload.k)
    return PrecisionReport(
        method=reduced.method,
        precision=precision_at_k(true_ids, approx_ids),
        n_queries=workload.n_queries,
        k=workload.k,
        mean_reduced_dim=reduced.mean_reduced_dim(),
        n_subspaces=reduced.n_subspaces,
        outlier_fraction=(
            reduced.outliers.size / reduced.n_points
            if reduced.n_points
            else 0.0
        ),
    )
