"""Evaluation: precision metric, experiment harness, text reporting."""

from .harness import BatchCost, compare_index_schemes, run_query_batch
from .precision import (
    PrecisionReport,
    evaluate_precision,
    exact_knn,
    precision_at_k,
    reduced_knn,
)
from .reporting import format_series, format_table

__all__ = [
    "BatchCost",
    "PrecisionReport",
    "compare_index_schemes",
    "evaluate_precision",
    "exact_knn",
    "format_series",
    "format_table",
    "precision_at_k",
    "reduced_knn",
    "run_query_batch",
]
