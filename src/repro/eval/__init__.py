"""Evaluation: precision metric, experiment harness, text reporting."""

from .harness import (
    BatchCost,
    compare_index_schemes,
    measure_throughput,
    run_query_batch,
    run_workload,
)
from .precision import (
    PrecisionReport,
    evaluate_precision,
    exact_knn,
    precision_at_k,
    reduced_knn,
)
from .reporting import format_series, format_table

__all__ = [
    "BatchCost",
    "PrecisionReport",
    "compare_index_schemes",
    "evaluate_precision",
    "exact_knn",
    "format_series",
    "format_table",
    "measure_throughput",
    "precision_at_k",
    "reduced_knn",
    "run_query_batch",
    "run_workload",
]
