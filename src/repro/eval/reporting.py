"""Plain-text tables for experiment output.

Benchmark harnesses print the same series the paper plots; these helpers
keep that output aligned and diff-friendly (EXPERIMENTS.md embeds it
verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> str:
    """Render rows as an aligned monospace table with a header rule."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        str_rows.append([_format_cell(c) for c in row])
    widths = [
        max(len(r[col]) for r in str_rows)
        for col in range(len(headers))
    ]
    lines = []
    for idx, row in enumerate(str_rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[Cell]],
) -> str:
    """Render one figure panel: the x sweep plus one column per method."""
    headers = [x_label, *series.keys()]
    columns = [x_values, *series.values()]
    lengths = {len(col) for col in columns}
    if len(lengths) != 1:
        raise ValueError(
            f"series lengths differ: { {h: len(c) for h, c in zip(headers, columns)} }"
        )
    rows = list(zip(*columns))
    return format_table(headers, rows)
