"""Experiment runner: build indexes, run query batches, aggregate costs.

One :func:`run_query_batch` call realizes one (index scheme, dataset,
dimensionality) point of Figures 9/10: it answers every workload query on a
cold cache and averages page reads, CPU seconds and the deterministic CPU
work proxy.  :func:`compare_index_schemes` assembles the full panel the
paper plots (iMMDR, iLDR, gLDR, sequential scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.workload import QueryWorkload
from ..index.base import VectorIndex
from ..obs.tracer import Tracer, ensure_tracer
from ..index.global_ldr import GlobalLDRIndex
from ..index.idistance import ExtendedIDistance
from ..index.seqscan import SequentialScan
from ..reduction.base import ReducedDataset

__all__ = ["BatchCost", "run_query_batch", "compare_index_schemes"]


@dataclass(frozen=True)
class BatchCost:
    """Per-query averages over one workload on one index."""

    scheme: str
    mean_page_reads: float
    mean_cpu_seconds: float
    median_cpu_seconds: float
    mean_cpu_work: float
    mean_distance_computations: float
    n_queries: int
    index_pages: int


def run_query_batch(
    index: VectorIndex,
    workload: QueryWorkload,
    cold_cache: bool = True,
    collect_ids: Optional[List[np.ndarray]] = None,
    tracer: Optional[Tracer] = None,
) -> BatchCost:
    """Answer every query; return per-query cost averages.

    ``cold_cache=True`` clears the buffer pool before each query, making
    page counts per-query comparable (the paper reports per-query page
    accesses).  Pass a list as ``collect_ids`` to also receive each query's
    answer ids (for precision checks on the same run).  Pass a
    :class:`~repro.obs.Tracer` to record per-query ``knn.query`` spans
    (with nested per-phase spans, for indexes that emit them) across the
    whole batch; results are bit-identical with or without one.
    """
    tracer = ensure_tracer(tracer)
    pages: List[int] = []
    cpu: List[float] = []
    work: List[int] = []
    dists: List[int] = []
    for query in workload.queries:
        if cold_cache:
            index.reset_cache()
        result = index.knn(query, workload.k, tracer=tracer)
        pages.append(result.stats.page_reads)
        cpu.append(result.stats.cpu_seconds)
        work.append(result.stats.cpu_work)
        dists.append(result.stats.distance_computations)
        if collect_ids is not None:
            collect_ids.append(result.ids)
    return BatchCost(
        scheme=index.name,
        mean_page_reads=float(np.mean(pages)),
        mean_cpu_seconds=float(np.mean(cpu)),
        median_cpu_seconds=float(np.median(cpu)),
        mean_cpu_work=float(np.mean(work)),
        mean_distance_computations=float(np.mean(dists)),
        n_queries=workload.n_queries,
        index_pages=index.size_pages,
    )


def compare_index_schemes(
    reduced_mmdr: ReducedDataset,
    reduced_ldr: ReducedDataset,
    workload: QueryWorkload,
    include_seqscan: bool = True,
) -> Dict[str, BatchCost]:
    """The full Figure 9/10 panel at one dimensionality.

    * ``iMMDR`` — extended iDistance over the MMDR reduction,
    * ``iLDR`` — extended iDistance over the LDR reduction,
    * ``gLDR`` — one Hybrid tree per LDR cluster,
    * ``SeqScan`` — sequential scan of the LDR reduction.
    """
    builders: Dict[str, Callable[[], VectorIndex]] = {
        "iMMDR": lambda: ExtendedIDistance(reduced_mmdr),
        "iLDR": lambda: ExtendedIDistance(reduced_ldr),
        "gLDR": lambda: GlobalLDRIndex(reduced_ldr),
    }
    if include_seqscan:
        builders["SeqScan"] = lambda: SequentialScan(reduced_ldr)
    results: Dict[str, BatchCost] = {}
    for label, build in builders.items():
        index = build()
        cost = run_query_batch(index, workload)
        results[label] = BatchCost(
            scheme=label,
            mean_page_reads=cost.mean_page_reads,
            mean_cpu_seconds=cost.mean_cpu_seconds,
            median_cpu_seconds=cost.median_cpu_seconds,
            mean_cpu_work=cost.mean_cpu_work,
            mean_distance_computations=cost.mean_distance_computations,
            n_queries=cost.n_queries,
            index_pages=cost.index_pages,
        )
    return results
