"""Experiment runner: build indexes, run query batches, aggregate costs.

One :func:`run_query_batch` call realizes one (index scheme, dataset,
dimensionality) point of Figures 9/10: it answers every workload query on a
cold cache and averages page reads, CPU seconds and the deterministic CPU
work proxy.  :func:`compare_index_schemes` assembles the full panel the
paper plots (iMMDR, iLDR, gLDR, sequential scan).

Execution strategies (all bit-identical in results and per-query cost
accounting under the cold-cache protocol):

* sequential — the literal per-query loop;
* batched — :meth:`~repro.index.base.VectorIndex.knn_batch`, sharing
  vectorized work across the workload inside one process;
* parallel — ``workers=N`` splits the workload into contiguous chunks and
  runs each on its own worker (forked processes inheriting the built index
  copy-on-write, or deep-copied thread-local indexes as a fallback),
  reassembling results chunk by chunk and folding each worker's counter
  delta back into the parent index in chunk order.

The parallel path is self-healing (DESIGN.md §9): each chunk runs under an
optional per-chunk timeout, a failed or timed-out chunk is retried once on
a fresh worker pool, and chunks that fail both rounds degrade to in-process
sequential execution — so a killed fork, a hung worker, or a poisoned
executor still yields complete, correct workload results.  Every step down
the ladder is recorded in obs metrics (``harness.worker_failures``,
``harness.chunk_retries``, ``harness.degraded_chunks``).
"""

from __future__ import annotations

import concurrent.futures
import copy
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.workload import QueryWorkload
from ..index.base import QueryStats, VectorIndex
from ..obs.tracer import NULL_TRACER, Span, TraceContext, Tracer, ensure_tracer
from ..index.global_ldr import GlobalLDRIndex
from ..index.idistance import ExtendedIDistance
from ..index.seqscan import SequentialScan
from ..reduction.base import ReducedDataset
from ..storage.metrics import CostSnapshot

__all__ = [
    "BatchCost",
    "run_query_batch",
    "run_workload",
    "measure_throughput",
    "compare_index_schemes",
]


@dataclass(frozen=True)
class BatchCost:
    """Per-query averages over one workload on one index."""

    scheme: str
    mean_page_reads: float
    mean_cpu_seconds: float
    median_cpu_seconds: float
    mean_cpu_work: float
    mean_distance_computations: float
    n_queries: int
    index_pages: int


def _cost_from_stats(
    index: VectorIndex, workload: QueryWorkload, stats: List[QueryStats]
) -> BatchCost:
    return BatchCost(
        scheme=index.name,
        mean_page_reads=float(np.mean([s.page_reads for s in stats])),
        mean_cpu_seconds=float(np.mean([s.cpu_seconds for s in stats])),
        median_cpu_seconds=float(np.median([s.cpu_seconds for s in stats])),
        mean_cpu_work=float(np.mean([s.cpu_work for s in stats])),
        mean_distance_computations=float(
            np.mean([s.distance_computations for s in stats])
        ),
        n_queries=workload.n_queries,
        index_pages=index.size_pages,
    )


#: Per-chunk execution context for parallel workers.  Populated by
#: :func:`_run_parallel` immediately before the executor is created: forked
#: children inherit it copy-on-write (each child's ``indexes[i]`` is then a
#: private copy of the built index), while the thread fallback stores one
#: :func:`copy.deepcopy` clone per chunk so no two workers share counters or
#: a buffer pool.
_WORKER_STATE: Dict[str, object] = {}


def _execute_chunk(
    index: VectorIndex,
    chunk: QueryWorkload,
    use_batch: bool,
    tracer: Tracer = NULL_TRACER,
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], List[QueryStats]]:
    """Answer one contiguous workload chunk on ``index`` (cold-cache)."""
    if chunk.n_queries == 0:
        return None, None, []
    if use_batch:
        result = index.knn_batch(chunk.queries, chunk.k, tracer=tracer)
        return result.ids, result.distances, list(result.stats)
    id_rows: List[np.ndarray] = []
    dist_rows: List[np.ndarray] = []
    stats: List[QueryStats] = []
    for query in chunk.queries:
        index.reset_cache()
        res = index.knn(query, chunk.k, tracer=tracer)
        id_rows.append(res.ids)
        dist_rows.append(res.distances)
        stats.append(res.stats)
    return np.vstack(id_rows), np.vstack(dist_rows), stats


#: One chunk's shipped result: ids, distances, per-query stats, the counter
#: delta to fold back (None when the chunk ran in-process on the live
#: index), the worker tracer's spans (None when untraced), and its metric
#: records (None when untraced).
_ChunkResult = Tuple[
    Optional[np.ndarray],
    Optional[np.ndarray],
    List[QueryStats],
    Optional[CostSnapshot],
    Optional[List[Span]],
    Optional[List[dict]],
]


def _parallel_chunk(chunk_index: int) -> _ChunkResult:
    """Answer one contiguous workload chunk on this worker's index clone.

    Returns the chunk's ``(ids, distances, stats)`` plus the counter *delta*
    the chunk incurred, so the parent can fold every worker's accounting
    back into the original index in chunk order.  When the parent
    propagated a :class:`~repro.obs.tracer.TraceContext`, the chunk runs
    under a private worker tracer (rooted at a ``harness.worker_chunk``
    span) whose spans and metric records ship back alongside the answers;
    the parent grafts them into its trace via
    :meth:`~repro.obs.tracer.Tracer.adopt_spans`, so one stitched tree
    covers every worker.  An untraced run takes the exact pre-existing
    path — no tracer, no spans, nothing extra pickled.
    """
    index: VectorIndex = _WORKER_STATE["indexes"][chunk_index]
    chunk: QueryWorkload = _WORKER_STATE["chunks"][chunk_index]
    use_batch: bool = _WORKER_STATE["use_batch"]
    ctx: Optional[TraceContext] = _WORKER_STATE.get("trace")
    before = index.counters.snapshot()
    if ctx is None:
        ids, distances, stats = _execute_chunk(index, chunk, use_batch)
        delta = index.counters.snapshot() - before
        return ids, distances, stats, delta, None, None
    wtracer = Tracer(counters=index.counters, trace_id=ctx.trace_id)
    with wtracer.span(
        "harness.worker_chunk",
        chunk=chunk_index,
        queries=chunk.n_queries,
        pid=os.getpid(),
        parent_span=ctx.parent_index,
    ):
        ids, distances, stats = _execute_chunk(
            index, chunk, use_batch, tracer=wtracer
        )
    delta = index.counters.snapshot() - before
    return (
        ids,
        distances,
        stats,
        delta,
        wtracer.spans,
        wtracer.metrics.as_records(),
    )


def _run_round(
    index: VectorIndex,
    chunks: List[QueryWorkload],
    pending: List[int],
    workers: int,
    use_batch: bool,
    fork_ok: bool,
    timeout_s: Optional[float],
    results: Dict[int, _ChunkResult],
    trace_ctx: Optional[TraceContext] = None,
) -> Dict[int, str]:
    """Run the ``pending`` chunk indexes on a fresh worker pool.

    Successful chunks land in ``results``; the return value maps each
    chunk that failed (worker exception, killed worker / broken pool, or
    per-chunk timeout) to a failure reason — those chunks are still owed
    an answer, and the reason survives to the degraded chunk's span so a
    stitched trace shows *why* a chunk left the parallel path.  A fresh
    executor per round matters: one SIGKILLed fork poisons its whole
    ``ProcessPoolExecutor``, so retries must not reuse it.
    """
    if fork_ok:
        _WORKER_STATE["indexes"] = {ci: index for ci in pending}
    else:
        _WORKER_STATE["indexes"] = {
            ci: copy.deepcopy(index) for ci in pending
        }
    _WORKER_STATE["chunks"] = {ci: chunks[ci] for ci in pending}
    _WORKER_STATE["use_batch"] = use_batch
    _WORKER_STATE["trace"] = trace_ctx
    if fork_ok:
        ctx = multiprocessing.get_context("fork")
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx
        )
    else:
        executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers
        )
    failed: Dict[int, str] = {}
    timed_out = False
    try:
        futures = {
            ci: executor.submit(_parallel_chunk, ci) for ci in pending
        }
        done, not_done = concurrent.futures.wait(
            futures.values(), timeout=timeout_s
        )
        for ci, future in futures.items():
            if future in not_done:
                timed_out = True
                future.cancel()
                failed[ci] = "timeout"
                continue
            try:
                results[ci] = future.result()
            except Exception as exc:
                # Worker raised, or the pool broke (killed fork): the chunk
                # is retried / degraded by the caller.
                failed[ci] = type(exc).__name__
    finally:
        if timed_out and fork_ok:
            # A hung fork never drains; reap it so shutdown cannot block.
            for proc in list(getattr(executor, "_processes", {}).values()):
                proc.terminate()
        executor.shutdown(wait=fork_ok and not timed_out, cancel_futures=True)
        _WORKER_STATE.clear()
    return failed


def _run_parallel(
    index: VectorIndex,
    workload: QueryWorkload,
    workers: int,
    use_batch: bool,
    tracer: Tracer,
    timeout_s: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
    """Split the workload into ``workers`` contiguous chunks and answer each
    on its own worker, reassembling everything in workload order.

    Workers are forked processes when the platform supports ``fork`` (the
    built index is inherited copy-on-write — no serialization of the page
    store), else threads over deep-copied clones.  Either way each worker
    owns a private buffer pool and counter set, so per-query cold-cache
    accounting is bit-identical to a sequential run; the deltas are folded
    into the parent index's counters chunk by chunk, which keeps the final
    counter state deterministic for a given worker count.

    Degradation ladder: chunks that fail their first round (exception,
    killed worker, timeout past ``timeout_s``) are retried once on a fresh
    pool; chunks that fail again run sequentially in-process — the answers
    are bit-identical on every rung, only wall-clock suffers.  The ladder
    is observable via ``harness.worker_failures`` / ``harness.chunk_retries``
    / ``harness.degraded_chunks`` counters on the tracer's metrics.

    With a real ``tracer``, the run produces one *stitched* trace: each
    worker records its chunk under a private tracer (propagated via
    :class:`~repro.obs.tracer.TraceContext`) whose spans and metrics ship
    back with the chunk's answers and are grafted under this call's
    ``knn.parallel`` span in chunk order, with per-worker attribution;
    degraded chunks appear as ``harness.degraded_chunk`` spans carrying
    the failure reason that forced them off the parallel path.
    """
    chunks = workload.chunks(workers)
    fork_ok = "fork" in multiprocessing.get_all_start_methods()
    results: Dict[int, _ChunkResult] = {}
    pending = list(range(len(chunks)))
    reasons: Dict[int, str] = {}
    with tracer.span(
        "knn.parallel",
        scheme=index.name,
        workers=workers,
        n_queries=workload.n_queries,
        fork=fork_ok,
        timeout_s=timeout_s,
    ) as span:
        trace_ctx = (
            TraceContext(tracer.trace_id, span.index)
            if tracer.enabled
            else None
        )
        for round_idx in range(2):
            if not pending:
                break
            if round_idx > 0:
                tracer.counter("harness.chunk_retries").inc(len(pending))
            failed = _run_round(
                index,
                chunks,
                pending,
                workers,
                use_batch,
                fork_ok,
                timeout_s,
                results,
                trace_ctx=trace_ctx,
            )
            if failed:
                tracer.counter("harness.worker_failures").inc(len(failed))
                reasons.update(failed)
            pending = sorted(failed)
        if pending:
            # Last rung: sequential in-process execution of the survivors.
            # The live index's counters advance directly here, so these
            # chunks carry no delta to fold back in.  Each degraded chunk
            # runs under its own span (carrying the failure reason that
            # pushed it off the parallel path), so its queries' spans are
            # rooted in the stitched trace like any worker's.
            tracer.counter("harness.degraded_chunks").inc(len(pending))
            for ci in pending:
                with tracer.span(
                    "harness.degraded_chunk",
                    counters=index.counters,
                    chunk=ci,
                    queries=chunks[ci].n_queries,
                    reason=reasons.get(ci, "unknown"),
                ):
                    ids, distances, chunk_stats = _execute_chunk(
                        index, chunks[ci], use_batch, tracer=tracer
                    )
                results[ci] = (ids, distances, chunk_stats, None, None, None)
        if tracer.enabled:
            span.set(degraded_chunks=len(pending))
    id_rows: List[np.ndarray] = []
    dist_rows: List[np.ndarray] = []
    stats: List[QueryStats] = []
    for ci in range(len(chunks)):
        ids, distances, chunk_stats, delta, spans, metric_records = (
            results[ci]
        )
        if delta is not None:
            index.counters.merge(delta)
        if spans:
            tracer.adopt_spans(spans, parent=span, worker=ci)
        if metric_records:
            tracer.metrics.merge_records(metric_records)
        if ids is None:
            continue
        id_rows.append(ids)
        dist_rows.append(distances)
        stats.extend(chunk_stats)
    if not id_rows:
        return (
            np.empty((0, 0), dtype=np.int64),
            np.empty((0, 0), dtype=np.float64),
            [],
        )
    return np.vstack(id_rows), np.vstack(dist_rows), stats


def run_query_batch(
    index: VectorIndex,
    workload: QueryWorkload,
    cold_cache: bool = True,
    collect_ids: Optional[List[np.ndarray]] = None,
    tracer: Optional[Tracer] = None,
    workers: int = 1,
    use_batch: bool = False,
    worker_timeout_s: Optional[float] = None,
) -> BatchCost:
    """Answer every query; return per-query cost averages.

    ``cold_cache=True`` clears the buffer pool before each query, making
    page counts per-query comparable (the paper reports per-query page
    accesses).  Pass a list as ``collect_ids`` to also receive each query's
    answer ids (for precision checks on the same run).  Pass a
    :class:`~repro.obs.Tracer` to record per-query ``knn.query`` spans
    (with nested per-phase spans, for indexes that emit them) across the
    whole batch; results are bit-identical with or without one.

    ``use_batch=True`` routes through :meth:`VectorIndex.knn_batch` (the
    shared-scan fast path where the index provides one), and ``workers > 1``
    splits the workload across parallel workers — both return the same ids,
    distances and per-query page/distance accounting as the default
    per-query loop, bit for bit; only wall-clock attribution differs (batch
    wall time is apportioned equally across its queries).  Both accelerated
    routes require the cold-cache protocol, since a warm cache's hit pattern
    depends on cross-query page interleaving that a shared or split scan
    would change.  ``worker_timeout_s`` bounds each parallel round; chunks
    that outlive it walk the degradation ladder (retry, then in-process).
    """
    tracer = ensure_tracer(tracer)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1 or use_batch:
        if not cold_cache:
            raise ValueError(
                "batched/parallel execution requires cold_cache=True: "
                "warm-cache accounting depends on cross-query page "
                "interleaving that a shared or split scan would change"
            )
        if workers > 1:
            ids, _, stats = _run_parallel(
                index, workload, workers, use_batch, tracer,
                timeout_s=worker_timeout_s,
            )
        else:
            result = index.knn_batch(
                workload.queries, workload.k, tracer=tracer
            )
            ids, stats = result.ids, list(result.stats)
        if collect_ids is not None:
            collect_ids.extend(ids[i] for i in range(ids.shape[0]))
        return _cost_from_stats(index, workload, stats)
    stats = []
    for query in workload.queries:
        if cold_cache:
            index.reset_cache()
        result = index.knn(query, workload.k, tracer=tracer)
        stats.append(result.stats)
        if collect_ids is not None:
            collect_ids.append(result.ids)
    return _cost_from_stats(index, workload, stats)


def run_workload(
    index: VectorIndex,
    workload: QueryWorkload,
    workers: int = 1,
    use_batch: bool = True,
    tracer: Optional[Tracer] = None,
    worker_timeout_s: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
    """Full-results companion to :func:`run_query_batch`: the ``(Q, k)``
    ids/distances matrices plus per-query stats, under the same routing
    (``workers``/``use_batch``) and the cold-cache protocol.

    ``worker_timeout_s`` bounds each parallel round: chunks still running
    when it expires are treated as failed and walk the degradation ladder
    (retry once on a fresh pool, then in-process sequential execution).

    Exists for callers that need the actual answers — equivalence tests,
    precision evaluation, the throughput benchmark — rather than cost
    averages.
    """
    tracer = ensure_tracer(tracer)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        return _run_parallel(
            index, workload, workers, use_batch, tracer,
            timeout_s=worker_timeout_s,
        )
    if use_batch:
        result = index.knn_batch(workload.queries, workload.k, tracer=tracer)
        return result.ids, result.distances, list(result.stats)
    id_rows: List[np.ndarray] = []
    dist_rows: List[np.ndarray] = []
    stats: List[QueryStats] = []
    for query in workload.queries:
        index.reset_cache()
        res = index.knn(query, workload.k, tracer=tracer)
        id_rows.append(res.ids)
        dist_rows.append(res.distances)
        stats.append(res.stats)
    if not id_rows:
        return (
            np.empty((0, 0), dtype=np.int64),
            np.empty((0, 0), dtype=np.float64),
            [],
        )
    return np.vstack(id_rows), np.vstack(dist_rows), stats


def measure_throughput(
    index: VectorIndex,
    workload: QueryWorkload,
    workers: int = 2,
    repeats: int = 1,
    tracer: Optional[Tracer] = None,
) -> Dict[str, float]:
    """Time the three execution strategies on one workload and verify they
    agree.

    Runs the sequential per-query loop, the batched fast path and the
    ``workers``-way parallel path ``repeats`` times each (best-of timing,
    which filters scheduler noise), asserts the accelerated routes return
    exactly the sequential ids and distances, and returns queries/second
    for each plus the batch speedup — the schema ``BENCH_throughput.json``
    records.  A real ``tracer`` also gets the ``knn.batch_speedup`` gauge.
    """
    tracer = ensure_tracer(tracer)
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    n = workload.n_queries

    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return time.perf_counter() - start, out

    def sequential() -> Tuple[np.ndarray, np.ndarray]:
        id_rows, dist_rows = [], []
        for query in workload.queries:
            index.reset_cache()
            res = index.knn(query, workload.k)
            id_rows.append(res.ids)
            dist_rows.append(res.distances)
        return np.vstack(id_rows), np.vstack(dist_rows)

    def batched() -> Tuple[np.ndarray, np.ndarray]:
        res = index.knn_batch(workload.queries, workload.k)
        return res.ids, res.distances

    def parallel() -> Tuple[np.ndarray, np.ndarray]:
        ids, distances, _ = _run_parallel(
            index, workload, workers, True, ensure_tracer(None)
        )
        return ids, distances

    # Interleave the strategies round by round (rather than timing each in
    # its own phase) so transient machine load hits them alike; best-of
    # then filters the noisy rounds for all three symmetrically.
    t_seq = t_batch = t_par = np.inf
    seq_out = batch_out = par_out = None
    for _ in range(repeats):
        t, out = timed(sequential)
        if t < t_seq:
            t_seq, seq_out = t, out
        t, out = timed(batched)
        if t < t_batch:
            t_batch, batch_out = t, out
        t, out = timed(parallel)
        if t < t_par:
            t_par, par_out = t, out
    seq_ids, seq_dists = seq_out
    batch_ids, batch_dists = batch_out
    par_ids, par_dists = par_out
    if not np.array_equal(seq_ids, batch_ids):
        raise AssertionError("knn_batch ids diverge from sequential knn")
    if not np.array_equal(seq_dists, batch_dists):
        raise AssertionError(
            "knn_batch distances diverge from sequential knn"
        )
    if not np.array_equal(seq_ids, par_ids):
        raise AssertionError("parallel ids diverge from sequential knn")
    if not np.array_equal(seq_dists, par_dists):
        raise AssertionError("parallel distances diverge from sequential knn")
    qps_sequential = n / t_seq
    qps_batch = n / t_batch
    qps_parallel = n / t_par
    speedup = qps_batch / qps_sequential
    if tracer.enabled:
        tracer.gauge("knn.batch_speedup").set(speedup)
    return {
        "qps_sequential": qps_sequential,
        "qps_batch": qps_batch,
        "qps_parallel": qps_parallel,
        "speedup_batch": speedup,
    }


def compare_index_schemes(
    reduced_mmdr: ReducedDataset,
    reduced_ldr: ReducedDataset,
    workload: QueryWorkload,
    include_seqscan: bool = True,
) -> Dict[str, BatchCost]:
    """The full Figure 9/10 panel at one dimensionality.

    * ``iMMDR`` — extended iDistance over the MMDR reduction,
    * ``iLDR`` — extended iDistance over the LDR reduction,
    * ``gLDR`` — one Hybrid tree per LDR cluster,
    * ``SeqScan`` — sequential scan of the LDR reduction.
    """
    builders: Dict[str, Callable[[], VectorIndex]] = {
        "iMMDR": lambda: ExtendedIDistance(reduced_mmdr),
        "iLDR": lambda: ExtendedIDistance(reduced_ldr),
        "gLDR": lambda: GlobalLDRIndex(reduced_ldr),
    }
    if include_seqscan:
        builders["SeqScan"] = lambda: SequentialScan(reduced_ldr)
    results: Dict[str, BatchCost] = {}
    for label, build in builders.items():
        index = build()
        cost = run_query_batch(index, workload)
        results[label] = BatchCost(
            scheme=label,
            mean_page_reads=cost.mean_page_reads,
            mean_cpu_seconds=cost.mean_cpu_seconds,
            median_cpu_seconds=cost.median_cpu_seconds,
            mean_cpu_work=cost.mean_cpu_work,
            mean_distance_computations=cost.mean_distance_computations,
            n_queries=cost.n_queries,
            index_pages=cost.index_pages,
        )
    return results
