"""Generational index storage with an atomic, crash-consistent swap.

A :class:`GenerationStore` lays a root directory out as::

    root/
      CURRENT              # the pointer: "<generation>\\n<crc32>\\n"
      oplog.log            # the pipeline's durable mutation stream
      gen-000001/
        points.npy         # the generation's bulk matrix (original space)
        rid_map.npy        # local row -> global rid (int64)
        ckpt/              # repro.persist snapshot (generation-stamped)
        wal.log            # WAL whose CHECKPOINT names ckpt/ + generation
        GENERATION.json    # generation manifest (self-checksummed)
      gen-000002/ ...

The **swap protocol** (DESIGN.md §15) is build → swap → truncate:

1. *build* — the next generation's directory is written in full next to
   the live one.  Nothing references it yet, so any crash here leaves the
   published generation untouched and the partial directory is garbage.
2. *swap* — ``CURRENT`` is replaced via write-temp-then-``os.replace``,
   the single atomic commit point.  Before the replace the old generation
   is current; after it the new one is.  There is no in-between.
3. *truncate* — the superseded generation's files and the baked oplog
   prefix are removed.  The new generation is already published, so a
   crash mid-truncate only leaves unreferenced garbage for
   :meth:`collect_garbage` to finish on the next open.

Every physical write of that sequence funnels through :meth:`guarded`,
which counts it on ``physical_writes`` and consults an armed
:class:`SwapCrashPoint` — the same deterministic-sweep idiom as the
page-level :class:`~repro.storage.faults.CrashPoint`, lifted to file
granularity.  ``repro.ingest.sweep`` uses it to prove that a crash at
*any* write recovers to exactly the old or the new generation.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, TypeVar, Union

import numpy as np

from ..index.base import VectorIndex
from ..persist.snapshot import save_index
from ..recovery.recover import RecoveryReport, recover
from ..storage.faults import CrashError
from ..storage.wal import WriteAheadLog

__all__ = [
    "CURRENT_NAME",
    "GEN_MANIFEST_NAME",
    "OPLOG_NAME",
    "POINTS_NAME",
    "RID_MAP_NAME",
    "SNAPSHOT_NAME",
    "WAL_NAME",
    "GenerationError",
    "GenerationMissingError",
    "GenerationStore",
    "SwapCrashPoint",
]

CURRENT_NAME = "CURRENT"
OPLOG_NAME = "oplog.log"
GEN_MANIFEST_NAME = "GENERATION.json"
POINTS_NAME = "points.npy"
RID_MAP_NAME = "rid_map.npy"
SNAPSHOT_NAME = "ckpt"
WAL_NAME = "wal.log"

_T = TypeVar("_T")


class GenerationError(RuntimeError):
    """Base class for generational-store failures."""


class GenerationMissingError(GenerationError):
    """The store has no published generation (``CURRENT`` absent or the
    directory it names is gone) — nothing to load."""


class SwapCrashPoint:
    """Deterministic crash schedule over a build-swap-truncate sequence.

    ``at_write`` is 1-based and counts every physical file operation the
    sequence performs through :meth:`GenerationStore.guarded`; ``phase``
    selects whether the power dies just *before* or just *after* that
    operation takes effect, so a sweep over ``(phase, at_write)`` covers
    both torn sides of every write.
    """

    __slots__ = ("at_write", "phase", "fired")

    PHASES = ("before", "after")

    def __init__(self, at_write: int, phase: str = "after") -> None:
        if at_write < 1:
            raise ValueError(f"at_write must be >= 1, got {at_write}")
        if phase not in self.PHASES:
            raise ValueError(
                f"phase must be one of {self.PHASES}, got {phase!r}"
            )
        self.at_write = int(at_write)
        self.phase = phase
        self.fired = False

    def __repr__(self) -> str:
        return f"SwapCrashPoint(at_write={self.at_write}, phase={self.phase})"


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _canonical_manifest_bytes(manifest: dict) -> bytes:
    body = {k: v for k, v in manifest.items() if k != "manifest_crc32"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


class GenerationStore:
    """Owns the generational directory layout and the swap protocol.

    The store itself is mechanism, not policy: it writes, publishes,
    loads, and garbage-collects generations.  What goes *into* a
    generation (the rebuilt index, its bulk matrix, the oplog watermark)
    is the :class:`~repro.ingest.pipeline.IngestPipeline`'s business.
    """

    def __init__(
        self,
        root: Union[str, Path],
        crashpoint: Optional[SwapCrashPoint] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.crashpoint = crashpoint
        #: Physical file operations performed through :meth:`guarded`
        #: since construction (the crashpoint's clock).
        self.physical_writes = 0

    # -- crash-guarded physical writes ----------------------------------

    def _crash_if(self, phase: str, write_no: int, label: str) -> None:
        cp = self.crashpoint
        if cp is not None and cp.phase == phase and write_no == cp.at_write:
            cp.fired = True
            raise CrashError(
                f"simulated crash at swap write {write_no} ({phase} "
                f"{label})"
            )

    def guarded(self, label: str, action: Callable[[], _T]) -> _T:
        """Run one physical file operation under the crashpoint clock."""
        self.physical_writes += 1
        n = self.physical_writes
        self._crash_if("before", n, label)
        result = action()
        self._crash_if("after", n, label)
        return result

    # -- layout ----------------------------------------------------------

    def gen_dir(self, generation: int) -> Path:
        return self.root / f"gen-{generation:06d}"

    @property
    def current_path(self) -> Path:
        return self.root / CURRENT_NAME

    @property
    def oplog_path(self) -> Path:
        return self.root / OPLOG_NAME

    def list_generations(self) -> List[int]:
        """Every generation directory present on disk, published or not."""
        found = []
        for entry in self.root.iterdir():
            if entry.is_dir() and entry.name.startswith("gen-"):
                try:
                    found.append(int(entry.name[4:]))
                except ValueError:
                    continue
        return sorted(found)

    def read_current(self) -> Optional[int]:
        """The published generation number, or ``None`` when nothing has
        been published.  A torn or checksum-failing pointer raises
        :class:`GenerationError` — ``CURRENT`` is replaced atomically, so
        that is corruption, not a crash artifact."""
        path = self.current_path
        if not path.is_file():
            return None
        lines = path.read_text().splitlines()
        if len(lines) != 2:
            raise GenerationError(
                f"{path} is malformed ({len(lines)} lines, expected 2)"
            )
        body, recorded = lines
        if _crc32(body.encode()) != int(recorded):
            raise GenerationError(f"{path} failed its checksum")
        return int(body)

    # -- build ------------------------------------------------------------

    def install(
        self,
        index: VectorIndex,
        points: np.ndarray,
        rid_map: np.ndarray,
        generation: int,
        ingest_seq: int,
        parent: Optional[int] = None,
        meta: Optional[dict] = None,
    ) -> Path:
        """Write generation ``generation``'s directory in full (protocol
        step 1: *build*).  Unreferenced until :meth:`publish`; every file
        lands through :meth:`guarded`."""
        gdir = self.gen_dir(generation)
        self.guarded(
            "gen_dir", lambda: gdir.mkdir(parents=True, exist_ok=True)
        )
        self.guarded(
            "points",
            lambda: np.save(
                gdir / POINTS_NAME,
                np.ascontiguousarray(points, dtype=np.float64),
            ),
        )
        self.guarded(
            "rid_map",
            lambda: np.save(
                gdir / RID_MAP_NAME,
                np.ascontiguousarray(rid_map, dtype=np.int64),
            ),
        )
        self.guarded(
            "snapshot",
            lambda: save_index(
                index, gdir / SNAPSHOT_NAME, generation=generation
            ),
        )

        def _write_wal() -> None:
            wal = WriteAheadLog(gdir / WAL_NAME)
            try:
                wal.checkpoint(
                    gdir / SNAPSHOT_NAME,
                    truncate=True,
                    generation=generation,
                    extra={"ingest_seq": int(ingest_seq)},
                )
            finally:
                wal.close()

        self.guarded("wal", _write_wal)

        manifest = {
            "generation": int(generation),
            "parent": None if parent is None else int(parent),
            "scheme": getattr(index, "name", type(index).__name__),
            "n_points": int(rid_map.size),
            "ingest_seq": int(ingest_seq),
        }
        if meta:
            manifest["meta"] = meta
        manifest["manifest_crc32"] = _crc32(
            _canonical_manifest_bytes(manifest)
        )
        self.guarded(
            "gen_manifest",
            lambda: (gdir / GEN_MANIFEST_NAME).write_text(
                json.dumps(manifest, sort_keys=True, indent=2) + "\n"
            ),
        )
        return gdir

    def read_manifest(self, generation: int) -> dict:
        path = self.gen_dir(generation) / GEN_MANIFEST_NAME
        if not path.is_file():
            raise GenerationError(f"no generation manifest at {path}")
        try:
            manifest = json.loads(path.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            raise GenerationError(
                f"generation manifest {path} is not parseable: {exc}"
            ) from exc
        recorded = manifest.get("manifest_crc32")
        if not isinstance(recorded, int) or _crc32(
            _canonical_manifest_bytes(manifest)
        ) != recorded:
            raise GenerationError(
                f"generation manifest {path} failed its checksum"
            )
        return manifest

    def is_complete(self, generation: int) -> bool:
        """A generation directory is complete iff its manifest landed
        (the manifest is the last file :meth:`install` writes)."""
        try:
            self.read_manifest(generation)
        except GenerationError:
            return False
        return True

    # -- swap --------------------------------------------------------------

    def publish(self, generation: int) -> None:
        """Protocol step 2: atomically repoint ``CURRENT``.

        The temp-file write and the ``os.replace`` are separate guarded
        writes — a crash between them leaves the old pointer fully intact,
        a crash after the replace leaves the new one; POSIX rename
        atomicity guarantees there is no third state.
        """
        if not self.is_complete(generation):
            raise GenerationError(
                f"refusing to publish incomplete generation {generation}"
            )
        body = str(int(generation))
        content = f"{body}\n{_crc32(body.encode())}\n"
        tmp = self.current_path.with_suffix(".tmp")
        self.guarded("current_tmp", lambda: tmp.write_text(content))
        self.guarded(
            "current_replace", lambda: os.replace(tmp, self.current_path)
        )

    # -- truncate ----------------------------------------------------------

    def _remove_tree(self, path: Path, guard: bool) -> None:
        """Remove a directory file-by-file; each unlink is its own guarded
        write when ``guard`` (the truncate step of a live swap), unguarded
        during opportunistic GC at open time."""
        if not path.exists():
            return
        for child in sorted(path.iterdir()):
            if child.is_dir():
                self._remove_tree(child, guard)
            elif guard:
                self.guarded(f"unlink:{child.name}", child.unlink)
            else:
                child.unlink()
        if guard:
            self.guarded(f"rmdir:{path.name}", path.rmdir)
        else:
            path.rmdir()

    def truncate(self, keep: int) -> List[int]:
        """Protocol step 3: drop every generation except ``keep``.

        Only callable once ``keep`` is the published generation; removal
        order (oldest first, file by file) does not matter for
        correctness — nothing references these directories any more.
        """
        current = self.read_current()
        if current != keep:
            raise GenerationError(
                f"truncate(keep={keep}) but CURRENT is {current}; "
                "publish before truncating"
            )
        removed = []
        for generation in self.list_generations():
            if generation == keep:
                continue
            self._remove_tree(self.gen_dir(generation), guard=True)
            removed.append(generation)
        tmp = self.current_path.with_suffix(".tmp")
        if tmp.exists():
            self.guarded("unlink:current_tmp", tmp.unlink)
        return removed

    # -- open / recovery ---------------------------------------------------

    def collect_garbage(self) -> List[int]:
        """Remove unreferenced generation directories: half-built ones a
        crash left before publish, and superseded ones a crash left
        mid-truncate.  Never touches the published generation."""
        current = self.read_current()
        removed = []
        for generation in self.list_generations():
            if generation == current:
                continue
            self._remove_tree(self.gen_dir(generation), guard=False)
            removed.append(generation)
        tmp = self.current_path.with_suffix(".tmp")
        if tmp.exists():
            tmp.unlink()
        return removed

    def load_current(
        self,
    ) -> Tuple[VectorIndex, np.ndarray, np.ndarray, dict, RecoveryReport]:
        """Load the published generation through real WAL recovery.

        Returns ``(index, points, rid_map, manifest, recovery_report)``;
        the index comes back WAL-detached, exactly as
        :func:`repro.recovery.recover` leaves it.
        """
        current = self.read_current()
        if current is None:
            raise GenerationMissingError(
                f"{self.root} has no published generation"
            )
        gdir = self.gen_dir(current)
        if not gdir.is_dir():
            raise GenerationMissingError(
                f"CURRENT names generation {current} but {gdir} is gone"
            )
        manifest = self.read_manifest(current)
        index, report = recover(gdir / WAL_NAME)
        points = np.load(gdir / POINTS_NAME)
        rid_map = np.load(gdir / RID_MAP_NAME)
        return index, points, rid_map, manifest, report
