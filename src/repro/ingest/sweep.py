"""Crashpoint sweep over the generational build → swap → truncate sequence.

The contract under test (ISSUE: crash-consistent reorganization): kill the
process at **any** physical write of the swap protocol and a subsequent
:meth:`~repro.ingest.pipeline.IngestPipeline.open` must recover to exactly
the old generation or exactly the new one — a batch-KNN fingerprint equal
to the pre-swap fingerprint or the post-swap fingerprint, never anything
else.  "Anything else" is what a hybrid state (new snapshot + old WAL, old
matrix + new rid map, half-deleted generation directory) would produce.

:func:`swap_crash_sweep` first runs the identical workload cleanly to
learn the two legal fingerprints and the number of physical writes in the
sequence, then replays it once per ``(phase, at_write)`` crash schedule —
both torn sides of every write — recovering and fingerprinting each time.
This mirrors :mod:`repro.recovery.harness`'s per-operation WAL sweep one
level up the stack: that one proves single mutations atomic, this one
proves whole-generation swaps atomic.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..bench.fingerprint import result_fingerprint
from ..reduction.base import ReducedDataset
from ..storage.faults import CrashError
from .generation import SwapCrashPoint
from .pipeline import IngestPipeline, IngestThresholds, Op

__all__ = [
    "SwapSweepOutcome",
    "SwapSweepReport",
    "batch_fingerprint",
    "swap_crash_sweep",
]


def batch_fingerprint(ids: np.ndarray, distances: np.ndarray) -> str:
    """Order-insensitive fingerprint of a batch-KNN answer: each row is
    canonicalized by ``(distance, id)`` before hashing, so legal tie
    reorderings collapse to one digest (same canon as the serve router)."""
    ids = np.atleast_2d(np.asarray(ids))
    distances = np.atleast_2d(np.asarray(distances))
    order = np.lexsort((ids, distances), axis=-1)
    return result_fingerprint(
        np.take_along_axis(ids, order, axis=-1),
        np.take_along_axis(distances, order, axis=-1),
    )


@dataclass(frozen=True)
class SwapSweepOutcome:
    """One crash schedule's verdict."""

    phase: str
    at_write: int
    #: "old" | "new" — which legal generation recovery landed on.
    recovered_to: str
    generation: int
    ops_replayed: int


@dataclass(frozen=True)
class SwapSweepReport:
    """Verdicts for every schedule in one sweep (all of them legal, or the
    sweep raised)."""

    scheme: str
    swap_writes: int
    pre_fingerprint: str
    post_fingerprint: str
    outcomes: Tuple[SwapSweepOutcome, ...]

    @property
    def schedules(self) -> int:
        return len(self.outcomes)

    @property
    def recovered_old(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered_to == "old")

    @property
    def recovered_new(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered_to == "new")

    def summary(self) -> str:
        return (
            f"{self.scheme}: {self.schedules} crash schedules over "
            f"{self.swap_writes} swap writes -> {self.recovered_old} "
            f"recovered to the old generation, {self.recovered_new} to "
            f"the new, 0 hybrids"
        )


def _run_workload(
    root: Path,
    points: np.ndarray,
    ops: Sequence[Op],
    reduce_fn: Callable[[np.ndarray], ReducedDataset],
    scheme: str,
    page_store: str,
) -> IngestPipeline:
    """Create a pipeline and push the whole mutation stream through it
    (reorganization strictly manual — the sweep owns the swap timing)."""
    pipeline, _ = IngestPipeline.create(
        root,
        points,
        reduce_fn,
        scheme,
        thresholds=IngestThresholds(
            drift_score=float("inf"),
            delta_fraction=float("inf"),
            tombstone_fraction=float("inf"),
        ),
        auto_reorg=False,
        page_store=page_store,
    )
    for op in ops:
        pipeline.apply(op)
    return pipeline


def swap_crash_sweep(
    root: Union[str, Path],
    points: np.ndarray,
    ops: Sequence[Op],
    queries: np.ndarray,
    k: int,
    reduce_fn: Callable[[np.ndarray], ReducedDataset],
    scheme: str,
    page_store: str = "memory",
    max_schedules: Optional[int] = None,
) -> SwapSweepReport:
    """Sweep every ``(phase, at_write)`` crash schedule of one reorg.

    ``reduce_fn`` must be deterministic (seeded) — the post-swap
    fingerprint is only well-defined if rebuilding the same live set
    yields the same index.  ``max_schedules`` subsamples the sweep evenly
    (both phases kept) for quick smoke runs; ``None`` sweeps every write.

    Raises ``AssertionError`` with a diagnostic if any schedule recovers
    to a fingerprint that is neither the pre- nor the post-swap one.
    """
    root = Path(root)
    queries = np.ascontiguousarray(queries, dtype=np.float64)

    # Clean probe: learn the two legal fingerprints and the write count.
    clean_dir = root / "clean"
    pipeline = _run_workload(
        clean_dir, points, ops, reduce_fn, scheme, page_store
    )
    try:
        pre = pipeline.knn_batch(queries, k)
        pre_fp = batch_fingerprint(pre.ids, pre.distances)
        reorg = pipeline.reorg()
        post = pipeline.knn_batch(queries, k)
        post_fp = batch_fingerprint(post.ids, post.distances)
    finally:
        pipeline.close()
    swap_writes = reorg.swap_writes

    schedules: List[Tuple[str, int]] = [
        (phase, w)
        for phase in SwapCrashPoint.PHASES
        for w in range(1, swap_writes + 1)
    ]
    if max_schedules is not None and len(schedules) > max_schedules:
        stride = max(1, len(schedules) // max_schedules)
        schedules = schedules[::stride]

    outcomes: List[SwapSweepOutcome] = []
    for phase, at_write in schedules:
        run_dir = root / f"crash-{phase}-{at_write:03d}"
        pipeline = _run_workload(
            run_dir, points, ops, reduce_fn, scheme, page_store
        )
        crashpoint = SwapCrashPoint(
            pipeline.store.physical_writes + at_write, phase
        )
        pipeline.store.crashpoint = crashpoint
        try:
            pipeline.reorg()
        except CrashError:
            pass
        else:  # pragma: no cover - sweep misconfiguration
            raise AssertionError(
                f"crashpoint ({phase}, {at_write}) did not fire"
            )
        finally:
            pipeline.close()
        assert crashpoint.fired

        recovered, report = IngestPipeline.open(
            run_dir,
            reduce_fn=reduce_fn,
            scheme=scheme,
            auto_reorg=False,
            page_store=page_store,
        )
        try:
            result = recovered.knn_batch(queries, k)
            fp = batch_fingerprint(result.ids, result.distances)
        finally:
            recovered.close()

        # Which generation did recovery land on?  The manifest says; the
        # fingerprint must then match that generation's legal answer.
        # (The two fingerprints often coincide — both generations index
        # the same live set exactly — so the generation number, not the
        # digest, is what discriminates old from new.)
        if report.generation == 1:
            recovered_to, expected_fp = "old", pre_fp
        elif report.generation == 2:
            recovered_to, expected_fp = "new", post_fp
        else:
            raise AssertionError(
                f"hybrid recovery at schedule ({phase}, {at_write}): "
                f"landed on unexpected generation {report.generation}"
            )
        if fp != expected_fp:
            raise AssertionError(
                f"hybrid recovery at schedule ({phase}, {at_write}): "
                f"recovered generation {report.generation} but "
                f"fingerprint {fp} != expected {expected_fp} "
                f"(pre {pre_fp}, post {post_fp})"
            )
        outcomes.append(
            SwapSweepOutcome(
                phase=phase,
                at_write=at_write,
                recovered_to=recovered_to,
                generation=report.generation,
                ops_replayed=report.ops_replayed,
            )
        )
        shutil.rmtree(run_dir, ignore_errors=True)

    return SwapSweepReport(
        scheme=scheme,
        swap_writes=swap_writes,
        pre_fingerprint=pre_fp,
        post_fingerprint=post_fp,
        outcomes=tuple(outcomes),
    )
