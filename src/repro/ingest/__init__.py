"""Continuous ingestion with drift-triggered generational reorganization.

The paper's reduction is *adaptive at build time*: MMDR fits ellipsoid
clusters to the data it is given.  A mutation stream erodes that fit —
insert residuals drag each partition's live MPE away from its bulk-load
value, deletes leave tombstones, and online inserts pile into delta
structures every query must scan.  This package closes the loop
(DESIGN.md §15):

* :class:`IngestPipeline` — routes mutation batches through the WAL'd
  insert/delete path, durably logging each op in **original space** to an
  oplog first (reduction is lossy; reorganization needs the real vectors
  back), and watches per-partition health after every batch.
* :func:`~repro.obs.health.drift_scores` thresholds + delta bloat +
  tombstone ratio decide *when* to reorganize (:class:`IngestThresholds`,
  :class:`DriftTrigger`).
* :class:`~repro.ingest.generation.GenerationStore` — *how* to
  reorganize: build the re-clustered index as a fresh on-disk
  **generation**, publish it with one atomic ``CURRENT`` replace, then
  truncate the old generation and the baked oplog prefix.  Queries never
  block (the old generation serves until the swap instant) and a crash at
  any physical write recovers to exactly the old or the new generation.
* :mod:`repro.ingest.sweep` — proves that last claim by crashing at every
  write of the sequence and fingerprint-checking recovery.

The serving layer rolls the same swap across shards one at a time
(:meth:`repro.serve.Router.rolling_swap`), draining each shard and
respawning it from the new generation while the degrade ladder routes
around it.
"""

from .generation import (
    GenerationError,
    GenerationMissingError,
    GenerationStore,
    SwapCrashPoint,
)
from .pipeline import (
    INGEST_SCHEMES,
    DriftTrigger,
    IngestError,
    IngestOpenReport,
    IngestPipeline,
    IngestThresholds,
    OpLog,
    ReorgReport,
    build_from_vectors,
    translate_ids,
)
from .sweep import (
    SwapSweepOutcome,
    SwapSweepReport,
    batch_fingerprint,
    swap_crash_sweep,
)

__all__ = [
    "INGEST_SCHEMES",
    "DriftTrigger",
    "GenerationError",
    "GenerationMissingError",
    "GenerationStore",
    "IngestError",
    "IngestOpenReport",
    "IngestPipeline",
    "IngestThresholds",
    "OpLog",
    "ReorgReport",
    "SwapCrashPoint",
    "SwapSweepOutcome",
    "SwapSweepReport",
    "batch_fingerprint",
    "build_from_vectors",
    "swap_crash_sweep",
    "translate_ids",
]
