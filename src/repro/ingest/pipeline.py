"""Streaming ingestion with drift-triggered generational reorganization.

The :class:`IngestPipeline` is the long-running-service face of the
reproduction (DESIGN.md §15).  It owns one published index generation
(:class:`~repro.ingest.generation.GenerationStore`) and absorbs mutation
batches through the existing WAL'd insert/delete path, watching
per-partition health after every batch:

* **live-MPE drift** — :func:`repro.obs.health.drift_scores`, the single
  shared definition the bench health section also reads;
* **delta-store bloat** — the fraction of live points still sitting in
  unindexed delta structures;
* **tombstone ratio** — dead entries still paying page reads.

When a :class:`DriftTrigger` fires, :meth:`reorg` re-clusters the live
point set through the configured reducer (Scalable MMDR's Ellipsoid Array
merge, §4.3, when the reducer is scalable) into a **new generation** and
swaps it in via the store's build → swap → truncate protocol: queries keep
hitting the old generation until one atomic ``CURRENT`` replace, and a
crash at any physical write recovers to exactly the old or the new
generation (proven by :mod:`repro.ingest.sweep`).

Durability model — two logs, one authority:

* the *index WAL* (per generation) makes each committed insert/delete
  crash-consistent, exactly as everywhere else in the repo;
* the *oplog* (root level) additionally records each mutation in
  **original space** — reduction is lossy, so reorganization needs the
  real vectors back.  An op is appended (and flushed) to the oplog
  *before* it touches the index; on open, any oplog suffix past the
  index's recovered watermark is replayed, so a crash between the two
  logs re-delivers the in-flight op instead of losing it.

Rid spaces: callers speak **global rids**; each generation renumbers its
bulk matrix ``0..n-1`` locally (compaction frees deleted rows), carries
``rid_map`` (local → global), and the pipeline translates ids on the way
out — the same convention as the serving layer's shard workers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..index.base import VectorIndex
from ..index.global_ldr import GlobalLDRIndex
from ..index.idistance import ExtendedIDistance
from ..index.seqscan import SequentialScan
from ..obs.health import HealthSampler, drift_scores, sample_gauges
from ..persist.snapshot import save_index
from ..reduction.base import ReducedDataset
from ..storage.mmap_store import MmapPageStore
from ..storage.wal import (
    CHECKPOINT,
    COMMIT,
    WriteAheadLog,
    _encode,
)
from .generation import (
    GenerationStore,
    SwapCrashPoint,
)

__all__ = [
    "INGEST_SCHEMES",
    "DriftTrigger",
    "IngestError",
    "IngestOpenReport",
    "IngestPipeline",
    "IngestThresholds",
    "Op",
    "OpLog",
    "ReorgReport",
    "build_from_vectors",
    "translate_ids",
]

#: One mutation: ``("insert", point, global_rid, beta)`` or
#: ``("delete", global_rid)`` — the same shape as the recovery harness's
#: workload ops, so the two test stacks share generators.
Op = Tuple

INGEST_SCHEMES: Dict[str, type] = {
    "iMMDR": ExtendedIDistance,
    "gLDR": GlobalLDRIndex,
    "SeqScan": SequentialScan,
}

#: Oplog record type (private framing namespace; the oplog reuses the
#: WAL's CRC frame codec but is not a WAL).
_OP_RECORD = 1


class IngestError(RuntimeError):
    """Invalid use of the ingestion pipeline (duplicate rid, delete of a
    dead rid, reorganization with unapplied ops, ...)."""


@dataclass(frozen=True)
class IngestThresholds:
    """Reorganization triggers; any one past its limit fires.

    Defaults mirror :data:`repro.obs.health.DEFAULT_THRESHOLDS` so an
    index the health report flags "warn" is exactly an index the pipeline
    would reorganize.
    """

    drift_score: float = 0.50
    delta_fraction: float = 0.25
    tombstone_fraction: float = 0.30


@dataclass(frozen=True)
class DriftTrigger:
    """One :meth:`IngestPipeline.check_drift` verdict."""

    fired: bool
    reasons: Tuple[str, ...]
    #: Partitions whose drift score crossed the threshold.
    partitions: Tuple[int, ...]
    #: The gauge snapshot the verdict was made on.
    gauges: Dict[str, float] = field(default_factory=dict)
    #: Per-partition drift scores (the shared definition).
    scores: Dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class IngestOpenReport:
    """What one :meth:`IngestPipeline.open` had to do."""

    generation: int
    committed_seq: int
    ops_replayed: int
    oplog_dropped: int
    generations_collected: Tuple[int, ...]
    recovery_summary: str


@dataclass(frozen=True)
class ReorgReport:
    """What one build → swap → truncate cycle did."""

    old_generation: int
    new_generation: int
    n_points: int
    swap_writes: int
    reasons: Tuple[str, ...]
    drift_before: float
    drift_after: float
    wall_seconds: float


def translate_ids(ids: np.ndarray, rid_map: np.ndarray) -> np.ndarray:
    """Local → global rid translation, preserving ``-1`` padding."""
    out = np.full_like(ids, -1)
    mask = ids >= 0
    out[mask] = rid_map[ids[mask]]
    return out


@dataclass(frozen=True)
class TranslatedResult:
    """A KNN answer in global rid space."""

    ids: np.ndarray
    distances: np.ndarray


def build_from_vectors(
    vectors: Dict[int, np.ndarray],
    reduce_fn: Callable[[np.ndarray], ReducedDataset],
    scheme: str,
    store_factory=None,
) -> Tuple[VectorIndex, np.ndarray, np.ndarray]:
    """Compact a live ``{global_rid: vector}`` set into a fresh index.

    Returns ``(index, points, rid_map)`` with rows ordered by global rid —
    the deterministic layout both :meth:`IngestPipeline.reorg` and the
    bench's fresh-reference builds use, which is what makes post-swap
    fingerprints comparable to a from-scratch build over the same
    committed mutation stream.
    """
    if scheme not in INGEST_SCHEMES:
        raise IngestError(
            f"unknown scheme {scheme!r}; expected one of "
            f"{sorted(INGEST_SCHEMES)}"
        )
    if not vectors:
        raise IngestError("cannot build a generation from zero live points")
    rid_map = np.array(sorted(vectors), dtype=np.int64)
    points = np.ascontiguousarray(
        np.stack([vectors[int(rid)] for rid in rid_map]), dtype=np.float64
    )
    reduced = reduce_fn(points)
    index = INGEST_SCHEMES[scheme](reduced, store_factory=store_factory)
    return index, points, rid_map


class OpLog:
    """Append-only durable mutation stream (CRC-framed, torn-tail safe).

    Reuses the WAL's frame codec: each record is
    ``{"seq": s, "op": op_tuple}`` with the sequence doubling as the LSN.
    Sequences are monotone across truncations — a generation manifest's
    ``ingest_seq`` watermark says which prefix is already baked into its
    bulk matrix.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.entries: List[Tuple[int, Op]] = []
        if self.path.exists():
            records, valid_bytes, torn = WriteAheadLog.scan(self.path)
            if torn:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_bytes)
            self.entries = [
                (int(r.payload["seq"]), tuple(r.payload["op"]))
                for r in records
                if r.rtype == _OP_RECORD
            ]
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.next_seq = (self.entries[-1][0] + 1) if self.entries else 1
        self._fh = open(self.path, "ab")

    def ensure_next_seq(self, floor: int) -> None:
        """Sequences must outrun every baked watermark, even after the
        log was truncated to empty."""
        self.next_seq = max(self.next_seq, floor + 1)

    def append(self, op: Op) -> int:
        seq = self.next_seq
        self.next_seq += 1
        frame = _encode(seq, 0, _OP_RECORD, {"seq": seq, "op": tuple(op)})
        self._fh.write(frame)
        self._fh.flush()
        self.entries.append((seq, tuple(op)))
        return seq

    def drop_through(self, seq: int) -> int:
        """Physically rewrite the log without entries ``<= seq`` (they are
        baked into a published generation).  Returns how many dropped."""
        keep = [(s, op) for s, op in self.entries if s > seq]
        dropped = len(self.entries) - len(keep)
        if dropped == 0:
            return 0
        self._fh.close()
        with open(self.path, "wb") as fh:
            for s, op in keep:
                fh.write(_encode(s, 0, _OP_RECORD, {"seq": s, "op": op}))
        self._fh = open(self.path, "ab")
        self.entries = keep
        return dropped

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class IngestPipeline:
    """One logical index absorbing a mutation stream across generations.

    Construct with :meth:`create` (bulk-build generation 1 and boot) or
    :meth:`open` (recover whatever a previous process — cleanly shut down
    or crashed mid-anything — left behind).
    """

    def __init__(
        self,
        store: GenerationStore,
        *,
        reduce_fn: Callable[[np.ndarray], ReducedDataset],
        scheme: str,
        thresholds: Optional[IngestThresholds] = None,
        auto_reorg: bool = True,
        page_store: str = "memory",
    ) -> None:
        if scheme not in INGEST_SCHEMES:
            raise IngestError(
                f"unknown scheme {scheme!r}; expected one of "
                f"{sorted(INGEST_SCHEMES)}"
            )
        if page_store not in ("memory", "mmap"):
            raise IngestError(
                f"page_store must be 'memory' or 'mmap', got {page_store!r}"
            )
        self.store = store
        self.reduce_fn = reduce_fn
        self.scheme = scheme
        self.thresholds = (
            thresholds if thresholds is not None else IngestThresholds()
        )
        self.auto_reorg = auto_reorg
        self.page_store = page_store
        self.sampler = HealthSampler()
        self.reorg_reports: List[ReorgReport] = []

        # Generation-scoped state, filled by _adopt_generation / open.
        self.index: Optional[VectorIndex] = None
        self.generation = 0
        self.applied_seq = 0
        self.oplog: Optional[OpLog] = None
        self._vectors: Dict[int, np.ndarray] = {}
        self._rid_of_local: List[int] = []
        self._local_of_global: Dict[int, int] = {}
        self._deleted: set = set()
        self._rid_map_cache: Optional[np.ndarray] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        root: Union[str, Path],
        points: np.ndarray,
        reduce_fn: Callable[[np.ndarray], ReducedDataset],
        scheme: str,
        *,
        thresholds: Optional[IngestThresholds] = None,
        auto_reorg: bool = True,
        page_store: str = "memory",
        crashpoint: Optional[SwapCrashPoint] = None,
    ) -> Tuple["IngestPipeline", IngestOpenReport]:
        """Bulk-build generation 1 from ``points`` (global rids
        ``0..n-1``), publish it, and boot through the recovery path —
        every pipeline start exercises recovery, as the serving layer's
        workers do."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        vectors = {i: points[i] for i in range(points.shape[0])}
        store = GenerationStore(root, crashpoint=None)
        factory = MmapPageStore if page_store == "mmap" else None
        index, matrix, rid_map = build_from_vectors(
            vectors, reduce_fn, scheme, store_factory=factory
        )
        store.install(
            index, matrix, rid_map, generation=1, ingest_seq=0, parent=None
        )
        store.publish(1)
        index.store.close()
        return cls.open(
            root,
            reduce_fn=reduce_fn,
            scheme=scheme,
            thresholds=thresholds,
            auto_reorg=auto_reorg,
            page_store=page_store,
            crashpoint=crashpoint,
        )

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        *,
        reduce_fn: Callable[[np.ndarray], ReducedDataset],
        scheme: str,
        thresholds: Optional[IngestThresholds] = None,
        auto_reorg: bool = True,
        page_store: str = "memory",
        crashpoint: Optional[SwapCrashPoint] = None,
        replay_pending: bool = True,
    ) -> Tuple["IngestPipeline", IngestOpenReport]:
        """Recover the published generation and resume the stream.

        Open-time sequence: garbage-collect unreferenced generation
        directories (crash leftovers), recover the published generation's
        index from its snapshot + WAL, drop the oplog prefix the
        generation already bakes in, then replay any oplog suffix past the
        index's committed watermark (the at-least-once redelivery of an op
        whose index commit the crash ate).
        """
        store = GenerationStore(root, crashpoint=crashpoint)
        collected = store.collect_garbage()
        index, points, rid_map, manifest, recovery = store.load_current()

        pipeline = cls(
            store,
            reduce_fn=reduce_fn,
            scheme=scheme,
            thresholds=thresholds,
            auto_reorg=auto_reorg,
            page_store=page_store,
        )
        pipeline.generation = int(manifest["generation"])
        pipeline.index = index
        pipeline._vectors = {
            int(rid_map[i]): points[i] for i in range(rid_map.size)
        }
        pipeline._rid_of_local = [int(r) for r in rid_map]
        pipeline._local_of_global = {
            int(r): i for i, r in enumerate(rid_map)
        }
        pipeline._deleted = set()

        # The index's committed watermark: the generation WAL's last
        # CHECKPOINT carries the oplog seq it captured; every COMMIT after
        # it is exactly one op.
        gdir = store.gen_dir(pipeline.generation)
        records, _, _ = WriteAheadLog.scan(gdir / "wal.log")
        base_seq = int(manifest["ingest_seq"])
        last_ckpt_lsn = 0
        for record in records:
            if record.rtype == CHECKPOINT:
                base_seq = int(
                    record.payload.get("ingest_seq", base_seq)
                )
                last_ckpt_lsn = record.lsn
        commits_after = sum(
            1
            for r in records
            if r.rtype == COMMIT and r.lsn > last_ckpt_lsn
        )
        committed_seq = base_seq + commits_after

        oplog = OpLog(store.oplog_path)
        dropped = oplog.drop_through(int(manifest["ingest_seq"]))
        oplog.ensure_next_seq(committed_seq)
        pipeline.oplog = oplog
        pipeline.applied_seq = committed_seq

        # Re-derive bookkeeping for ops the index already holds, in seq
        # order (local rid assignment must replay identically), then
        # re-apply the pending suffix through the full path.
        pending: List[Tuple[int, Op]] = []
        for seq, op in oplog.entries:
            if seq <= committed_seq:
                pipeline._bookkeep(op)
            else:
                pending.append((seq, op))

        index.enable_wal(WriteAheadLog(gdir / "wal.log"))

        replayed = 0
        if replay_pending:
            for seq, op in pending:
                pipeline._apply_to_index(op)
                pipeline._bookkeep(op)
                pipeline.applied_seq = seq
                replayed += 1

        report = IngestOpenReport(
            generation=pipeline.generation,
            committed_seq=committed_seq,
            ops_replayed=replayed,
            oplog_dropped=dropped,
            generations_collected=tuple(collected),
            recovery_summary=recovery.summary(),
        )
        return pipeline, report

    # -- rid bookkeeping ---------------------------------------------------

    @property
    def rid_map(self) -> np.ndarray:
        if self._rid_map_cache is None or self._rid_map_cache.size != len(
            self._rid_of_local
        ):
            self._rid_map_cache = np.asarray(
                self._rid_of_local, dtype=np.int64
            )
        return self._rid_map_cache

    @property
    def n_live(self) -> int:
        return len(self._vectors)

    @property
    def next_global_rid(self) -> int:
        """A fresh global rid (callers may also bring their own)."""
        ceiling = max(self._vectors, default=-1)
        if self._deleted:
            ceiling = max(ceiling, max(self._deleted))
        return ceiling + 1

    def _bookkeep(self, op: Op) -> None:
        """Track one applied op's rid-space effects (no index access)."""
        if op[0] == "insert":
            _, point, rid, _beta = op
            rid = int(rid)
            self._local_of_global[rid] = len(self._rid_of_local)
            self._rid_of_local.append(rid)
            self._vectors[rid] = np.asarray(point, dtype=np.float64)
            self._rid_map_cache = None
        elif op[0] == "delete":
            rid = int(op[1])
            self._vectors.pop(rid, None)
            self._deleted.add(rid)
        else:  # pragma: no cover - validated before logging
            raise IngestError(f"unknown op kind {op[0]!r}")

    def _apply_to_index(self, op: Op) -> None:
        """Route one op through the WAL'd insert/delete path."""
        if op[0] == "insert":
            _, point, rid, beta = op
            local = len(self._rid_of_local)
            self.index.insert(
                np.asarray(point, dtype=np.float64), local, beta=float(beta)
            )
        else:
            local = self._local_of_global[int(op[1])]
            self.index.delete(local)

    def _validate(self, op: Op) -> None:
        kind = op[0]
        if kind == "insert":
            if len(op) != 4:
                raise IngestError(
                    "insert op must be ('insert', point, rid, beta)"
                )
            rid = int(op[2])
            if rid in self._vectors:
                raise IngestError(f"insert of live global rid {rid}")
            if rid in self._deleted:
                raise IngestError(
                    f"global rid {rid} was deleted this generation; rid "
                    "reuse is forbidden until the next reorganization"
                )
        elif kind == "delete":
            rid = int(op[1])
            if rid not in self._vectors:
                raise IngestError(f"delete of non-live global rid {rid}")
        else:
            raise IngestError(f"unknown op kind {kind!r}")

    # -- the mutation path -------------------------------------------------

    def apply(self, op: Op) -> int:
        """Apply one mutation: oplog first (durable original-space copy),
        then the WAL'd index mutation.  Returns the op's sequence."""
        if self.index is None:
            raise IngestError("pipeline is not open")
        self._validate(op)
        seq = self.oplog.append(op)
        self._apply_to_index(op)
        self._bookkeep(op)
        self.applied_seq = seq
        return seq

    def apply_batch(
        self, ops: Sequence[Op], label: Optional[str] = None
    ) -> Optional[DriftTrigger]:
        """Apply a mutation batch, sample health, and — with
        ``auto_reorg`` — reorganize when the drift trigger fires.  Returns
        the trigger verdict (``None`` for an empty batch)."""
        if not ops:
            return None
        for op in ops:
            self.apply(op)
        self.sampler.sample(self.index, label=label or "ingest_batch")
        trigger = self.check_drift()
        if trigger.fired and self.auto_reorg:
            self.reorg(trigger)
        return trigger

    # -- drift monitoring --------------------------------------------------

    def check_drift(self) -> DriftTrigger:
        """Judge the live index against the thresholds (one shared drift
        definition: :func:`repro.obs.health.drift_scores`)."""
        t = self.thresholds
        scores = drift_scores(self.index)
        gauges = sample_gauges(self.index)
        reasons: List[str] = []
        partitions = tuple(
            sorted(i for i, s in scores.items() if s > t.drift_score)
        )
        if partitions:
            worst = max(scores[i] for i in partitions)
            reasons.append(
                f"mpe drift {worst:.3f} > {t.drift_score:.3f} in "
                f"partitions {list(partitions)}"
            )
        delta = gauges.get("delta_fraction", 0.0)
        if delta > t.delta_fraction:
            reasons.append(
                f"delta fraction {delta:.3f} > {t.delta_fraction:.3f}"
            )
        tombs = gauges.get("tombstone_fraction", 0.0)
        if tombs > t.tombstone_fraction:
            reasons.append(
                f"tombstone fraction {tombs:.3f} > "
                f"{t.tombstone_fraction:.3f}"
            )
        return DriftTrigger(
            fired=bool(reasons),
            reasons=tuple(reasons),
            partitions=partitions,
            gauges=gauges,
            scores=scores,
        )

    # -- reorganization ----------------------------------------------------

    def reorg(self, trigger: Optional[DriftTrigger] = None) -> ReorgReport:
        """Re-cluster the live set into a new generation and swap.

        The old generation keeps serving queries until the single atomic
        ``CURRENT`` replace; the in-memory handover afterwards is one
        reference assignment.  A crash anywhere in here leaves the store
        recoverable to exactly one generation (see
        :mod:`repro.ingest.sweep`).
        """
        if self.index is None:
            raise IngestError("pipeline is not open")
        start = time.perf_counter()
        drift_before = max(drift_scores(self.index).values(), default=0.0)
        factory = MmapPageStore if self.page_store == "mmap" else None

        # Build (out of the query path: the live index is untouched).
        new_index, matrix, rid_map = build_from_vectors(
            self._vectors, self.reduce_fn, self.scheme, store_factory=factory
        )
        new_generation = self.generation + 1
        writes_before = self.store.physical_writes
        self.store.install(
            new_index,
            matrix,
            rid_map,
            generation=new_generation,
            ingest_seq=self.applied_seq,
            parent=self.generation,
        )

        # Swap: the commit point.
        self.store.publish(new_generation)

        # Truncate: drop the baked oplog prefix and the old generation.
        old_wal = self.index.wal
        if old_wal is not None:
            self.index.disable_wal()
            old_wal.close()
        self.store.guarded(
            "oplog_truncate",
            lambda: self.oplog.drop_through(self.applied_seq),
        )
        self.store.truncate(keep=new_generation)

        # In-memory handover.
        gdir = self.store.gen_dir(new_generation)
        new_index.enable_wal(WriteAheadLog(gdir / "wal.log"))
        self.index = new_index
        self.generation = new_generation
        self._rid_of_local = [int(r) for r in rid_map]
        self._local_of_global = {
            int(r): i for i, r in enumerate(rid_map)
        }
        self._deleted = set()
        self._rid_map_cache = None

        drift_after = max(drift_scores(self.index).values(), default=0.0)
        report = ReorgReport(
            old_generation=new_generation - 1,
            new_generation=new_generation,
            n_points=int(rid_map.size),
            swap_writes=self.store.physical_writes - writes_before,
            reasons=trigger.reasons if trigger is not None else (),
            drift_before=drift_before,
            drift_after=drift_after,
            wall_seconds=time.perf_counter() - start,
        )
        self.reorg_reports.append(report)
        self.sampler.sample(self.index, label="post_reorg")
        return report

    def checkpoint(self) -> int:
        """Mid-generation checkpoint: snapshot + truncated WAL, with the
        oplog watermark stamped into the CHECKPOINT record so a later open
        can place the oplog suffix correctly."""
        if self.index is None:
            raise IngestError("pipeline is not open")
        gdir = self.store.gen_dir(self.generation)
        wal_store = self.index.disable_wal()
        if wal_store is None:
            raise IngestError("pipeline index has no WAL attached")
        try:
            save_index(
                self.index, gdir / "ckpt", generation=self.generation
            )
        finally:
            self.index.reattach_wal(wal_store)
        return wal_store.wal.checkpoint(
            gdir / "ckpt",
            truncate=True,
            generation=self.generation,
            extra={"ingest_seq": self.applied_seq},
        )

    # -- queries -----------------------------------------------------------

    def knn(self, query: np.ndarray, k: int) -> TranslatedResult:
        result = self.index.knn(query, k)
        return TranslatedResult(
            ids=translate_ids(result.ids, self.rid_map),
            distances=result.distances,
        )

    def knn_batch(self, queries: np.ndarray, k: int) -> TranslatedResult:
        result = self.index.knn_batch(queries, k)
        return TranslatedResult(
            ids=translate_ids(result.ids, self.rid_map),
            distances=result.distances,
        )

    def live_vectors(self) -> Dict[int, np.ndarray]:
        """A copy of the live ``{global_rid: vector}`` set (what a fresh
        reference build over the committed stream must reproduce)."""
        return dict(self._vectors)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release file handles; durable state needs no farewell."""
        if self.index is not None:
            wal = self.index.wal
            if wal is not None:
                self.index.disable_wal()
                wal.close()
            self.index.store.close()
        if self.oplog is not None:
            self.oplog.close()

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
