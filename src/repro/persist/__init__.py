"""Durable persistence for built indexes (DESIGN.md §9).

Building an index is the expensive part of the pipeline — reduction,
clustering, bulk loads.  This package makes the result durable:
:func:`save_index` writes a versioned, checksum-validated snapshot
directory, and :func:`load_index` restores it with every byte verified
before deserialization, so corruption is always a typed error and never a
silently wrong index.
"""

from .snapshot import (
    MANIFEST_NAME,
    SNAPSHOT_FORMAT_VERSION,
    STATE_NAME,
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotFormatError,
    load_index,
    save_index,
    snapshot_generation,
)

__all__ = [
    "MANIFEST_NAME",
    "SNAPSHOT_FORMAT_VERSION",
    "STATE_NAME",
    "SnapshotCorruptionError",
    "SnapshotError",
    "SnapshotFormatError",
    "load_index",
    "save_index",
    "snapshot_generation",
]
