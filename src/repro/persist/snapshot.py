"""Versioned, checksum-validated index snapshots.

A snapshot is a directory holding two files:

* ``state.pkl`` — the index object (page store, buffer pool, B+-tree /
  Hybrid trees / partitions including the dynamic-insert delta store, and
  the reduced dataset), serialized with pickle;
* ``manifest.json`` — the typed envelope: format version, index scheme and
  class, payload file name, payload byte count and CRC32, summary metadata,
  and a CRC32 over the manifest's own canonical JSON.

Loading verifies everything *before* deserializing: manifest self-checksum,
format version, a class allowlist (only the three known ``VectorIndex``
schemes are ever unpickled), and the payload checksum.  Any mismatch raises
:class:`SnapshotCorruptionError` — a subclass of
:class:`~repro.storage.pager.PageCorruptionError`, because a tampered
snapshot byte and a flipped page bit are the same failure: storage that no
longer matches its checksum.  A corrupted or truncated snapshot is therefore
*detected and reported*, never silently loaded into wrong query results.
"""

from __future__ import annotations

import json
import pickle
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

from ..index.base import VectorIndex
from ..index.global_ldr import GlobalLDRIndex
from ..index.idistance import ExtendedIDistance
from ..index.seqscan import SequentialScan
from ..storage.pager import PageCorruptionError

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "MANIFEST_NAME",
    "STATE_NAME",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotCorruptionError",
    "save_index",
    "load_index",
    "snapshot_generation",
]

#: Bump when the on-disk layout changes incompatibly; loaders refuse
#: versions they do not understand instead of guessing.
SNAPSHOT_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
STATE_NAME = "state.pkl"

#: The only classes a snapshot may deserialize into.  Unpickling is powerful;
#: restricting the declared class keeps a doctored manifest from steering the
#: loader somewhere surprising and gives typed errors for unknown schemes.
_KNOWN_CLASSES: Dict[str, type] = {
    "ExtendedIDistance": ExtendedIDistance,
    "GlobalLDRIndex": GlobalLDRIndex,
    "SequentialScan": SequentialScan,
}


class SnapshotError(RuntimeError):
    """Base class for snapshot save/load failures."""


class SnapshotFormatError(SnapshotError):
    """The snapshot is structurally unusable: missing files, unparsable or
    incomplete manifest, unsupported format version, or unknown scheme."""


class SnapshotCorruptionError(SnapshotError, PageCorruptionError):
    """Snapshot bytes no longer match their recorded checksums."""


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _canonical_manifest_bytes(manifest: dict) -> bytes:
    """Deterministic serialization of the manifest minus its own checksum."""
    body = {k: v for k, v in manifest.items() if k != "manifest_crc32"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def save_index(
    index: VectorIndex,
    path: Union[str, Path],
    generation: Optional[int] = None,
) -> dict:
    """Write a snapshot of ``index`` under directory ``path``.

    The directory is created if needed; an existing snapshot there is
    replaced.  Returns the manifest dict that was written.

    ``generation`` stamps the index generation this snapshot materializes
    (generational reorganization, DESIGN.md §15).  Ungenerational callers
    omit it and the manifest stays byte-identical to the pre-generation
    format.
    """
    class_name = type(index).__name__
    if class_name not in _KNOWN_CLASSES:
        raise SnapshotFormatError(
            f"cannot snapshot {class_name}: not one of the known index "
            f"schemes {sorted(_KNOWN_CLASSES)}"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    manifest = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "scheme": index.name,
        "class": class_name,
        "state_file": STATE_NAME,
        "state_bytes": len(payload),
        "state_crc32": _crc32(payload),
        "n_points": int(
            getattr(getattr(index, "reduced", None), "n_points", 0)
        ),
        "size_pages": int(index.size_pages),
    }
    if generation is not None:
        manifest["generation"] = int(generation)
    # An attached approximate-tier encoder rides inside the pickled
    # state; the manifest carries a human-readable summary.  Absent
    # when no encoder is attached, so encoder-less snapshots stay
    # byte-identical to the pre-encoder format.
    encoder = getattr(index, "encoder", None)
    if encoder is not None:
        manifest["encoder"] = encoder.describe()
    manifest["manifest_crc32"] = _crc32(
        _canonical_manifest_bytes(manifest)
    )
    (path / STATE_NAME).write_bytes(payload)
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n"
    )
    return manifest


def _read_manifest(path: Path) -> dict:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotFormatError(
            f"no snapshot manifest at {manifest_path}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path} is not parseable JSON: "
            f"{exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise SnapshotFormatError(
            f"snapshot manifest {manifest_path} is not a JSON object"
        )
    recorded = manifest.get("manifest_crc32")
    if not isinstance(recorded, int):
        raise SnapshotFormatError(
            f"snapshot manifest {manifest_path} lacks its checksum"
        )
    actual = _crc32(_canonical_manifest_bytes(manifest))
    if actual != recorded:
        raise SnapshotCorruptionError(
            f"snapshot manifest {manifest_path} failed its checksum "
            f"(stored 0x{recorded:08x}, computed 0x{actual:08x})"
        )
    return manifest


def load_index(path: Union[str, Path]) -> VectorIndex:
    """Load a snapshot saved by :func:`save_index`, verifying everything.

    Raises :class:`SnapshotFormatError` for structural problems (missing
    files, wrong version, unknown scheme) and
    :class:`SnapshotCorruptionError` when any byte of the manifest or the
    payload has changed since save.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot format version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    class_name = manifest.get("class")
    expected_class = _KNOWN_CLASSES.get(class_name)
    if expected_class is None:
        raise SnapshotFormatError(
            f"snapshot declares unknown index class {class_name!r}"
        )
    state_path = path / manifest.get("state_file", STATE_NAME)
    if not state_path.is_file():
        raise SnapshotFormatError(
            f"snapshot payload {state_path} is missing"
        )
    payload = state_path.read_bytes()
    if len(payload) != manifest.get("state_bytes"):
        raise SnapshotCorruptionError(
            f"snapshot payload {state_path} is "
            f"{len(payload)} bytes; manifest records "
            f"{manifest.get('state_bytes')}"
        )
    actual = _crc32(payload)
    if actual != manifest.get("state_crc32"):
        raise SnapshotCorruptionError(
            f"snapshot payload {state_path} failed its checksum "
            f"(stored 0x{manifest.get('state_crc32'):08x}, "
            f"computed 0x{actual:08x})"
        )
    try:
        index = pickle.loads(payload)
    except Exception as exc:  # checksum passed, so this is a format bug
        raise SnapshotFormatError(
            f"snapshot payload {state_path} does not deserialize: {exc}"
        ) from exc
    if not isinstance(index, expected_class):
        raise SnapshotFormatError(
            f"snapshot payload holds {type(index).__name__}, manifest "
            f"declares {class_name}"
        )
    return index


def snapshot_generation(path: Union[str, Path]) -> Optional[int]:
    """The generation a snapshot's manifest declares, or ``None`` for a
    snapshot written without one (pre-generation format, still loadable).

    Validates the manifest's self-checksum first, so a doctored generation
    field raises :class:`SnapshotCorruptionError` rather than steering a
    generational recovery somewhere surprising.
    """
    manifest = _read_manifest(Path(path))
    generation = manifest.get("generation")
    if generation is None:
        return None
    if not isinstance(generation, int) or isinstance(generation, bool):
        raise SnapshotFormatError(
            f"snapshot {path} declares non-integer generation "
            f"{generation!r}"
        )
    return generation
