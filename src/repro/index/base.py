"""Common index API and per-query statistics.

Figures 9 and 10 compare three indexing schemes (iMMDR, iLDR, gLDR) plus a
sequential scan, reporting page accesses and CPU time per KNN query.  Every
index here is built from a :class:`~repro.reduction.base.ReducedDataset`,
owns a simulated page store + buffer pool, and answers
:meth:`VectorIndex.knn` with both the neighbor ids and a
:class:`QueryStats` diff of its cost counters around the search.

Distances: the search metric is L2 (the paper uses L2 for searching;
Mahalanobis is only for *discovering* the ellipsoids).  Distances within a
subspace are computed between reduced representations in that subspace's
axis system; outliers use full-dimensional L2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer
from ..storage.buffer import BufferPool
from ..storage.metrics import CostCounters, CostSnapshot
from ..storage.pager import PageStore

__all__ = ["QueryStats", "KNNResult", "VectorIndex"]

#: Default buffer pool size (pages).  512 pages = 2 MiB: large enough that a
#: single query's working set fits, small enough that one query cannot cache
#: a whole dataset for the next.
DEFAULT_POOL_PAGES = 512


@dataclass(frozen=True)
class QueryStats:
    """Cost of one query (a diff of two counter snapshots)."""

    page_reads: int
    distance_computations: int
    distance_flops: int
    key_comparisons: int
    cpu_seconds: float

    @staticmethod
    def from_snapshots(
        before: CostSnapshot, after: CostSnapshot
    ) -> "QueryStats":
        diff = after - before
        return QueryStats(
            page_reads=diff.total_page_reads,
            distance_computations=diff.distance_computations,
            distance_flops=diff.distance_flops,
            key_comparisons=diff.key_comparisons,
            cpu_seconds=diff.cpu_seconds,
        )

    @property
    def cpu_work(self) -> int:
        """Deterministic CPU proxy: dimension-weighted distance work plus
        1-d key comparisons (each counts one unit)."""
        return self.distance_flops + self.key_comparisons


@dataclass(frozen=True)
class KNNResult:
    """Neighbor ids (nearest first), their scores, and the query's cost.

    ``distances`` are the index's search scores: within-subspace reduced L2
    (which lower-bounds the true distance) or exact L2 for outliers.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats

    def __post_init__(self) -> None:
        if self.ids.shape != self.distances.shape:
            raise ValueError(
                f"ids shape {self.ids.shape} != distances "
                f"shape {self.distances.shape}"
            )

    @property
    def k(self) -> int:
        return self.ids.size


class VectorIndex(ABC):
    """A KNN index over a reduced dataset, with its own simulated storage."""

    #: Scheme name used in experiment tables ("iDistance", "gLDR", "SeqScan").
    name: str = "index"

    def __init__(self, pool_pages: int = DEFAULT_POOL_PAGES) -> None:
        self.counters = CostCounters()
        self.store = PageStore(self.counters)
        self.pool = BufferPool(self.store, pool_pages, self.counters)

    @abstractmethod
    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
    ) -> KNNResult:
        """The K nearest neighbors of ``query`` under the index's scoring.

        Pass a :class:`~repro.obs.Tracer` to record per-phase spans (and
        per-span cost deltas) for this query; the default is a shared
        no-op tracer, under which the query's counters and results are
        bit-identical to an uninstrumented run.
        """
        raise NotImplementedError

    def reset_cache(self) -> None:
        """Drop the buffer pool contents (cold-cache measurement)."""
        self.pool.clear()

    @property
    def size_pages(self) -> int:
        """Total pages the index occupies."""
        return self.store.allocated_pages

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of buffered reads served without physical I/O."""
        return self.pool.hit_rate

    def storage_stats(self) -> dict:
        """Buffer-pool and page-store state, for traces and tests.

        Exposes the pool's hit/miss split (``logical_reads`` vs
        ``physical_reads`` in counter terms) so cache behavior can be
        asserted without reaching into the pool.
        """
        return {
            "buffer_hits": self.pool.hits,
            "buffer_misses": self.pool.misses,
            "buffer_hit_rate": self.pool.hit_rate,
            "resident_pages": len(self.pool),
            "capacity_pages": self.pool.capacity_pages,
            "allocated_pages": self.store.allocated_pages,
        }

    def _measured(self, fn, *args, tracer: Tracer = NULL_TRACER, **kwargs):
        """Run ``fn`` under the CPU timer and return (result, QueryStats).

        When a real ``tracer`` is supplied the call is wrapped in a
        ``knn.query`` span (cost delta = the whole query) and the buffer
        pool feeds ``buffer.hits``/``buffer.misses`` counters for the
        duration.  ``fn`` receives ``*args``/``kwargs`` untouched —
        callers that want per-phase spans pass the tracer along inside
        ``args`` themselves.
        """
        before = self.counters.snapshot()
        previous_pool_tracer = self.pool.tracer
        self.pool.tracer = tracer if tracer.enabled else None
        try:
            with tracer.span(
                "knn.query", counters=self.counters, scheme=self.name
            ):
                with self.counters.cpu_timer():
                    result = fn(*args, **kwargs)
        finally:
            self.pool.tracer = previous_pool_tracer
        stats = QueryStats.from_snapshots(before, self.counters.snapshot())
        if tracer.enabled:
            tracer.gauge("buffer.hit_rate").set(self.pool.hit_rate)
        return result, stats
