"""Common index API and per-query statistics.

Figures 9 and 10 compare three indexing schemes (iMMDR, iLDR, gLDR) plus a
sequential scan, reporting page accesses and CPU time per KNN query.  Every
index here is built from a :class:`~repro.reduction.base.ReducedDataset`,
owns a simulated page store + buffer pool, and answers
:meth:`VectorIndex.knn` with both the neighbor ids and a
:class:`QueryStats` diff of its cost counters around the search.

Distances: the search metric is L2 (the paper uses L2 for searching;
Mahalanobis is only for *discovering* the ellipsoids).  Distances within a
subspace are computed between reduced representations in that subspace's
axis system; outliers use full-dimensional L2.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from contextlib import contextmanager
from pathlib import Path
from typing import Union

from ..linalg.kernels import normalize_rows
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..storage.buffer import BufferPool
from ..storage.faults import CrashPoint, FaultPlan, FaultyPageStore
from ..storage.metrics import CostCounters, CostSnapshot
from ..storage.pager import PageStore
from ..storage.wal import WALPageStore, WriteAheadLog

__all__ = [
    "InvalidQueryError",
    "QueryStats",
    "KNNResult",
    "BatchKNNResult",
    "VectorIndex",
]


class InvalidQueryError(ValueError):
    """A query vector the index cannot answer meaningfully.

    Raised for NaN/Inf components and dimensionality mismatches.  NaN
    comparisons are all false, so an unchecked NaN query would silently
    return garbage neighbors — rejection is the only correct answer.
    :meth:`VectorIndex.knn` raises; :meth:`VectorIndex.knn_batch` instead
    skips the offending rows and reports them in
    :attr:`BatchKNNResult.invalid_queries`.
    """

#: Default buffer pool size (pages).  512 pages = 2 MiB: large enough that a
#: single query's working set fits, small enough that one query cannot cache
#: a whole dataset for the next.
DEFAULT_POOL_PAGES = 512


@dataclass(frozen=True)
class QueryStats:
    """Cost of one query (a diff of two counter snapshots)."""

    page_reads: int
    distance_computations: int
    distance_flops: int
    key_comparisons: int
    cpu_seconds: float

    @staticmethod
    def from_snapshots(
        before: CostSnapshot, after: CostSnapshot
    ) -> "QueryStats":
        diff = after - before
        return QueryStats(
            page_reads=diff.total_page_reads,
            distance_computations=diff.distance_computations,
            distance_flops=diff.distance_flops,
            key_comparisons=diff.key_comparisons,
            cpu_seconds=diff.cpu_seconds,
        )

    @property
    def cpu_work(self) -> int:
        """Deterministic CPU proxy: dimension-weighted distance work plus
        1-d key comparisons (each counts one unit)."""
        return self.distance_flops + self.key_comparisons


@dataclass(frozen=True)
class KNNResult:
    """Neighbor ids (nearest first), their scores, and the query's cost.

    ``distances`` are the index's search scores: within-subspace reduced L2
    (which lower-bounds the true distance) or exact L2 for outliers.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats

    def __post_init__(self) -> None:
        if self.ids.shape != self.distances.shape:
            raise ValueError(
                f"ids shape {self.ids.shape} != distances "
                f"shape {self.distances.shape}"
            )

    @property
    def k(self) -> int:
        return self.ids.size


@dataclass(frozen=True)
class BatchKNNResult:
    """Answers for a whole query workload in workload order.

    ``ids`` and ``distances`` are ``(Q, k)`` (nearest first per row);
    ``stats`` has one :class:`QueryStats` per query.  Per-query accounting
    is defined under the *cold-cache* protocol (buffer pool empty at each
    query's start — the paper's per-query measurement), and is bit-identical
    to answering the same queries one at a time through :meth:`VectorIndex.knn`
    with a cache reset before each.  ``wall_seconds`` is the real elapsed
    time for the whole batch; on vectorized fast paths each query's
    ``cpu_seconds`` is the batch wall time apportioned equally, since the
    shared-scan kernels have no meaningful per-query wall attribution.
    """

    ids: np.ndarray
    distances: np.ndarray
    stats: Tuple[QueryStats, ...]
    wall_seconds: float
    #: Workload row indices rejected by validation (NaN/Inf components;
    #: zero vectors under the cosine metric).  Those rows hold ids of -1,
    #: NaN distances, and all-zero stats — the rest of the batch is
    #: answered normally (skip-and-report, not abort).
    invalid_queries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.ids.shape != self.distances.shape:
            raise ValueError(
                f"ids shape {self.ids.shape} != distances "
                f"shape {self.distances.shape}"
            )
        if self.ids.ndim != 2 or self.ids.shape[0] != len(self.stats):
            raise ValueError(
                f"expected ({len(self.stats)}, k) id matrix, "
                f"got shape {self.ids.shape}"
            )

    @property
    def n_queries(self) -> int:
        return self.ids.shape[0]

    @property
    def k(self) -> int:
        return self.ids.shape[1]

    def __len__(self) -> int:
        return self.n_queries

    def __getitem__(self, i: int) -> KNNResult:
        """One query's answer as a standalone :class:`KNNResult`."""
        return KNNResult(
            ids=self.ids[i], distances=self.distances[i], stats=self.stats[i]
        )


class VectorIndex(ABC):
    """A KNN index over a reduced dataset, with its own simulated storage."""

    #: Scheme name used in experiment tables ("iDistance", "gLDR", "SeqScan").
    name: str = "index"

    def __init__(
        self,
        pool_pages: int = DEFAULT_POOL_PAGES,
        store_factory: Optional[Callable[[CostCounters], PageStore]] = None,
    ) -> None:
        """``store_factory`` selects the physical page store: any callable
        taking a :class:`~repro.storage.metrics.CostCounters` and returning
        a :class:`~repro.storage.pager.PageStore` (e.g.
        :class:`~repro.storage.mmap_store.MmapPageStore` for out-of-core
        operation).  Defaults to the in-memory store.  Logical I/O
        accounting is store-independent, so swapping the factory never
        changes counters or results."""
        self.counters = CostCounters()
        factory = store_factory if store_factory is not None else PageStore
        self.store = factory(self.counters)
        self.pool = BufferPool(self.store, pool_pages, self.counters)

    @abstractmethod
    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> KNNResult:
        """The K nearest neighbors of ``query`` under the index's scoring.

        Pass a :class:`~repro.obs.Tracer` to record per-phase spans (and
        per-span cost deltas) for this query; the default is a shared
        no-op tracer, under which the query's counters and results are
        bit-identical to an uninstrumented run.

        ``mode="approx"`` routes through the attached encoder (see
        :meth:`attach_encoder`): ADC-scan the PQ codes for a candidate
        set of ``rerank_depth * k`` rids, then rerank exactly.
        ``rerank_depth`` overrides the encoder's default scan depth and
        is only meaningful in approximate mode.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
        cold_cache: bool = True,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> BatchKNNResult:
        """Answer every query in ``(Q, d)`` ``queries``, sharing work across
        the batch where the index provides a vectorized fast path.

        Results (ids, distances) and per-query cost accounting are
        bit-identical to a per-query :meth:`knn` loop under the cold-cache
        protocol; the fast paths exist purely to amortize per-query Python
        and small-kernel overhead across the workload.  ``cold_cache=False``
        falls back to the sequential loop (warm-cache accounting depends on
        the exact cross-query page interleaving, which a shared scan would
        change), and so do indexes without a fast path.

        The whole call runs under one ``knn.batch`` span; a real ``tracer``
        also gets a ``knn.batch_qps`` gauge.  The index's own counters are
        advanced by the batch totals either way.

        Rows with NaN/Inf components are *skipped and reported* (see
        :attr:`BatchKNNResult.invalid_queries`) rather than aborting the
        workload; a dimensionality mismatch is structural to the whole
        matrix and raises :class:`InvalidQueryError` outright.

        ``mode="approx"`` answers every row through the attached
        encoder's scan-then-rerank path (see :meth:`attach_encoder`) via
        the per-query loop — the vectorized exact fast paths do not
        apply — under the same cold-cache protocol, so batch answers
        remain bit-identical to a per-query approx loop.
        """
        queries = np.ascontiguousarray(
            np.atleast_2d(np.asarray(queries, dtype=np.float64))
        )
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be (Q, d), got shape {queries.shape}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if mode not in ("exact", "approx"):
            raise ValueError(
                f"unknown search mode {mode!r}; expected 'exact' or 'approx'"
            )
        expected = self.query_dim
        if expected is not None and queries.shape[1] != expected:
            raise InvalidQueryError(
                f"queries have {queries.shape[1]} dimensions; the index "
                f"was built over {expected}-dimensional data"
            )
        tracer = ensure_tracer(tracer)
        valid = np.isfinite(queries).all(axis=1)
        if self.metric == "cosine":
            # Zero vectors have no direction: skip-and-report, same as NaN.
            valid &= np.linalg.norm(queries, axis=1) > 0.0
        invalid_rows = np.flatnonzero(~valid)
        valid_queries = queries if valid.all() else queries[valid]
        if self.metric == "cosine":
            valid_queries = normalize_rows(valid_queries)
        start = time.perf_counter()
        with tracer.span(
            "knn.batch",
            counters=self.counters,
            scheme=self.name,
            n_queries=queries.shape[0],
            k=k,
            cold_cache=cold_cache,
            invalid_queries=int(invalid_rows.size),
        ):
            ids, distances, stats, wall = self._dispatch_batch(
                valid_queries, k, tracer, cold_cache, start,
                mode=mode, rerank_depth=rerank_depth,
            )
        if invalid_rows.size:
            if tracer.enabled:
                tracer.counter("knn.invalid_queries").inc(
                    int(invalid_rows.size)
                )
            k_cols = ids.shape[1]
            full_ids = np.full(
                (queries.shape[0], k_cols), -1, dtype=np.int64
            )
            full_dists = np.full(
                (queries.shape[0], k_cols), np.nan, dtype=np.float64
            )
            full_ids[valid] = ids
            full_dists[valid] = distances
            zero = QueryStats(0, 0, 0, 0, 0.0)
            full_stats: List[QueryStats] = [zero] * queries.shape[0]
            for row, s in zip(np.flatnonzero(valid).tolist(), stats):
                full_stats[row] = s
            ids, distances, stats = full_ids, full_dists, full_stats
        if tracer.enabled and wall > 0:
            tracer.gauge("knn.batch_qps").set(queries.shape[0] / wall)
        return BatchKNNResult(
            ids=ids,
            distances=distances,
            stats=tuple(stats),
            wall_seconds=wall,
            invalid_queries=tuple(invalid_rows.tolist()),
        )

    def _dispatch_batch(
        self,
        queries: np.ndarray,
        k: int,
        tracer: Tracer,
        cold_cache: bool,
        start: float,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, List[QueryStats], float]:
        """Route pre-validated queries to the fast path or the loop."""
        has_fast_path = type(self)._knn_batch is not VectorIndex._knn_batch
        if has_fast_path and cold_cache and mode == "exact":
            with self.counters.cpu_timer():
                ids, distances, stats = self._knn_batch(queries, k, tracer)
            wall = time.perf_counter() - start
            per_query = wall / max(1, queries.shape[0])
            stats = [replace(s, cpu_seconds=per_query) for s in stats]
            # The loop path records per query via _measured; the
            # vectorized path records here so the flight recorder sees
            # every query either way.
            flight = getattr(self, "flight", None)
            if flight is not None:
                for s in stats:
                    flight.record(self.name, "knn_batch", s, k=k)
        else:
            ids, distances, stats = self._knn_batch_loop(
                queries, k, tracer, cold_cache,
                mode=mode, rerank_depth=rerank_depth,
            )
            wall = time.perf_counter() - start
        return ids, distances, stats, wall

    def _knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        tracer: Tracer,
    ) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
        """Vectorized batch kernel (cold-cache accounting); subclasses
        override.  Must return ``(Q, k)`` ids/distances plus per-query stats
        whose page/distance/key counts equal a cold per-query :meth:`knn`
        loop bit-for-bit (``cpu_seconds`` may be 0 — the caller apportions
        wall time).  The base implementation is never called (the caller
        routes to :meth:`_knn_batch_loop` when this is not overridden).
        """
        raise NotImplementedError

    def _knn_batch_loop(
        self,
        queries: np.ndarray,
        k: int,
        tracer: Tracer,
        cold_cache: bool,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
        """Reference batch execution: a per-query :meth:`knn` loop."""
        # Mode kwargs are forwarded only off the exact path so vanilla
        # subclasses (and test doubles) with the historical ``knn``
        # signature keep working untouched.
        knn_kwargs = (
            {}
            if mode == "exact"
            else {"mode": mode, "rerank_depth": rerank_depth}
        )
        id_rows: List[np.ndarray] = []
        dist_rows: List[np.ndarray] = []
        stats: List[QueryStats] = []
        for query in queries:
            if cold_cache:
                self.reset_cache()
            result = self.knn(query, k, tracer=tracer, **knn_kwargs)
            id_rows.append(result.ids)
            dist_rows.append(result.distances)
            stats.append(result.stats)
        if not id_rows:
            return (
                np.empty((0, 0), dtype=np.int64),
                np.empty((0, 0), dtype=np.float64),
                [],
            )
        return np.vstack(id_rows), np.vstack(dist_rows), stats

    def reset_cache(self) -> None:
        """Drop the buffer pool contents (cold-cache measurement)."""
        self.pool.clear()

    # ------------------------------------------------------------------
    # approximate tier (DESIGN.md §16)
    # ------------------------------------------------------------------

    def attach_encoder(
        self,
        config=None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ):
        """Train and attach a PQ code layer for ``mode="approx"`` queries.

        One seeded codebook per bulk partition (reduced subspace /
        outlier set), code pages allocated on this index's store, and
        the layer pickles along with the index through snapshots.  Exact
        search never reads code pages, so attaching cannot move an
        exact-mode counter or fingerprint.  Returns the attached
        :class:`~repro.encode.ApproxLayer`.
        """
        from ..encode import build_encoder

        self.encoder = build_encoder(
            self, config=config, seed=seed, tracer=tracer
        )
        return self.encoder

    def _approx_knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
        mode: str = "approx",
        rerank_depth: Optional[int] = None,
    ) -> KNNResult:
        """Shared ``mode="approx"`` entry point behind every scheme's
        :meth:`knn`: validate, then run the attached encoder's
        scan-then-rerank search under the standard ``knn.query``
        measurement envelope (same spans, flight records, and
        :class:`QueryStats` protocol as exact search)."""
        if mode != "approx":
            raise ValueError(
                f"unknown search mode {mode!r}; expected 'exact' or 'approx'"
            )
        layer = getattr(self, "encoder", None)
        if layer is None:
            raise RuntimeError(
                "no encoder attached: call attach_encoder() before "
                "mode='approx' queries"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = self._check_query(query)
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            layer.search,
            self,
            query,
            k,
            rerank_depth,
            tracer,
            tracer=tracer,
            k=k,
        )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _approx_rerank_pages(self, rids: np.ndarray) -> np.ndarray:
        """Data page id holding each bulk rid's frame vector, for the
        approximate tier's exact rerank to charge its reads through the
        same accounting as exact search.  Schemes override with their
        build layout (iDistance routes through ``locate``)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not map rids to data pages; "
            "approximate rerank is unavailable"
        )

    # ------------------------------------------------------------------
    # robustness
    # ------------------------------------------------------------------

    @property
    def query_dim(self) -> Optional[int]:
        """Expected query dimensionality (the original-space width), or
        ``None`` when the index has no reduced dataset to derive it from."""
        reduced = getattr(self, "reduced", None)
        if reduced is None:
            return None
        return int(reduced.dimensionality)

    @property
    def metric(self) -> str:
        """The search metric the index answers under (``"l2"`` or
        ``"cosine"``), inherited from the reduced dataset it was built
        over.  Cosine is implemented as L2 over unit-normalized vectors
        (DESIGN.md §13): the stored data was normalized at reduction time,
        and queries/inserts are normalized on the way in, after which every
        kernel, bound, and counter behaves exactly as under L2."""
        reduced = getattr(self, "reduced", None)
        return getattr(reduced, "metric", "l2") if reduced is not None else "l2"

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        """Validate one query vector, raising :class:`InvalidQueryError`.

        Rejects non-1-d inputs, dimensionality mismatches, and NaN/Inf
        components — all of which would otherwise flow through the distance
        kernels and come back as confidently wrong neighbors.
        """
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise InvalidQueryError(
                f"query must be a 1-d vector, got shape {query.shape}"
            )
        expected = self.query_dim
        if expected is not None and query.shape[0] != expected:
            raise InvalidQueryError(
                f"query has {query.shape[0]} dimensions; the index was "
                f"built over {expected}-dimensional data"
            )
        if not np.isfinite(query).all():
            raise InvalidQueryError(
                "query contains NaN or Inf components"
            )
        if self.metric == "cosine":
            if float(np.linalg.norm(query)) == 0.0:
                raise InvalidQueryError(
                    "cosine similarity is undefined for the zero vector"
                )
            # Through normalize_rows (not a scalar division) so the
            # per-query path is bit-identical to the batched one.
            query = normalize_rows(query[None, :])[0]
        return query

    def _prepare_point(self, point: np.ndarray) -> np.ndarray:
        """Canonicalize one insert vector: contiguous float64, normalized
        to unit length under the cosine metric (zero vectors are rejected
        — they have no direction to index)."""
        point = np.ascontiguousarray(np.asarray(point, dtype=np.float64))
        if self.metric == "cosine":
            if float(np.linalg.norm(point)) == 0.0:
                raise InvalidQueryError(
                    "cannot insert the zero vector under the cosine metric"
                )
            point = normalize_rows(point[None, :])[0]
        return point

    def _repoint_store(self, store: PageStore) -> None:
        """Swap every component's store reference (buffer pool, B+-tree,
        Hybrid trees) to ``store`` — the attach/detach primitive shared by
        fault injection and WAL protection."""
        self.store = store
        self.pool.store = store
        tree = getattr(self, "tree", None)
        if tree is not None:
            tree.store = store
        for hybrid in getattr(self, "trees", []):
            hybrid.store = store

    def enable_faults(
        self,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> FaultyPageStore:
        """Wrap this index's page store in a seeded fault injector.

        Every component holding a store reference (buffer pool, B+-tree,
        Hybrid trees) is repointed at the wrapper, so all subsequent page
        traffic flows through the :class:`~repro.storage.faults.FaultPlan`.
        Returns the wrapper; its ``fault_metrics`` registry carries the
        ``faults.injected*`` / ``faults.retried`` counters.  Calling this
        on an already-faulty index layers a second plan — usually a test
        bug — so it raises instead.
        """
        if isinstance(self.store, FaultyPageStore):
            raise RuntimeError(
                "fault injection is already enabled on this index"
            )
        faulty = FaultyPageStore(self.store, plan, metrics=metrics)
        self._repoint_store(faulty)
        return faulty

    def disable_faults(self) -> None:
        """Undo :meth:`enable_faults`, restoring the pristine inner store."""
        store = self.store
        if not isinstance(store, FaultyPageStore):
            return
        self._repoint_store(store.inner)

    # ------------------------------------------------------------------
    # durability (DESIGN.md §10)
    # ------------------------------------------------------------------

    def enable_wal(
        self,
        wal: Union[WriteAheadLog, str, Path],
        crashpoint: Optional[CrashPoint] = None,
    ) -> WALPageStore:
        """Put every subsequent page mutation under write-ahead logging.

        ``wal`` is an open :class:`~repro.storage.wal.WriteAheadLog` or a
        path to create one at.  All store references are repointed at a
        :class:`~repro.storage.wal.WALPageStore` wrapper, after which
        :meth:`insert` / :meth:`delete` run as logged transactions and are
        recoverable via :func:`repro.recovery.recover`.  ``crashpoint``
        arms a deterministic simulated crash (test harnesses).

        Layering rules: WAL-over-faults or faults-over-WAL is not
        supported — disable one before enabling the other.
        """
        if isinstance(self.store, (WALPageStore, FaultyPageStore)):
            raise RuntimeError(
                "the index's store is already wrapped (WAL or fault "
                "injection); disable that layer first"
            )
        if not isinstance(wal, WriteAheadLog):
            wal = WriteAheadLog(wal)
        wal_store = WALPageStore(self.store, wal, crashpoint=crashpoint)
        self._repoint_store(wal_store)
        return wal_store

    def disable_wal(self) -> Optional[WALPageStore]:
        """Detach WAL protection, restoring the inner store.

        Returns the detached wrapper (so a checkpoint can reattach it via
        :meth:`reattach_wal`), or ``None`` when WAL was not enabled.  The
        log itself is left open and untouched.
        """
        store = self.store
        if not isinstance(store, WALPageStore):
            return None
        self._repoint_store(store.inner)
        return store

    def reattach_wal(self, wal_store: WALPageStore) -> None:
        """Re-point the index at a wrapper from :meth:`disable_wal`
        (checkpointing detaches around the snapshot write)."""
        if wal_store.inner is not self.store:
            raise RuntimeError(
                "wal_store does not wrap this index's current store"
            )
        self._repoint_store(wal_store)

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The attached write-ahead log, or ``None`` when not enabled."""
        store = self.store
        if isinstance(store, WALPageStore):
            return store.wal
        return None

    @contextmanager
    def _wal_txn(self, kind: str):
        """Run a mutation as a WAL transaction when WAL is enabled.

        Yields the open :class:`~repro.storage.wal.WALTransaction` (the
        mutator calls ``set_meta`` with its recovery after-image before
        the block ends) or ``None`` when the index is unprotected — the
        mutation then simply runs unlogged, preserving the pre-WAL API.
        """
        wal = self.wal
        if wal is None:
            yield None
            return
        with wal.transaction(kind) as txn:
            yield txn

    def _apply_recovery_meta(self, meta: dict) -> None:
        """Apply one committed transaction's index-level after-image
        (recovery's metadata redo).  Subclasses that support online
        mutation override this."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support metadata recovery"
        )

    @property
    def live_count(self) -> int:
        """Visible points: bulk load plus online inserts minus deletes."""
        reduced = getattr(self, "reduced", None)
        bulk = int(reduced.n_points) if reduced is not None else 0
        return (
            bulk
            + int(getattr(self, "n_inserted", 0))
            - len(getattr(self, "_tombstones", ()))
        )

    def _tombstone_array(self) -> np.ndarray:
        """Sorted int64 array of deleted rids, for vectorized filtering.

        Cached by size — tombstone sets only grow, so a size match means
        the cache is current.
        """
        tombs = getattr(self, "_tombstones", None)
        if not tombs:
            return np.empty(0, dtype=np.int64)
        cache = getattr(self, "_tomb_cache", None)
        if cache is None or cache.size != len(tombs):
            cache = np.fromiter(
                sorted(tombs), dtype=np.int64, count=len(tombs)
            )
            self._tomb_cache = cache
        return cache

    @property
    def size_pages(self) -> int:
        """Total pages the index occupies."""
        return self.store.allocated_pages

    @property
    def buffer_hit_rate(self) -> float:
        """Fraction of buffered reads served without physical I/O."""
        return self.pool.hit_rate

    def storage_stats(self) -> dict:
        """Buffer-pool and page-store state, for traces and tests.

        Exposes the pool's hit/miss split (``logical_reads`` vs
        ``physical_reads`` in counter terms) so cache behavior can be
        asserted without reaching into the pool.
        """
        return {
            "buffer_hits": self.pool.hits,
            "buffer_misses": self.pool.misses,
            "buffer_hit_rate": self.pool.hit_rate,
            "resident_pages": len(self.pool),
            "capacity_pages": self.pool.capacity_pages,
            "allocated_pages": self.store.allocated_pages,
        }

    def _measured(
        self,
        fn,
        *args,
        tracer: Tracer = NULL_TRACER,
        k: Optional[int] = None,
        **kwargs,
    ):
        """Run ``fn`` under the CPU timer and return (result, QueryStats).

        When a real ``tracer`` is supplied the call is wrapped in a
        ``knn.query`` span (cost delta = the whole query) and the buffer
        pool feeds ``buffer.hits``/``buffer.misses`` counters for the
        duration.  ``fn`` receives ``*args``/``kwargs`` untouched —
        callers that want per-phase spans pass the tracer along inside
        ``args`` themselves.  An enabled flight recorder (see
        :meth:`enable_flight_recorder`) gets the finished stats; ``k``
        only labels that record.
        """
        before = self.counters.snapshot()
        previous_pool_tracer = self.pool.tracer
        self.pool.tracer = tracer if tracer.enabled else None
        try:
            with tracer.span(
                "knn.query", counters=self.counters, scheme=self.name
            ):
                with self.counters.cpu_timer():
                    result = fn(*args, **kwargs)
        finally:
            self.pool.tracer = previous_pool_tracer
        stats = QueryStats.from_snapshots(before, self.counters.snapshot())
        if tracer.enabled:
            tracer.gauge("buffer.hit_rate").set(self.pool.hit_rate)
        flight = getattr(self, "flight", None)
        if flight is not None:
            flight.record(self.name, "knn", stats, k=k)
        return result, stats

    # ------------------------------------------------------------------
    # observability (DESIGN.md §12)
    # ------------------------------------------------------------------

    def explain(
        self,
        query: np.ndarray,
        k: int,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> "QueryExplain":  # noqa: F821 - imported lazily below
        """Run one cold-cache query under a private tracer and return its
        :class:`~repro.obs.explain.QueryExplain` — the EXPLAIN ANALYZE
        view of where that query's pages, distance evaluations, and key
        comparisons went, phase by phase and (for iDistance) partition by
        partition.  ``mode="approx"`` explains the encoder path instead;
        its ``knn.approx.scan`` / ``knn.approx.rerank`` phases attribute
        code-scan vs rerank cost.

        The query executes for real: the index's counters advance exactly
        as a normal :meth:`knn` call would, and the explain totals equal
        that call's :class:`QueryStats` counter for counter.
        """
        from ..obs.explain import explain_from_tracer

        knn_kwargs = (
            {}
            if mode == "exact"
            else {"mode": mode, "rerank_depth": rerank_depth}
        )
        tracer = Tracer(counters=self.counters)
        self.reset_cache()
        result = self.knn(query, k, tracer=tracer, **knn_kwargs)
        return explain_from_tracer(
            tracer,
            k=k,
            result_ids=result.ids.tolist(),
            delta_rids=self._delta_rids(),
        )

    def _delta_rids(self):
        """Row ids currently living in delta structures (online inserts
        not yet merged into the bulk-loaded index), scheme-agnostic:
        iDistance tracks per-partition delta pages via ``_delta_location``;
        SeqScan/gLDR keep a shared :class:`~repro.index.dynamic.DeltaStore`.
        """
        locations = getattr(self, "_delta_location", None)
        if locations is not None:
            return locations.keys()
        delta = getattr(self, "delta", None)
        if delta is not None:
            return delta.rids
        return ()

    def enable_flight_recorder(
        self,
        capacity: int = 256,
        slow_threshold: Optional[int] = None,
    ):
        """Attach a :class:`~repro.obs.flight.FlightRecorder`: every
        subsequent query leaves a bounded-memory cost record, with
        ``slow_threshold`` (logical cost units — machine-independent)
        classifying slow queries.  Returns the recorder; set
        ``self.flight = None`` to detach."""
        from ..obs.flight import FlightRecorder

        self.flight = FlightRecorder(
            capacity=capacity, slow_threshold=slow_threshold
        )
        return self.flight

    def _note_routed_insert(self, subspace_idx: int, residual: float) -> None:
        """Record one online insert's routing residual (its ``ProjDist_r``
        to the chosen subspace) for the health sampler's live MPE
        estimate.  Outlier-routed inserts (``subspace_idx < 0``) carry no
        subspace residual.  Guarded with ``getattr`` because recovered /
        unpickled indexes may predate the attribute."""
        if subspace_idx < 0:
            return
        residuals = getattr(self, "_insert_residuals", None)
        if residuals is None:
            residuals = self._insert_residuals = {}
        count, total = residuals.get(subspace_idx, (0, 0.0))
        residuals[subspace_idx] = (count + 1, total + float(residual))
