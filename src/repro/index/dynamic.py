"""Online-mutation plumbing shared by the flat-layout schemes.

The extended iDistance carries its own per-partition main+delta layout
(§5's auxiliary arrays exist for exactly that); ``SequentialScan`` and
``GlobalLDRIndex`` get the same ``insert``/``delete`` API through the
simpler machinery here: a single append-only :class:`DeltaStore` holding
the dynamically inserted vectors (packed into data pages by byte budget),
plus rid tombstones kept on the index for deletes.  Both are small by
design — online updates accumulate between index rebuilds, they do not
reorganize the bulk layout.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..reduction.base import ReducedDataset
from ..storage.pager import PAGE_SIZE, PageStore, vector_bytes

__all__ = ["DeltaStore", "route_point"]


def route_point(
    reduced: ReducedDataset, point: np.ndarray, beta: float
) -> Tuple[int, np.ndarray, float]:
    """Route a new point the way the paper's dynamic insert does.

    Returns ``(subspace_index, stored_vector, residual)``: the subspace
    with the smallest ``ProjDist_r`` hosts the point (stored as its
    reduced projection) when that distance is within ``beta``; otherwise
    the point is an outlier (``-1``) stored at full dimensionality.
    ``residual`` is that smallest ``ProjDist_r`` (``inf`` when there are
    no subspaces) — already computed for the routing decision, and fed to
    the health sampler's live MPE-drift estimate for free.
    """
    point = np.asarray(point, dtype=np.float64)
    best_idx = -1
    best_dist = np.inf
    for i, subspace in enumerate(reduced.subspaces):
        dist = float(subspace.proj_dist_r(point)[0])
        if dist < best_dist:
            best_idx, best_dist = i, dist
    if best_idx < 0 or best_dist > beta:
        return -1, point, best_dist
    return best_idx, reduced.subspaces[best_idx].project(point), best_dist


class DeltaStore:
    """Append-only side store for dynamically inserted vectors.

    Vectors of mixed widths (reduced projections and full-dimensional
    outliers) pack into shared data pages by byte budget; every page is
    allocated on the owning index's page store so the allocation is
    WAL-logged and the index's page count reflects the inserts.  Scans
    charge the pages and score every entry — the flat-layout analogue of
    iDistance's per-partition delta scoring.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.vectors: List[np.ndarray] = []
        self.rids: List[int] = []
        self.subspace_ids: List[int] = []  # -1 = full-dimensional outlier
        self.pages: List[int] = []
        self.bytes_in_last_page = 0

    def __len__(self) -> int:
        return len(self.rids)

    def add(
        self,
        store: PageStore,
        rid: int,
        subspace_id: int,
        vector: np.ndarray,
    ) -> None:
        """Append one entry, allocating a fresh data page when the current
        one cannot hold the vector's bytes."""
        vector = np.asarray(vector, dtype=np.float64)
        nbytes = max(1, vector_bytes(vector.size))
        if (
            not self.pages
            or self.bytes_in_last_page + nbytes > PAGE_SIZE
        ):
            self.pages.append(
                store.allocate(
                    (f"{self.label}-delta", len(self.pages)), 0
                )
            )
            self.bytes_in_last_page = 0
        self.bytes_in_last_page += nbytes
        self.vectors.append(vector)
        self.rids.append(int(rid))
        self.subspace_ids.append(int(subspace_id))

    def entries(self):
        """Iterate ``(vector, rid, subspace_id)`` in insertion order."""
        return zip(self.vectors, self.rids, self.subspace_ids)

    # -- recovery support ------------------------------------------------

    def fill_meta(self) -> dict:
        """Page-layout state for a commit record's after-image."""
        return {
            "delta_pages": list(self.pages),
            "delta_bytes_in_last_page": self.bytes_in_last_page,
        }

    def apply_insert(
        self,
        rid: int,
        subspace_id: int,
        vector: np.ndarray,
        fill_meta: Optional[dict] = None,
    ) -> None:
        """Metadata redo: append an entry whose page allocations were
        already replayed physically; restore the page-fill state."""
        self.vectors.append(np.asarray(vector, dtype=np.float64))
        self.rids.append(int(rid))
        self.subspace_ids.append(int(subspace_id))
        if fill_meta is not None:
            self.pages = list(fill_meta["delta_pages"])
            self.bytes_in_last_page = int(
                fill_meta["delta_bytes_in_last_page"]
            )
