"""Extended iDistance (§5): one B+-tree over every reduced subspace.

Every partition — each elliptical subspace, plus the outlier set treated as
"a subspace in its original dimensionality" — maps its points to one
dimension with

    key = i * c + dist(P, O_i)

where ``O_i`` is the partition's reference point (the cluster centroid;
the origin of the subspace's axis system for projections) and ``c`` a
stretching constant that range-partitions the key space so partition ``i``
occupies ``[i*c, (i+1)*c)``.  All keys live in a single B+-tree; an
auxiliary array per partition keeps the centroid, principal components and
min/max radius for searching, and covariances for dynamic insertion.

KNN search grows a query sphere iteratively.  For radius ``R`` and the
query's projection ``q_i`` (at distance ``d_i = ||q_i - O_i||`` from the
reference), the annulus geometry gives the paper's three cases:

1. ``d_i <= max_radius`` — the query sits inside the partition's data
   sphere: scan the tree outward in both directions from key
   ``i*c + d_i``.
2. ``d_i > max_radius`` but ``d_i - R <= max_radius`` — the sphere
   intersects from outside: scan inward (leftward) from the partition's
   rim ``i*c + max_radius``.
3. no intersection — skip the partition at this radius.

(The symmetric interior case ``d_i < min_radius`` scans outward from the
inner rim; the paper's figure omits it but correctness requires it.)

The scan prunes with the triangle inequality: an entry with key offset
``o`` has reduced distance at least ``|d_i - o|``, so a direction stops
once ``|d_i - o|`` exceeds the current search bound.  Search terminates
when the K-th best distance is within the searched radius ``R`` — at that
point no unexamined point can score better, because every key interval
within ``R`` of every ``d_i`` has been consumed.  The result is therefore
the *exact* KNN under the reduced-space scoring (the lossiness relative to
the original space is entirely the reduction's, which is what precision
measures).

I/O model: the B+-tree stores (key, rid) entries; the reduced vectors are
packed, in key order, into per-partition data pages read through the buffer
pool when a candidate is scored.  Key order means an expanding scan touches
a contiguous run of data pages — the same locality as storing vectors in
the leaves, with the accounting kept explicit.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.subspace import EllipticalSubspace, OutlierSet
from ..linalg.backend import (
    cold_lru_physical_reads,
    flat_l2,
    multi_arange,
)
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..reduction.base import ReducedDataset
from ..btree.tree import BPlusTree
from ..storage.metrics import CostSnapshot
from ..storage.pager import PAGE_SIZE, vector_bytes
from .base import DEFAULT_POOL_PAGES, KNNResult, QueryStats, VectorIndex

__all__ = ["ExtendedIDistance"]


@dataclass
class _Partition:
    """Search-time state for one subspace (or the outlier set)."""

    index: int
    subspace: Optional[EllipticalSubspace]  # None for the outlier partition
    centroid: np.ndarray  # reference point in the partition's own frame
    vectors: np.ndarray  # (m, width) sorted by key offset
    rids: np.ndarray  # (m,) global point ids, same order
    offsets: np.ndarray  # (m,) = dist(P, O_i), ascending
    page_of_entry: np.ndarray  # (m,) data page id per entry
    min_radius: float
    max_radius: float

    def __post_init__(self) -> None:
        # Dynamically inserted entries live in a main+delta layout: the
        # bulk-loaded arrays stay immutable, inserts append here and the
        # search scores the (small) delta on first contact.
        self.delta_vectors: List[np.ndarray] = []
        self.delta_rids: List[int] = []
        self.delta_pages: List[int] = []

    @property
    def size(self) -> int:
        return self.rids.size + len(self.delta_rids)

    def project_query(self, query: np.ndarray) -> np.ndarray:
        if self.subspace is not None:
            return self.subspace.project(query)
        return np.asarray(query, dtype=np.float64)


class _DirectionalScan:
    """One direction of a partition's expanding scan (entry positions in
    the partition's sorted arrays, advancing by +1 or -1)."""

    def __init__(self, position: int, step: int) -> None:
        self.position = position
        self.step = step
        self.done = False


#: Segment length at or above which the batch scan scores a segment on a
#: contiguous array view instead of routing it through the shared gather
#: kernel — long runs pay more for the gather copy than for one numpy call.
_BATCH_SEG_VIEW_MIN = 256


class _QueryLedger:
    """Per-query cost ledger for the batch engine.

    The batch engine never routes I/O through the shared buffer pool —
    interleaving queries would corrupt each query's cold-cache accounting.
    Instead every page read the sequential cold query would issue is
    recorded here in program order as an inclusive page-id range, and
    :meth:`settle` replays the expanded sequence against an LRU of the
    pool's capacity to recover the exact logical/physical read counts.
    """

    __slots__ = (
        "page_lo",
        "page_hi",
        "key_comparisons",
        "distance_computations",
        "distance_flops",
    )

    def __init__(self) -> None:
        self.page_lo: List[int] = []
        self.page_hi: List[int] = []
        self.key_comparisons = 0
        self.distance_computations = 0
        self.distance_flops = 0

    def read_range(self, lo: int, hi: int) -> None:
        """Record reads of the contiguous page ids ``lo..hi`` inclusive."""
        self.page_lo.append(lo)
        self.page_hi.append(hi)

    def settle(self, capacity: int) -> Tuple[int, int]:
        """``(logical_reads, physical_reads)`` under a cold LRU pool."""
        if not self.page_lo:
            return 0, 0
        sequence = self.page_sequence()
        return int(sequence.size), cold_lru_physical_reads(
            sequence, capacity
        )

    def page_sequence(self) -> np.ndarray:
        """The full page-read sequence, ranges expanded, in read order."""
        return multi_arange(
            np.asarray(self.page_lo, dtype=np.int64),
            np.asarray(self.page_hi, dtype=np.int64) + 1,
        )


def _settle_ledgers(
    ledgers: List["_QueryLedger"], capacity: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(logical, physical)`` read counts for every ledger at once.

    Equivalent to calling :meth:`_QueryLedger.settle` per ledger, but the
    common case — every query's working set fits the pool, so physical
    reads = distinct pages — is answered with ONE combined unique over
    all queries (page ids offset into disjoint per-query blocks).  Only
    queries whose distinct count exceeds the capacity fall back to the
    exact per-query LRU replay.
    """
    n = len(ledgers)
    logical = np.zeros(n, dtype=np.int64)
    physical = np.zeros(n, dtype=np.int64)
    if n == 0:
        return logical, physical
    lens = np.array(
        [len(led.page_lo) for led in ledgers], dtype=np.int64
    )
    if not lens.any():
        return logical, physical
    los = np.concatenate(
        [np.asarray(led.page_lo, dtype=np.int64) for led in ledgers]
    )
    his = np.concatenate(
        [np.asarray(led.page_hi, dtype=np.int64) for led in ledgers]
    )
    pages = multi_arange(los, his + 1)
    run_lens = his - los + 1
    query_of_page = np.repeat(
        np.repeat(np.arange(n, dtype=np.int64), lens), run_lens
    )
    logical = np.bincount(query_of_page, minlength=n)
    stride = int(pages.max()) + 1 if pages.size else 1
    distinct_keys = np.unique(query_of_page * stride + pages)
    physical = np.bincount(distinct_keys // stride, minlength=n)
    over = np.flatnonzero(physical > capacity)
    for qi in over.tolist():
        physical[qi] = cold_lru_physical_reads(
            ledgers[qi].page_sequence(), capacity
        )
    return logical, physical


class ExtendedIDistance(VectorIndex):
    """The paper's extended iDistance over a :class:`ReducedDataset`."""

    name = "iDistance"

    def __init__(
        self,
        reduced: ReducedDataset,
        radius_step: Optional[float] = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
        store_factory=None,
    ) -> None:
        super().__init__(pool_pages=pool_pages, store_factory=store_factory)
        self.reduced = reduced
        self.partitions: List[_Partition] = []
        self._build_partitions()
        radii = [p.max_radius for p in self.partitions] or [1.0]
        global_max = max(radii)
        #: Key-space stretch constant: strictly larger than any offset.
        self.c = global_max * 1.01 + 1e-9
        #: Radius increment per search iteration (ΔR).  Default: 5% of the
        #: largest partition radius — small enough to stop early, large
        #: enough to converge in a few iterations.
        self.radius_step = (
            radius_step if radius_step is not None else global_max * 0.05
        )
        if self.radius_step <= 0:
            self.radius_step = 1e-6
        self._rid_location = self._build_rid_map()
        # Locations of dynamically inserted rids (possibly sparse / beyond
        # the bulk id range); positions count past the bulk arrays into the
        # partition's delta store.
        self._delta_location: Dict[int, Tuple[int, int]] = {}
        self.n_inserted = 0
        # Deleted rids.  Deletes remove the B+-tree entry physically but
        # leave the (immutable) bulk/delta vector arrays alone; scans filter
        # dead rids when offering candidates.
        self._tombstones: set = set()
        self.tree = BPlusTree(self.store, self.pool)
        self._bulk_load_tree()
        # Entry rank -> leaf page, for charging tree I/O during scans: the
        # bulk load packs `fill` entries per leaf in key order, and key
        # order equals concatenated partition order.
        self._leaf_fill = max(2, int(self.tree.leaf_capacity * 0.9))
        self._leaf_pages = np.asarray(
            self.tree.leaf_page_ids(), dtype=np.int64
        )
        sizes = [p.size for p in self.partitions]
        self._rank_base = np.concatenate(
            [[0], np.cumsum(sizes)]
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_partitions(self) -> None:
        for subspace in self.reduced.subspaces:
            vectors = subspace.projections
            offsets = np.linalg.norm(vectors, axis=1)
            self._add_partition(
                subspace=subspace,
                centroid=np.zeros(subspace.reduced_dim),
                vectors=vectors,
                rids=subspace.member_ids,
                offsets=offsets,
            )
        outliers = self.reduced.outliers
        if outliers.size:
            offsets = np.linalg.norm(
                outliers.points - outliers.centroid, axis=1
            )
            self._add_partition(
                subspace=None,
                centroid=outliers.centroid,
                vectors=outliers.points,
                rids=outliers.member_ids,
                offsets=offsets,
            )

    def _add_partition(
        self,
        subspace: Optional[EllipticalSubspace],
        centroid: np.ndarray,
        vectors: np.ndarray,
        rids: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        order = np.argsort(offsets, kind="stable")
        vectors = np.ascontiguousarray(vectors[order])
        rids = rids[order]
        offsets = offsets[order]
        width = vectors.shape[1]
        per_page = max(1, PAGE_SIZE // max(1, vector_bytes(width)))
        page_of_entry = np.empty(rids.size, dtype=np.int64)
        for lo in range(0, rids.size, per_page):
            hi = min(lo + per_page, rids.size)
            page_id = self.store.allocate(
                ("idistance-data", len(self.partitions), lo, hi),
                vector_bytes(width) * (hi - lo),
            )
            page_of_entry[lo:hi] = page_id
        self.partitions.append(
            _Partition(
                index=len(self.partitions),
                subspace=subspace,
                centroid=centroid,
                vectors=vectors,
                rids=rids,
                offsets=offsets,
                page_of_entry=page_of_entry,
                min_radius=float(offsets[0]) if offsets.size else 0.0,
                max_radius=float(offsets[-1]) if offsets.size else 0.0,
            )
        )

    def _build_rid_map(self) -> np.ndarray:
        location = np.full((self.reduced.n_points, 2), -1, dtype=np.int64)
        for partition in self.partitions:
            location[partition.rids, 0] = partition.index
            location[partition.rids, 1] = np.arange(partition.size)
        return location

    def _bulk_load_tree(self) -> None:
        keys: List[float] = []
        rids: List[int] = []
        for partition in self.partitions:
            base = partition.index * self.c
            keys.extend((base + partition.offsets).tolist())
            rids.extend(partition.rids.tolist())
        self.tree.bulk_load(keys, rids)

    # ------------------------------------------------------------------
    # dynamic insertion (the §5 auxiliary arrays exist for this)
    # ------------------------------------------------------------------

    def insert(
        self, point: np.ndarray, rid: int, beta: float = 0.1
    ) -> int:
        """Insert a new point, routing it like the paper's dynamic insert:
        the subspace with the smallest ProjDist_r hosts the point if that
        distance is within β, otherwise it joins the outlier partition.

        The point's key goes into the shared B+-tree; its vector joins the
        partition's delta store (a main+delta layout: bulk-loaded arrays
        stay immutable, deltas are scored on first contact by a query).
        Returns the partition index used.

        Raises ``ValueError`` if the point's key offset would not fit the
        partition's key range (the stretch constant ``c`` is fixed at
        build time) or if no outlier partition exists to absorb a
        non-conforming point.
        """
        point = self._prepare_point(point)
        best: Optional[_Partition] = None
        best_dist = np.inf
        for partition in self.partitions:
            if partition.subspace is None:
                continue
            dist = float(partition.subspace.proj_dist_r(point)[0])
            if dist < best_dist:
                best, best_dist = partition, dist
        if best is None or best_dist > beta:
            outliers = [
                p for p in self.partitions if p.subspace is None
            ]
            if not outliers:
                raise ValueError(
                    "point fits no subspace within beta and the index was "
                    "built without an outlier partition"
                )
            best = outliers[0]

        vector = best.project_query(point)
        offset = float(np.linalg.norm(vector - best.centroid))
        # Keys must stay inside the partition's [i*c, (i+1)*c) range — except
        # in the *last* partition (the outlier set, when present), above
        # whose range no other partition lives.
        if offset >= self.c and best.index != len(self.partitions) - 1:
            raise ValueError(
                f"key offset {offset:.4f} exceeds the partition stretch "
                f"constant c={self.c:.4f}; rebuild the index to extend "
                "its key space"
            )
        rid = int(rid)
        if rid in getattr(self, "_tombstones", ()):
            raise ValueError(
                f"rid {rid} was deleted from this index; deleted ids "
                "cannot be reused before a rebuild"
            )
        self._note_routed_insert(
            best.index if best.subspace is not None else -1, best_dist
        )
        with self._wal_txn("insert") as txn:
            self.tree.insert(best.index * self.c + offset, rid)
            best.delta_vectors.append(vector)
            best.delta_rids.append(rid)
            self._delta_location[rid] = (
                best.index,
                best.rids.size + len(best.delta_rids) - 1,
            )
            best.max_radius = max(best.max_radius, offset)
            best.min_radius = min(best.min_radius, offset)
            # Delta vectors pack into pages of their own (charged on scan).
            per_page = max(
                1, PAGE_SIZE // max(1, vector_bytes(vector.shape[0]))
            )
            if len(best.delta_rids) > len(best.delta_pages) * per_page:
                best.delta_pages.append(
                    self.store.allocate(
                        ("idistance-delta", best.index,
                         len(best.delta_pages)),
                        0,
                    )
                )
            self.n_inserted = getattr(self, "n_inserted", 0) + 1
            if txn is not None:
                txn.set_meta(
                    {
                        "kind": "insert",
                        "rid": rid,
                        "partition": best.index,
                        "vector": vector,
                        "delta_pages": list(best.delta_pages),
                        "min_radius": best.min_radius,
                        "max_radius": best.max_radius,
                        **self._tree_meta(),
                    }
                )
        return best.index

    def delete(self, rid: int) -> int:
        """Delete a record id: remove its B+-tree entry physically and
        tombstone the rid (the immutable vector arrays keep the dead entry;
        scans still score it but filter it from results).  Returns the
        partition index the rid lived in.  Raises ``KeyError`` for unknown
        or already-deleted rids.
        """
        rid = int(rid)
        part_idx, position = self.locate(rid)
        partition = self.partitions[part_idx]
        # Reconstruct the entry's key exactly as insertion computed it —
        # bulk keys came from the stored offsets, delta keys from
        # ||vector - centroid|| — so the float is bit-identical.
        if position < partition.rids.size:
            offset = float(partition.offsets[position])
        else:
            vector = partition.delta_vectors[
                position - partition.rids.size
            ]
            offset = float(np.linalg.norm(vector - partition.centroid))
        with self._wal_txn("delete") as txn:
            self.tree.delete(part_idx * self.c + offset, rid)
            self._tombstones.add(rid)
            if txn is not None:
                txn.set_meta(
                    {"kind": "delete", "rid": rid, **self._tree_meta()}
                )
        return part_idx

    def _tree_meta(self) -> dict:
        """The B+-tree's in-memory scalars, for a commit after-image
        (page contents are redone physically; these are not page-resident)."""
        return {
            "tree_root": self.tree.root_page,
            "tree_height": self.tree.height,
            "tree_n_entries": self.tree.n_entries,
            "tree_first_leaf": self.tree._first_leaf,
        }

    def _apply_recovery_meta(self, meta: dict) -> None:
        if not hasattr(self, "_tombstones"):
            self._tombstones = set()
        kind = meta["kind"]
        if kind == "insert":
            partition = self.partitions[meta["partition"]]
            vector = np.asarray(meta["vector"], dtype=np.float64)
            partition.delta_vectors.append(vector)
            partition.delta_rids.append(int(meta["rid"]))
            partition.delta_pages = list(meta["delta_pages"])
            partition.min_radius = float(meta["min_radius"])
            partition.max_radius = float(meta["max_radius"])
            self._delta_location[int(meta["rid"])] = (
                partition.index,
                partition.rids.size + len(partition.delta_rids) - 1,
            )
            self.n_inserted = getattr(self, "n_inserted", 0) + 1
        elif kind == "delete":
            self._tombstones.add(int(meta["rid"]))
        else:
            raise ValueError(f"unknown recovery meta kind {kind!r}")
        self.tree.root_page = meta["tree_root"]
        self.tree.height = meta["tree_height"]
        self.tree.n_entries = meta["tree_n_entries"]
        self.tree._first_leaf = meta["tree_first_leaf"]

    def locate(self, rid: int) -> Tuple[int, int]:
        """Where a record id lives: ``(partition_index, position)``.

        ``position`` indexes the partition's key-ordered layout: positions
        below ``partition.rids.size`` address the bulk-loaded arrays
        (``partition.vectors[position]``); positions at or above it address
        the delta store (``position - partition.rids.size`` into
        ``partition.delta_vectors``), in insertion order.  Bulk locations
        come from the rid map built at load time; dynamic inserts register
        themselves as they arrive.  Raises ``KeyError`` for unknown rids.
        """
        rid = int(rid)
        if rid in getattr(self, "_tombstones", ()):
            raise KeyError(f"rid {rid} was deleted from the index")
        if (
            0 <= rid < self._rid_location.shape[0]
            and self._rid_location[rid, 0] >= 0
        ):
            return (
                int(self._rid_location[rid, 0]),
                int(self._rid_location[rid, 1]),
            )
        location = self._delta_location.get(rid)
        if location is None:
            raise KeyError(f"rid {rid} is not in the index")
        return location

    def _approx_rerank_pages(self, rids: np.ndarray) -> np.ndarray:
        """Data page per bulk rid, through the :meth:`locate` rid map:
        the bulk location gives the partition's key-ordered position,
        whose page the bulk load recorded in ``page_of_entry``.  Only
        coded (bulk, live) rids reach rerank — delta entries are scored
        exactly during the scan phase and never rerank."""
        locations = self._rid_location[np.asarray(rids, dtype=np.int64)]
        pages = np.empty(locations.shape[0], dtype=np.int64)
        for pidx in np.unique(locations[:, 0]).tolist():
            mask = locations[:, 0] == pidx
            pages[mask] = self.partitions[pidx].page_of_entry[
                locations[mask, 1]
            ]
        return pages

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> KNNResult:
        if mode != "exact":
            return self._approx_knn(
                query, k, tracer=tracer, mode=mode,
                rerank_depth=rerank_depth,
            )
        query = self._check_query(query)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            self._knn_search, query, k, tracer, tracer=tracer, k=k
        )
        if tracer.enabled:
            tracer.histogram("knn.candidates_per_query").observe(
                stats.distance_computations
            )
            tracer.histogram("knn.pages_per_query").observe(
                stats.page_reads
            )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _knn_search(
        self,
        query: np.ndarray,
        k: int,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = min(k, self.live_count)
        if k <= 0:  # every point deleted — nothing to return
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        # Per-partition query geometry.
        q_proj: List[np.ndarray] = []
        q_dist: List[float] = []
        for partition in self.partitions:
            proj = partition.project_query(query)
            q_proj.append(proj)
            q_dist.append(float(np.linalg.norm(proj - partition.centroid)))

        heap: List[Tuple[float, int]] = []  # max-heap via negated distance

        def kth_best() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(dist: float, rid: int) -> None:
            if len(heap) < k:
                heapq.heappush(heap, (-dist, rid))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, rid))

        scans: List[Optional[Tuple[_DirectionalScan, _DirectionalScan]]] = [
            None
        ] * len(self.partitions)
        max_needed = max(
            (
                q_dist[p.index] + p.max_radius
                for p in self.partitions
                if p.size
            ),
            default=0.0,
        )

        radius = self.radius_step
        expansions = 0
        while True:
            expansions += 1
            # One span per radius expansion: its cost delta is exactly the
            # pages/distances this ΔR step paid across every partition.
            with tracer.span(
                "knn.expand_radius",
                counters=self.counters,
                radius=radius,
                expansion=expansions,
            ) as expand_span:
                for partition in self.partitions:
                    if partition.size == 0:
                        continue
                    with tracer.span(
                        "knn.probe_partition",
                        counters=self.counters,
                        partition=partition.index,
                        outliers=partition.subspace is None,
                    ):
                        self._scan_partition(
                            partition,
                            q_proj[partition.index],
                            q_dist[partition.index],
                            radius,
                            scans,
                            offer,
                            kth_best,
                        )
                if tracer.enabled:
                    expand_span.set(
                        heap_size=len(heap), kth_best=kth_best()
                    )
            if len(heap) == k and kth_best() <= radius:
                break
            if radius > max_needed:
                break
            radius += self.radius_step
        if tracer.enabled:
            tracer.counter("knn.radius_expansions").inc(expansions)
            tracer.histogram(
                "knn.expansions_per_query", buckets=tuple(range(1, 65))
            ).observe(expansions)

        ordered = sorted((-d, rid) for d, rid in heap)
        distances = np.array([d for d, _ in ordered])
        ids = np.array([rid for _, rid in ordered], dtype=np.int64)
        return ids, distances

    def _scan_partition(
        self,
        partition: _Partition,
        q_proj: np.ndarray,
        d_i: float,
        radius: float,
        scans: List[Optional[Tuple[_DirectionalScan, _DirectionalScan]]],
        offer,
        kth_best,
    ) -> None:
        """Advance the partition's two directional scans to cover the key
        interval ``[d_i - radius, d_i + radius]``."""
        idx = partition.index
        if scans[idx] is None:
            # Case 3: no intersection yet — the sphere has not reached the
            # partition's annulus.  Do not open cursors.
            if d_i - radius > partition.max_radius:
                return
            if d_i + radius < partition.min_radius:
                return
            # First contact: position both directions at the entry nearest
            # the query's own offset (clamped into the annulus, which also
            # realizes cases 1, 2 and the interior case).  The tree descent
            # to that leaf is real I/O: internal pages + the landing leaf.
            seek = min(max(d_i, partition.min_radius), partition.max_radius)
            self.tree._descend(idx * self.c + seek)
            pos = int(np.searchsorted(partition.offsets, seek))
            scans[idx] = (
                _DirectionalScan(pos - 1, -1),  # inward/leftward
                _DirectionalScan(pos, +1),  # outward/rightward
            )
            # Dynamically inserted entries (the delta store) are few; score
            # them all on first contact, charging their pages.
            if partition.delta_rids:
                for page in partition.delta_pages:
                    self.pool.read(page)
                block = np.vstack(partition.delta_vectors)
                dists = np.linalg.norm(block - q_proj, axis=1)
                self.counters.count_distance(
                    block.shape[0], dims=max(1, block.shape[1])
                )
                tombs = getattr(self, "_tombstones", ())
                for dist, rid in zip(dists, partition.delta_rids):
                    if rid in tombs:
                        continue
                    offer(float(dist), int(rid))
        inward, outward = scans[idx]
        bound = min(radius, kth_best())
        self._advance(partition, q_proj, d_i, bound, inward, offer, kth_best)
        self._advance(partition, q_proj, d_i, bound, outward, offer, kth_best)

    def _advance(
        self,
        partition: _Partition,
        q_proj: np.ndarray,
        d_i: float,
        bound: float,
        scan: _DirectionalScan,
        offer,
        kth_best,
    ) -> None:
        """Consume, in one vectorized block, every not-yet-visited entry in
        this direction whose key offset is within ``bound`` of ``d_i``.

        The offsets are sorted, so the block boundary is a binary search
        (one key comparison charged per entry, as a literal scan would do);
        the block's leaf pages and data pages are read through the buffer
        pool, and its vectors are scored in a single numpy call.
        """
        if scan.done:
            return
        offsets = partition.offsets
        if scan.step > 0:
            lo = scan.position
            if lo >= offsets.size:
                scan.done = True
                return
            hi = int(np.searchsorted(offsets, d_i + bound, side="right"))
            if hi <= lo:
                return  # resumes if the bound grows next iteration
            positions = np.arange(lo, hi)
            scan.position = hi
            if hi >= offsets.size:
                scan.done = True
        else:
            hi = scan.position  # inclusive
            if hi < 0:
                scan.done = True
                return
            lo = int(np.searchsorted(offsets, d_i - bound, side="left"))
            if lo > hi:
                return
            positions = np.arange(lo, hi + 1)
            scan.position = lo - 1
            if lo == 0:
                scan.done = True

        # I/O: the B+-tree leaf pages covering these entries, then the data
        # pages holding their reduced vectors.  Both are contiguous runs
        # (entries are rank-ordered; partition data pages were allocated
        # consecutively), so the distinct pages are just the endpoints'
        # range.  The LRU pool dedups pages revisited across blocks.
        rank_lo = int(self._rank_base[partition.index]) + int(positions[0])
        rank_hi = int(self._rank_base[partition.index]) + int(positions[-1])
        for leaf_idx in range(
            rank_lo // self._leaf_fill, rank_hi // self._leaf_fill + 1
        ):
            self.pool.read(int(self._leaf_pages[leaf_idx]))
        for page in range(
            int(partition.page_of_entry[positions[0]]),
            int(partition.page_of_entry[positions[-1]]) + 1,
        ):
            self.pool.read(page)

        self.counters.count_key_comparison(positions.size)
        block = partition.vectors[positions]
        dists = np.linalg.norm(block - q_proj, axis=1)
        self.counters.count_distance(
            positions.size, dims=max(1, block.shape[1])
        )
        rids = partition.rids[positions]
        tombs = self._tombstone_array()
        if tombs.size:
            alive = ~np.isin(rids, tombs)
            dists, rids = dists[alive], rids[alive]
        # Pre-filter: a candidate at or beyond the current K-th best can
        # never enter the heap (the bound only tightens).
        current = kth_best()
        if np.isfinite(current):
            keep = dists < current
            dists, rids = dists[keep], rids[keep]
        for dist, rid in zip(dists, rids):
            offer(float(dist), int(rid))

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def _knn_batch(
        self, queries: np.ndarray, k: int, tracer: Tracer
    ) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
        """Shared-scan batch engine, bit-identical to a cold :meth:`knn` loop.

        Every query expands its search radius in lockstep.  Per partition
        and radius step, the still-active queries' directional block
        boundaries come from *vectorized* searchsorted calls (same float
        comparisons as the sequential binary searches), and all of their
        not-yet-visited candidates are scored by ONE gather kernel —
        ``vectors[flat_positions] - q_proj[query_of_entry]`` reduced over
        the last axis — whose entries are bit-identical to the sequential
        per-block norms (see :mod:`repro.linalg.kernels`).  Only top-K heap
        maintenance stays per query, consuming each query's segments in the
        sequential order (inward then outward, ascending positions, with
        the k-th-best pre-filter refreshed between segments) so heap tie
        behavior is preserved exactly.

        I/O is not replayed through the shared buffer pool — interleaving
        queries would corrupt the per-query cold-cache page accounting.
        Each query instead logs its page-read sequence in a
        :class:`_QueryLedger` (tree descents replayed via
        :meth:`~repro.btree.tree.BPlusTree.descend_path`) and settles it
        against an exact LRU replay at the end; the batch totals are then
        folded into the index's own counters.
        """
        n_queries = queries.shape[0]
        if n_queries == 0:
            return (
                np.empty((0, 0), dtype=np.int64),
                np.empty((0, 0), dtype=np.float64),
                [],
            )
        k_eff = min(k, self.live_count)
        if k_eff <= 0:  # every point deleted — nothing to return
            zero = QueryStats(0, 0, 0, 0, 0.0)
            return (
                np.empty((n_queries, 0), dtype=np.int64),
                np.empty((n_queries, 0), dtype=np.float64),
                [zero] * n_queries,
            )
        n_parts = len(self.partitions)
        tombs = self._tombstone_array()
        tomb_set = getattr(self, "_tombstones", ())

        # Per-partition query geometry.  Projections stay per-query gemv
        # calls (a stacked gemm is NOT bit-identical to gemv rows — see
        # repro.linalg.kernels), gathered into one (Q, width) array per
        # partition so the scan kernels can index rows by query.
        q_proj: List[np.ndarray] = []
        q_dist = np.empty((n_parts, n_queries), dtype=np.float64)
        with tracer.span(
            "knn.batch.project_queries",
            n_queries=n_queries,
            partitions=n_parts,
        ):
            for partition in self.partitions:
                block = np.empty(
                    (n_queries, partition.vectors.shape[1]),
                    dtype=np.float64,
                )
                centroid = partition.centroid
                row = q_dist[partition.index]
                subspace = partition.subspace
                # sqrt(x·x) below is bit-identical to np.linalg.norm on
                # a 1-d vector (norm computes exactly this) at a fraction
                # of the call overhead; the projection keeps the same
                # per-query `(q - mean) @ basis` gemv as project().
                if subspace is not None:
                    mean, basis = subspace.mean, subspace.basis
                    for i in range(n_queries):
                        proj = (queries[i] - mean) @ basis
                        block[i] = proj
                        diff = proj - centroid
                        row[i] = math.sqrt(float(np.dot(diff, diff)))
                else:
                    block[:] = queries
                    for i in range(n_queries):
                        diff = queries[i] - centroid
                        row[i] = math.sqrt(float(np.dot(diff, diff)))
                q_proj.append(block)

        # Frozen copies of each partition's delta store (dynamic inserts).
        delta_blocks: List[Optional[np.ndarray]] = [
            np.vstack(p.delta_vectors) if p.delta_rids else None
            for p in self.partitions
        ]

        sizes = np.array(
            [p.size for p in self.partitions], dtype=np.int64
        )
        live = sizes > 0
        if live.any():
            radii = np.array([p.max_radius for p in self.partitions])
            max_needed = (q_dist[live] + radii[live, None]).max(axis=0)
        else:
            max_needed = np.zeros(n_queries)

        heaps: List[List[Tuple[float, int]]] = [
            [] for _ in range(n_queries)
        ]
        # Heap representation is *lazy*: after a vectorized top-K merge the
        # list holds the exact content but not heap order, flagged here, and
        # is heapified on demand before any heapq operation — heapify of
        # equivalent content is exact, so behavior is unchanged.  heap_dist
        # caches the content's distances (aligned with the list) so the
        # next merge can reuse them instead of re-extracting per entry.
        heap_lazy = bytearray(n_queries)
        heap_dist: List[Optional[np.ndarray]] = [None] * n_queries
        kth = np.full(n_queries, np.inf)
        active = np.ones(n_queries, dtype=bool)
        contacted = np.zeros((n_parts, n_queries), dtype=bool)
        in_pos = np.zeros((n_parts, n_queries), dtype=np.int64)
        out_pos = np.zeros((n_parts, n_queries), dtype=np.int64)
        ledgers = [_QueryLedger() for _ in range(n_queries)]
        total_expansions = 0

        leaf_pages = self._leaf_pages
        # Bulk-loaded leaves get consecutive page ids; record leaf runs as
        # ranges when that holds, else as per-leaf singletons.
        leaf_runs = leaf_pages.size <= 1 or bool(
            (np.diff(leaf_pages) == 1).all()
        )
        fill = self._leaf_fill
        radius = self.radius_step

        def probe(partition: _Partition, act: np.ndarray) -> None:
            """Advance every active query's scan of one partition to cover
            the key interval ``[d_i - radius, d_i + radius]``."""
            p = partition.index
            offsets = partition.offsets
            bulk = offsets.size
            Qp = q_proj[p]
            width_charge = max(1, partition.vectors.shape[1])

            # First contact per query: the annulus-intersection gate, the
            # tree descent to the seek leaf, and the delta-store scoring —
            # identical to the sequential scan's cursor opening.
            fresh = act[~contacted[p, act]]
            if fresh.size:
                d_f = q_dist[p, fresh]
                touch = (d_f - radius <= partition.max_radius) & (
                    d_f + radius >= partition.min_radius
                )
                for qi in fresh[touch].tolist():
                    d_i = float(q_dist[p, qi])
                    led = ledgers[qi]
                    seek = min(
                        max(d_i, partition.min_radius),
                        partition.max_radius,
                    )
                    pages, comps = self.tree.descend_path(
                        p * self.c + seek
                    )
                    for page in pages:
                        led.read_range(page, page)
                    led.key_comparisons += comps
                    pos = int(np.searchsorted(offsets, seek))
                    in_pos[p, qi] = pos - 1
                    out_pos[p, qi] = pos
                    contacted[p, qi] = True
                    if partition.delta_rids:
                        for page in partition.delta_pages:
                            led.read_range(page, page)
                        dblock = delta_blocks[p]
                        ddists = np.linalg.norm(dblock - Qp[qi], axis=1)
                        led.distance_computations += dblock.shape[0]
                        led.distance_flops += dblock.shape[0] * max(
                            1, dblock.shape[1]
                        )
                        heap = heaps[qi]
                        if heap_lazy[qi]:
                            heapq.heapify(heap)
                            heap_lazy[qi] = 0
                        heap_dist[qi] = None
                        for dist, rid in zip(
                            ddists.tolist(), partition.delta_rids
                        ):
                            if rid in tomb_set:
                                continue
                            if len(heap) < k_eff:
                                heapq.heappush(heap, (-dist, rid))
                            elif dist < -heap[0][0]:
                                heapq.heapreplace(heap, (-dist, rid))
                        kth[qi] = (
                            -heap[0][0] if len(heap) == k_eff else np.inf
                        )

            sub = act[contacted[p, act]]
            if sub.size == 0 or bulk == 0:
                return
            d_vec = q_dist[p, sub]
            # Per-query search bound, then both directions' block
            # boundaries, all in four vectorized searchsorted/compare ops.
            # Position bookkeeping mirrors _advance exactly: an exhausted
            # direction parks at -1 (inward) or bulk (outward).
            bound = np.minimum(radius, kth[sub])
            i_hi = in_pos[p, sub]  # inclusive
            i_lo = np.searchsorted(offsets, d_vec - bound, side="left")
            i_has = (i_hi >= 0) & (i_lo <= i_hi)
            o_lo = out_pos[p, sub]
            o_hi = np.searchsorted(offsets, d_vec + bound, side="right")
            o_has = (o_lo < bulk) & (o_hi > o_lo)
            if not (i_has.any() or o_has.any()):
                return
            in_start = np.where(i_has, i_lo, 0)
            in_stop = np.where(i_has, i_hi + 1, 0)
            out_start = np.where(o_has, o_lo, 0)
            out_stop = np.where(o_has, o_hi, 0)
            in_pos[p, sub[i_has]] = i_lo[i_has] - 1
            out_pos[p, sub[o_has]] = o_hi[o_has]

            # Interleave [inward, outward] segments per query.  Long
            # segments are scored per segment on contiguous views (the
            # very op the sequential scan runs — no gather copies);
            # everything shorter is batched into ONE gather kernel so
            # small per-query slabs don't pay numpy call overhead each.
            starts = np.column_stack([in_start, out_start]).ravel()
            stops = np.column_stack([in_stop, out_stop]).ravel()
            lens = stops - starts
            if not lens.any():
                return
            small = lens < _BATCH_SEG_VIEW_MIN
            small_lens = np.where(small, lens, 0)
            flat = multi_arange(starts, np.where(small, stops, starts))
            if flat.size:
                entry_q = np.repeat(np.repeat(sub, 2), small_lens)
                dists_flat = flat_l2(
                    partition.vectors, flat, Qp, entry_q
                )
                rids_flat = partition.rids[flat]
            seg_start = np.concatenate(
                [[0], np.cumsum(small_lens)[:-1]]
            )
            vectors = partition.vectors
            rids_all = partition.rids
            rank0 = int(self._rank_base[p])
            page_of_entry = partition.page_of_entry

            # Hoist all per-segment I/O-replay lookups out of the Python
            # loop: leaf/data page bounds for every segment in four array
            # ops, materialized as plain-int lists once.  Empty segments
            # (stop == start) index position 0 / start harmlessly; the
            # loop skips them before the values are used.
            safe_hi = np.maximum(stops - 1, starts)
            leaf_a_arr = (rank0 + starts) // fill
            leaf_b_arr = (rank0 + safe_hi) // fill
            if leaf_runs:
                leaf_lo_list = leaf_pages[leaf_a_arr].tolist()
                leaf_hi_list = leaf_pages[leaf_b_arr].tolist()
            else:
                leaf_a_list = leaf_a_arr.tolist()
                leaf_b_list = leaf_b_arr.tolist()
            pg_lo_list = page_of_entry[starts].tolist()
            pg_hi_list = page_of_entry[safe_hi].tolist()
            lens_list = lens.tolist()
            starts_list = starts.tolist()
            small_list = small.tolist()
            seg_start_list = seg_start.tolist()
            sub_list = sub.tolist()

            per_q = lens[0::2] + lens[1::2]
            for j in np.flatnonzero(per_q > 0).tolist():
                qi = sub_list[j]
                led = ledgers[qi]
                heap = heaps[qi]
                for seg in (2 * j, 2 * j + 1):
                    ln = lens_list[seg]
                    if ln == 0:
                        continue
                    # I/O replay: the leaf run covering the block's entry
                    # ranks, then its contiguous data-page run.
                    if leaf_runs:
                        led.read_range(
                            leaf_lo_list[seg], leaf_hi_list[seg]
                        )
                    else:
                        for leaf_idx in range(
                            leaf_a_list[seg], leaf_b_list[seg] + 1
                        ):
                            page = int(leaf_pages[leaf_idx])
                            led.read_range(page, page)
                    led.read_range(pg_lo_list[seg], pg_hi_list[seg])
                    led.key_comparisons += ln
                    led.distance_computations += ln
                    led.distance_flops += ln * width_charge
                    if small_list[seg]:
                        s0 = seg_start_list[seg]
                        seg_d = dists_flat[s0 : s0 + ln]
                        seg_r = rids_flat[s0 : s0 + ln]
                    else:
                        lo_pos = starts_list[seg]
                        # Inline norm: np.linalg.norm(diff, axis=1) IS
                        # sqrt(add.reduce((x.conj()*x).real, axis)) —
                        # same multiplies, same pairwise reduction, same
                        # sqrt — minus the dispatch overhead per call.
                        # In-place squaring/sqrt reuse the temporaries;
                        # the values are the same ops on the same bits.
                        diff = vectors[lo_pos : lo_pos + ln] - Qp[qi]
                        np.multiply(diff, diff, out=diff)
                        seg_d = np.add.reduce(diff, axis=1)
                        np.sqrt(seg_d, out=seg_d)
                        seg_r = rids_all[lo_pos : lo_pos + ln]
                    if tombs.size:
                        alive = ~np.isin(seg_r, tombs)
                        seg_d = seg_d[alive]
                        seg_r = seg_r[alive]
                    # kth[qi] is maintained at every heap mutation, so it
                    # IS the sequential path's "current k-th best" here.
                    current = kth[qi]
                    if current != np.inf:
                        keep = seg_d < current
                        seg_d = seg_d[keep]
                        seg_r = seg_r[keep]
                    if seg_d.size >= 48:
                        # Vectorized top-K merge.  Heap behavior depends
                        # only on heap *content* (heapq always pops the
                        # minimum tuple), and streaming offers with a
                        # strict < keep exactly the k smallest of
                        # {heap ∪ segment} whenever the k-th smallest
                        # distance is unique in that union; only a tie
                        # at the selection boundary is order-dependent,
                        # and then we fall back to the literal offer
                        # loop.  Either way the resulting content — and
                        # so every later comparison — is bit-identical.
                        inc = heap_dist[qi]
                        if inc is None:
                            inc = np.array(
                                [-entry[0] for entry in heap],
                                dtype=np.float64,
                            )
                            heap_dist[qi] = inc
                        union_d = np.concatenate([inc, seg_d])
                        if union_d.size > k_eff:
                            top = np.argpartition(union_d, k_eff - 1)[
                                :k_eff
                            ]
                            boundary = union_d[top].max()
                            if int((union_d == boundary).sum()) == 1:
                                n_inc = len(heap)
                                heap = heaps[qi] = [
                                    heap[t]
                                    if t < n_inc
                                    else (
                                        -float(seg_d[t - n_inc]),
                                        int(seg_r[t - n_inc]),
                                    )
                                    for t in top.tolist()
                                ]
                                heap_dist[qi] = union_d[top]
                                heap_lazy[qi] = 1
                                kth[qi] = boundary
                                continue
                    if heap_lazy[qi]:
                        heapq.heapify(heap)
                        heap_lazy[qi] = 0
                    heap_dist[qi] = None
                    for dist, rid in zip(
                        seg_d.tolist(), seg_r.tolist()
                    ):
                        if len(heap) < k_eff:
                            heapq.heappush(heap, (-dist, rid))
                        elif dist < -heap[0][0]:
                            heapq.heapreplace(heap, (-dist, rid))
                    kth[qi] = (
                        -heap[0][0] if len(heap) == k_eff else np.inf
                    )

        while True:
            act = np.flatnonzero(active)
            if act.size == 0:
                break
            total_expansions += act.size
            with tracer.span(
                "knn.batch.expand_radius",
                radius=radius,
                active_queries=int(act.size),
            ):
                for partition in self.partitions:
                    if partition.size == 0:
                        continue
                    probe(partition, act)
            done = (np.isfinite(kth[act]) & (kth[act] <= radius)) | (
                radius > max_needed[act]
            )
            active[act[done]] = False
            radius += self.radius_step

        # Settle: per-query LRU replay of the recorded page sequences,
        # per-query result ordering, and one fold of the batch totals into
        # the index's counters.
        capacity = self.pool.capacity_pages
        stats: List[QueryStats] = []
        ids = np.empty((n_queries, k_eff), dtype=np.int64)
        distances = np.empty((n_queries, k_eff), dtype=np.float64)
        with tracer.span("knn.batch.settle", n_queries=n_queries):
            logical, physical = _settle_ledgers(ledgers, capacity)
            for qi in range(n_queries):
                led = ledgers[qi]
                ordered = sorted((-d, rid) for d, rid in heaps[qi])
                ids[qi] = [rid for _, rid in ordered]
                distances[qi] = [d for d, _ in ordered]
                stats.append(
                    QueryStats(
                        page_reads=int(physical[qi]),
                        distance_computations=led.distance_computations,
                        distance_flops=led.distance_flops,
                        key_comparisons=led.key_comparisons,
                        cpu_seconds=0.0,
                    )
                )
        self.counters.merge(
            CostSnapshot(
                logical_reads=int(logical.sum()),
                physical_reads=int(physical.sum()),
                key_comparisons=sum(
                    led.key_comparisons for led in ledgers
                ),
                distance_computations=sum(
                    led.distance_computations for led in ledgers
                ),
                distance_flops=sum(
                    led.distance_flops for led in ledgers
                ),
            )
        )
        if tracer.enabled:
            tracer.counter("knn.radius_expansions").inc(total_expansions)
        return ids, distances, stats
