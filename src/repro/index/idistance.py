"""Extended iDistance (§5): one B+-tree over every reduced subspace.

Every partition — each elliptical subspace, plus the outlier set treated as
"a subspace in its original dimensionality" — maps its points to one
dimension with

    key = i * c + dist(P, O_i)

where ``O_i`` is the partition's reference point (the cluster centroid;
the origin of the subspace's axis system for projections) and ``c`` a
stretching constant that range-partitions the key space so partition ``i``
occupies ``[i*c, (i+1)*c)``.  All keys live in a single B+-tree; an
auxiliary array per partition keeps the centroid, principal components and
min/max radius for searching, and covariances for dynamic insertion.

KNN search grows a query sphere iteratively.  For radius ``R`` and the
query's projection ``q_i`` (at distance ``d_i = ||q_i - O_i||`` from the
reference), the annulus geometry gives the paper's three cases:

1. ``d_i <= max_radius`` — the query sits inside the partition's data
   sphere: scan the tree outward in both directions from key
   ``i*c + d_i``.
2. ``d_i > max_radius`` but ``d_i - R <= max_radius`` — the sphere
   intersects from outside: scan inward (leftward) from the partition's
   rim ``i*c + max_radius``.
3. no intersection — skip the partition at this radius.

(The symmetric interior case ``d_i < min_radius`` scans outward from the
inner rim; the paper's figure omits it but correctness requires it.)

The scan prunes with the triangle inequality: an entry with key offset
``o`` has reduced distance at least ``|d_i - o|``, so a direction stops
once ``|d_i - o|`` exceeds the current search bound.  Search terminates
when the K-th best distance is within the searched radius ``R`` — at that
point no unexamined point can score better, because every key interval
within ``R`` of every ``d_i`` has been consumed.  The result is therefore
the *exact* KNN under the reduced-space scoring (the lossiness relative to
the original space is entirely the reduction's, which is what precision
measures).

I/O model: the B+-tree stores (key, rid) entries; the reduced vectors are
packed, in key order, into per-partition data pages read through the buffer
pool when a candidate is scored.  Key order means an expanding scan touches
a contiguous run of data pages — the same locality as storing vectors in
the leaves, with the accounting kept explicit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.subspace import EllipticalSubspace, OutlierSet
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..reduction.base import ReducedDataset
from ..btree.tree import BPlusTree
from ..storage.pager import PAGE_SIZE, vector_bytes
from .base import DEFAULT_POOL_PAGES, KNNResult, VectorIndex

__all__ = ["ExtendedIDistance"]


@dataclass
class _Partition:
    """Search-time state for one subspace (or the outlier set)."""

    index: int
    subspace: Optional[EllipticalSubspace]  # None for the outlier partition
    centroid: np.ndarray  # reference point in the partition's own frame
    vectors: np.ndarray  # (m, width) sorted by key offset
    rids: np.ndarray  # (m,) global point ids, same order
    offsets: np.ndarray  # (m,) = dist(P, O_i), ascending
    page_of_entry: np.ndarray  # (m,) data page id per entry
    min_radius: float
    max_radius: float

    def __post_init__(self) -> None:
        # Dynamically inserted entries live in a main+delta layout: the
        # bulk-loaded arrays stay immutable, inserts append here and the
        # search scores the (small) delta on first contact.
        self.delta_vectors: List[np.ndarray] = []
        self.delta_rids: List[int] = []
        self.delta_pages: List[int] = []

    @property
    def size(self) -> int:
        return self.rids.size + len(self.delta_rids)

    def project_query(self, query: np.ndarray) -> np.ndarray:
        if self.subspace is not None:
            return self.subspace.project(query)
        return np.asarray(query, dtype=np.float64)


class _DirectionalScan:
    """One direction of a partition's expanding scan (entry positions in
    the partition's sorted arrays, advancing by +1 or -1)."""

    def __init__(self, position: int, step: int) -> None:
        self.position = position
        self.step = step
        self.done = False


class ExtendedIDistance(VectorIndex):
    """The paper's extended iDistance over a :class:`ReducedDataset`."""

    name = "iDistance"

    def __init__(
        self,
        reduced: ReducedDataset,
        radius_step: Optional[float] = None,
        pool_pages: int = DEFAULT_POOL_PAGES,
    ) -> None:
        super().__init__(pool_pages=pool_pages)
        self.reduced = reduced
        self.partitions: List[_Partition] = []
        self._build_partitions()
        radii = [p.max_radius for p in self.partitions] or [1.0]
        global_max = max(radii)
        #: Key-space stretch constant: strictly larger than any offset.
        self.c = global_max * 1.01 + 1e-9
        #: Radius increment per search iteration (ΔR).  Default: 5% of the
        #: largest partition radius — small enough to stop early, large
        #: enough to converge in a few iterations.
        self.radius_step = (
            radius_step if radius_step is not None else global_max * 0.05
        )
        if self.radius_step <= 0:
            self.radius_step = 1e-6
        self._rid_location = self._build_rid_map()
        self.tree = BPlusTree(self.store, self.pool)
        self._bulk_load_tree()
        # Entry rank -> leaf page, for charging tree I/O during scans: the
        # bulk load packs `fill` entries per leaf in key order, and key
        # order equals concatenated partition order.
        self._leaf_fill = max(2, int(self.tree.leaf_capacity * 0.9))
        self._leaf_pages = np.asarray(
            self.tree.leaf_page_ids(), dtype=np.int64
        )
        sizes = [p.size for p in self.partitions]
        self._rank_base = np.concatenate(
            [[0], np.cumsum(sizes)]
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_partitions(self) -> None:
        for subspace in self.reduced.subspaces:
            vectors = subspace.projections
            offsets = np.linalg.norm(vectors, axis=1)
            self._add_partition(
                subspace=subspace,
                centroid=np.zeros(subspace.reduced_dim),
                vectors=vectors,
                rids=subspace.member_ids,
                offsets=offsets,
            )
        outliers = self.reduced.outliers
        if outliers.size:
            offsets = np.linalg.norm(
                outliers.points - outliers.centroid, axis=1
            )
            self._add_partition(
                subspace=None,
                centroid=outliers.centroid,
                vectors=outliers.points,
                rids=outliers.member_ids,
                offsets=offsets,
            )

    def _add_partition(
        self,
        subspace: Optional[EllipticalSubspace],
        centroid: np.ndarray,
        vectors: np.ndarray,
        rids: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        order = np.argsort(offsets, kind="stable")
        vectors = np.ascontiguousarray(vectors[order])
        rids = rids[order]
        offsets = offsets[order]
        width = vectors.shape[1]
        per_page = max(1, PAGE_SIZE // max(1, vector_bytes(width)))
        page_of_entry = np.empty(rids.size, dtype=np.int64)
        for lo in range(0, rids.size, per_page):
            hi = min(lo + per_page, rids.size)
            page_id = self.store.allocate(
                ("idistance-data", len(self.partitions), lo, hi),
                vector_bytes(width) * (hi - lo),
            )
            page_of_entry[lo:hi] = page_id
        self.partitions.append(
            _Partition(
                index=len(self.partitions),
                subspace=subspace,
                centroid=centroid,
                vectors=vectors,
                rids=rids,
                offsets=offsets,
                page_of_entry=page_of_entry,
                min_radius=float(offsets[0]) if offsets.size else 0.0,
                max_radius=float(offsets[-1]) if offsets.size else 0.0,
            )
        )

    def _build_rid_map(self) -> np.ndarray:
        location = np.full((self.reduced.n_points, 2), -1, dtype=np.int64)
        for partition in self.partitions:
            location[partition.rids, 0] = partition.index
            location[partition.rids, 1] = np.arange(partition.size)
        return location

    def _bulk_load_tree(self) -> None:
        keys: List[float] = []
        rids: List[int] = []
        for partition in self.partitions:
            base = partition.index * self.c
            keys.extend((base + partition.offsets).tolist())
            rids.extend(partition.rids.tolist())
        self.tree.bulk_load(keys, rids)

    # ------------------------------------------------------------------
    # dynamic insertion (the §5 auxiliary arrays exist for this)
    # ------------------------------------------------------------------

    def insert(
        self, point: np.ndarray, rid: int, beta: float = 0.1
    ) -> int:
        """Insert a new point, routing it like the paper's dynamic insert:
        the subspace with the smallest ProjDist_r hosts the point if that
        distance is within β, otherwise it joins the outlier partition.

        The point's key goes into the shared B+-tree; its vector joins the
        partition's delta store (a main+delta layout: bulk-loaded arrays
        stay immutable, deltas are scored on first contact by a query).
        Returns the partition index used.

        Raises ``ValueError`` if the point's key offset would not fit the
        partition's key range (the stretch constant ``c`` is fixed at
        build time) or if no outlier partition exists to absorb a
        non-conforming point.
        """
        point = np.asarray(point, dtype=np.float64)
        best: Optional[_Partition] = None
        best_dist = np.inf
        for partition in self.partitions:
            if partition.subspace is None:
                continue
            dist = float(partition.subspace.proj_dist_r(point)[0])
            if dist < best_dist:
                best, best_dist = partition, dist
        if best is None or best_dist > beta:
            outliers = [
                p for p in self.partitions if p.subspace is None
            ]
            if not outliers:
                raise ValueError(
                    "point fits no subspace within beta and the index was "
                    "built without an outlier partition"
                )
            best = outliers[0]

        vector = best.project_query(point)
        offset = float(np.linalg.norm(vector - best.centroid))
        # Keys must stay inside the partition's [i*c, (i+1)*c) range — except
        # in the *last* partition (the outlier set, when present), above
        # whose range no other partition lives.
        if offset >= self.c and best.index != len(self.partitions) - 1:
            raise ValueError(
                f"key offset {offset:.4f} exceeds the partition stretch "
                f"constant c={self.c:.4f}; rebuild the index to extend "
                "its key space"
            )
        self.tree.insert(best.index * self.c + offset, int(rid))
        best.delta_vectors.append(vector)
        best.delta_rids.append(int(rid))
        best.max_radius = max(best.max_radius, offset)
        best.min_radius = min(best.min_radius, offset)
        # Delta vectors pack into pages of their own (charged on scan).
        per_page = max(
            1, PAGE_SIZE // max(1, vector_bytes(vector.shape[0]))
        )
        if len(best.delta_rids) > len(best.delta_pages) * per_page:
            best.delta_pages.append(
                self.store.allocate(
                    ("idistance-delta", best.index,
                     len(best.delta_pages)),
                    0,
                )
            )
        self.n_inserted = getattr(self, "n_inserted", 0) + 1
        return best.index

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
    ) -> KNNResult:
        query = np.asarray(query, dtype=np.float64)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            self._knn_search, query, k, tracer, tracer=tracer
        )
        if tracer.enabled:
            tracer.histogram("knn.candidates_per_query").observe(
                stats.distance_computations
            )
            tracer.histogram("knn.pages_per_query").observe(
                stats.page_reads
            )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _knn_search(
        self,
        query: np.ndarray,
        k: int,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = min(
            k, self.reduced.n_points + getattr(self, "n_inserted", 0)
        )
        # Per-partition query geometry.
        q_proj: List[np.ndarray] = []
        q_dist: List[float] = []
        for partition in self.partitions:
            proj = partition.project_query(query)
            q_proj.append(proj)
            q_dist.append(float(np.linalg.norm(proj - partition.centroid)))

        heap: List[Tuple[float, int]] = []  # max-heap via negated distance

        def kth_best() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def offer(dist: float, rid: int) -> None:
            if len(heap) < k:
                heapq.heappush(heap, (-dist, rid))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, rid))

        scans: List[Optional[Tuple[_DirectionalScan, _DirectionalScan]]] = [
            None
        ] * len(self.partitions)
        max_needed = max(
            (
                q_dist[p.index] + p.max_radius
                for p in self.partitions
                if p.size
            ),
            default=0.0,
        )

        radius = self.radius_step
        expansions = 0
        while True:
            expansions += 1
            # One span per radius expansion: its cost delta is exactly the
            # pages/distances this ΔR step paid across every partition.
            with tracer.span(
                "knn.expand_radius",
                counters=self.counters,
                radius=radius,
                expansion=expansions,
            ) as expand_span:
                for partition in self.partitions:
                    if partition.size == 0:
                        continue
                    with tracer.span(
                        "knn.probe_partition",
                        counters=self.counters,
                        partition=partition.index,
                        outliers=partition.subspace is None,
                    ):
                        self._scan_partition(
                            partition,
                            q_proj[partition.index],
                            q_dist[partition.index],
                            radius,
                            scans,
                            offer,
                            kth_best,
                        )
                if tracer.enabled:
                    expand_span.set(
                        heap_size=len(heap), kth_best=kth_best()
                    )
            if len(heap) == k and kth_best() <= radius:
                break
            if radius > max_needed:
                break
            radius += self.radius_step
        if tracer.enabled:
            tracer.counter("knn.radius_expansions").inc(expansions)
            tracer.histogram(
                "knn.expansions_per_query", buckets=tuple(range(1, 65))
            ).observe(expansions)

        ordered = sorted((-d, rid) for d, rid in heap)
        distances = np.array([d for d, _ in ordered])
        ids = np.array([rid for _, rid in ordered], dtype=np.int64)
        return ids, distances

    def _scan_partition(
        self,
        partition: _Partition,
        q_proj: np.ndarray,
        d_i: float,
        radius: float,
        scans: List[Optional[Tuple[_DirectionalScan, _DirectionalScan]]],
        offer,
        kth_best,
    ) -> None:
        """Advance the partition's two directional scans to cover the key
        interval ``[d_i - radius, d_i + radius]``."""
        idx = partition.index
        if scans[idx] is None:
            # Case 3: no intersection yet — the sphere has not reached the
            # partition's annulus.  Do not open cursors.
            if d_i - radius > partition.max_radius:
                return
            if d_i + radius < partition.min_radius:
                return
            # First contact: position both directions at the entry nearest
            # the query's own offset (clamped into the annulus, which also
            # realizes cases 1, 2 and the interior case).  The tree descent
            # to that leaf is real I/O: internal pages + the landing leaf.
            seek = min(max(d_i, partition.min_radius), partition.max_radius)
            self.tree._descend(idx * self.c + seek)
            pos = int(np.searchsorted(partition.offsets, seek))
            scans[idx] = (
                _DirectionalScan(pos - 1, -1),  # inward/leftward
                _DirectionalScan(pos, +1),  # outward/rightward
            )
            # Dynamically inserted entries (the delta store) are few; score
            # them all on first contact, charging their pages.
            if partition.delta_rids:
                for page in partition.delta_pages:
                    self.pool.read(page)
                block = np.vstack(partition.delta_vectors)
                dists = np.linalg.norm(block - q_proj, axis=1)
                self.counters.count_distance(
                    block.shape[0], dims=max(1, block.shape[1])
                )
                for dist, rid in zip(dists, partition.delta_rids):
                    offer(float(dist), int(rid))
        inward, outward = scans[idx]
        bound = min(radius, kth_best())
        self._advance(partition, q_proj, d_i, bound, inward, offer, kth_best)
        self._advance(partition, q_proj, d_i, bound, outward, offer, kth_best)

    def _advance(
        self,
        partition: _Partition,
        q_proj: np.ndarray,
        d_i: float,
        bound: float,
        scan: _DirectionalScan,
        offer,
        kth_best,
    ) -> None:
        """Consume, in one vectorized block, every not-yet-visited entry in
        this direction whose key offset is within ``bound`` of ``d_i``.

        The offsets are sorted, so the block boundary is a binary search
        (one key comparison charged per entry, as a literal scan would do);
        the block's leaf pages and data pages are read through the buffer
        pool, and its vectors are scored in a single numpy call.
        """
        if scan.done:
            return
        offsets = partition.offsets
        if scan.step > 0:
            lo = scan.position
            if lo >= offsets.size:
                scan.done = True
                return
            hi = int(np.searchsorted(offsets, d_i + bound, side="right"))
            if hi <= lo:
                return  # resumes if the bound grows next iteration
            positions = np.arange(lo, hi)
            scan.position = hi
            if hi >= offsets.size:
                scan.done = True
        else:
            hi = scan.position  # inclusive
            if hi < 0:
                scan.done = True
                return
            lo = int(np.searchsorted(offsets, d_i - bound, side="left"))
            if lo > hi:
                return
            positions = np.arange(lo, hi + 1)
            scan.position = lo - 1
            if lo == 0:
                scan.done = True

        # I/O: the B+-tree leaf pages covering these entries, then the data
        # pages holding their reduced vectors.  Both are contiguous runs
        # (entries are rank-ordered; partition data pages were allocated
        # consecutively), so the distinct pages are just the endpoints'
        # range.  The LRU pool dedups pages revisited across blocks.
        rank_lo = int(self._rank_base[partition.index]) + int(positions[0])
        rank_hi = int(self._rank_base[partition.index]) + int(positions[-1])
        for leaf_idx in range(
            rank_lo // self._leaf_fill, rank_hi // self._leaf_fill + 1
        ):
            self.pool.read(int(self._leaf_pages[leaf_idx]))
        for page in range(
            int(partition.page_of_entry[positions[0]]),
            int(partition.page_of_entry[positions[-1]]) + 1,
        ):
            self.pool.read(page)

        self.counters.count_key_comparison(positions.size)
        block = partition.vectors[positions]
        dists = np.linalg.norm(block - q_proj, axis=1)
        self.counters.count_distance(
            positions.size, dims=max(1, block.shape[1])
        )
        rids = partition.rids[positions]
        # Pre-filter: a candidate at or beyond the current K-th best can
        # never enter the heap (the bound only tightens).
        current = kth_best()
        if np.isfinite(current):
            keep = dists < current
            dists, rids = dists[keep], rids[keep]
        for dist, rid in zip(dists, rids):
            offer(float(dist), int(rid))
