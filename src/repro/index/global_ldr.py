"""gLDR: the Global Index of the LDR paper — one Hybrid tree per cluster.

This is the third indexing scheme of Figures 9/10: reduced clusters each get
their own multi-dimensional index (a Hybrid tree), and an in-memory array
keeps each cluster's reference frame so a query can be projected per
cluster.  KNN search runs a single best-first queue *across* all trees,
seeded with each root's MINDIST, so the global K-th-best distance prunes
every tree simultaneously; outliers (stored at full dimensionality) are
scanned sequentially, exactly as the reduced clusters' leftovers are
handled in the LDR paper.

Scoring matches the extended iDistance: within-cluster reduced L2 (a lower
bound of the true distance), full L2 for outliers — so precision
comparisons between the schemes are apples to apples and the cost
difference is purely structural.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..reduction.base import ReducedDataset
from ..storage.pager import pages_for_vectors
from .base import DEFAULT_POOL_PAGES, KNNResult, VectorIndex
from .hybrid_tree import HybridTree

__all__ = ["GlobalLDRIndex"]


class GlobalLDRIndex(VectorIndex):
    """One Hybrid tree per reduced cluster + sequential outlier scan."""

    name = "gLDR"

    def __init__(
        self,
        reduced: ReducedDataset,
        pool_pages: int = DEFAULT_POOL_PAGES,
    ) -> None:
        super().__init__(pool_pages=pool_pages)
        self.reduced = reduced
        self.trees: List[HybridTree] = []
        for subspace in reduced.subspaces:
            self.trees.append(
                HybridTree(
                    self.store,
                    self.pool,
                    subspace.projections,
                    subspace.member_ids,
                )
            )
        self.outlier_pages = pages_for_vectors(
            reduced.outliers.size, reduced.dimensionality
        )
        for _ in range(self.outlier_pages):
            self.store.allocate(("gldr-outliers",), 0)

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
    ) -> KNNResult:
        query = np.asarray(query, dtype=np.float64)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            self._search, query, k, tracer, tracer=tracer
        )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _search(
        self,
        query: np.ndarray,
        k: int,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = min(k, self.reduced.n_points)
        results: List[Tuple[float, int]] = []  # max-heap via negation

        def offer(dist: float, rid: int) -> None:
            if len(results) < k:
                heapq.heappush(results, (-dist, rid))
            elif dist < -results[0][0]:
                heapq.heapreplace(results, (-dist, rid))

        # Outliers first: their exact distances tighten the global bound
        # before any tree is descended.
        outliers = self.reduced.outliers
        if outliers.size:
            with tracer.span(
                "gldr.outlier_scan",
                counters=self.counters,
                outliers=int(outliers.size),
            ):
                self.counters.count_sequential_read(self.outlier_pages)
                dists = np.linalg.norm(outliers.points - query, axis=1)
                self.counters.count_distance(
                    outliers.size, dims=self.reduced.dimensionality
                )
                for dist, rid in zip(dists, outliers.member_ids):
                    offer(float(dist), int(rid))

        # One global frontier across every cluster's tree.
        q_proj = [
            self.reduced.subspaces[i].project(query)
            for i in range(len(self.trees))
        ]
        frontier: List[Tuple[float, int, int]] = []
        for tree_idx, tree in enumerate(self.trees):
            heapq.heappush(
                frontier,
                (tree.root_mindist(q_proj[tree_idx]), tree_idx, tree.root_page),
            )

        with tracer.span(
            "gldr.tree_search", counters=self.counters, trees=len(self.trees)
        ) as tree_span:
            expanded = 0
            while frontier:
                mindist, tree_idx, page = heapq.heappop(frontier)
                if len(results) == k and mindist > -results[0][0]:
                    break

                def push(child_mindist: float, child_page: int) -> None:
                    heapq.heappush(
                        frontier, (child_mindist, tree_idx, child_page)
                    )

                self.trees[tree_idx].expand(
                    page, q_proj[tree_idx], push, offer
                )
                expanded += 1
            if tracer.enabled:
                tree_span.set(nodes_expanded=expanded)

        ordered = sorted((-d, rid) for d, rid in results)
        distances = np.array([d for d, _ in ordered])
        ids = np.array([rid for _, rid in ordered], dtype=np.int64)
        return ids, distances
