"""gLDR: the Global Index of the LDR paper — one Hybrid tree per cluster.

This is the third indexing scheme of Figures 9/10: reduced clusters each get
their own multi-dimensional index (a Hybrid tree), and an in-memory array
keeps each cluster's reference frame so a query can be projected per
cluster.  KNN search runs a single best-first queue *across* all trees,
seeded with each root's MINDIST, so the global K-th-best distance prunes
every tree simultaneously; outliers (stored at full dimensionality) are
scanned sequentially, exactly as the reduced clusters' leftovers are
handled in the LDR paper.

Scoring matches the extended iDistance: within-cluster reduced L2 (a lower
bound of the true distance), full L2 for outliers — so precision
comparisons between the schemes are apples to apples and the cost
difference is purely structural.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..linalg.backend import batch_l2_rows
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..reduction.base import ReducedDataset
from ..storage.pager import pages_for_vectors, rows_per_page
from .base import DEFAULT_POOL_PAGES, KNNResult, QueryStats, VectorIndex
from .dynamic import DeltaStore, route_point
from .hybrid_tree import HybridTree

__all__ = ["GlobalLDRIndex"]


class GlobalLDRIndex(VectorIndex):
    """One Hybrid tree per reduced cluster + sequential outlier scan."""

    name = "gLDR"

    def __init__(
        self,
        reduced: ReducedDataset,
        pool_pages: int = DEFAULT_POOL_PAGES,
        store_factory=None,
    ) -> None:
        super().__init__(pool_pages=pool_pages, store_factory=store_factory)
        self.reduced = reduced
        self.trees: List[HybridTree] = []
        for subspace in reduced.subspaces:
            self.trees.append(
                HybridTree(
                    self.store,
                    self.pool,
                    subspace.projections,
                    subspace.member_ids,
                )
            )
        self.outlier_pages = pages_for_vectors(
            reduced.outliers.size, reduced.dimensionality
        )
        self._outlier_page_ids = [
            self.store.allocate(("gldr-outliers",), 0)
            for _ in range(self.outlier_pages)
        ]
        self.delta = DeltaStore("gldr")
        self.n_inserted = 0
        self._tombstones: set = set()

    def _approx_rerank_pages(self, rids: np.ndarray) -> np.ndarray:
        """Data page per bulk rid: the Hybrid-tree leaf that owns the
        row (derived once per index via the accounting-free
        ``leaf_of_rows`` walk), or the outlier page holding the packed
        full-``d`` vector."""
        page_of_rid = getattr(self, "_rerank_page_of_rid", None)
        if page_of_rid is None:
            page_of_rid = np.full(
                self.reduced.n_points, -1, dtype=np.int64
            )
            for tree in self.trees:
                page_of_rid[tree.rids] = tree.leaf_of_rows()
            outliers = self.reduced.outliers
            if outliers.size:
                per_page = rows_per_page(self.reduced.dimensionality)
                pages = np.asarray(
                    self._outlier_page_ids, dtype=np.int64
                )
                rows = np.arange(outliers.size, dtype=np.int64)
                page_of_rid[outliers.member_ids] = pages[
                    np.minimum(rows // per_page, pages.size - 1)
                ]
            self._rerank_page_of_rid = page_of_rid
        return page_of_rid[np.asarray(rids, dtype=np.int64)]

    # ------------------------------------------------------------------
    # online mutation
    # ------------------------------------------------------------------

    def insert(
        self, point: np.ndarray, rid: int, beta: float = 0.1
    ) -> int:
        """Insert a point into the index's delta store, routed like the
        paper's dynamic insert (nearest subspace within β, else outlier).
        The delta rides alongside the Hybrid trees and is scanned by every
        query.  Returns the subspace index used (-1 for outlier/full-d)."""
        point = self._prepare_point(point)
        rid = int(rid)
        if rid in self._tombstones:
            raise ValueError(
                f"rid {rid} was deleted from this index; deleted ids "
                "cannot be reused before a rebuild"
            )
        sidx, vector, residual = route_point(self.reduced, point, beta)
        self._note_routed_insert(sidx, residual)
        with self._wal_txn("insert") as txn:
            self.delta.add(self.store, rid, sidx, vector)
            self.n_inserted += 1
            if txn is not None:
                txn.set_meta(
                    {
                        "kind": "insert",
                        "rid": rid,
                        "subspace": sidx,
                        "vector": vector,
                        **self.delta.fill_meta(),
                    }
                )
        return sidx

    def delete(self, rid: int) -> None:
        """Tombstone a record id.  Raises ``KeyError`` for unknown or
        already-deleted rids."""
        rid = int(rid)
        if rid in self._tombstones:
            raise KeyError(f"rid {rid} was already deleted")
        if not (0 <= rid < self.reduced.n_points) and (
            rid not in self.delta.rids
        ):
            raise KeyError(f"rid {rid} is not in the index")
        with self._wal_txn("delete") as txn:
            self._tombstones.add(rid)
            if txn is not None:
                txn.set_meta({"kind": "delete", "rid": rid})

    def _apply_recovery_meta(self, meta: dict) -> None:
        if not hasattr(self, "_tombstones"):
            self._tombstones = set()
        kind = meta["kind"]
        if kind == "insert":
            self.delta.apply_insert(
                meta["rid"], meta["subspace"], meta["vector"], meta
            )
            self.n_inserted = getattr(self, "n_inserted", 0) + 1
        elif kind == "delete":
            self._tombstones.add(int(meta["rid"]))
        else:
            raise ValueError(f"unknown recovery meta kind {kind!r}")

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> KNNResult:
        if mode != "exact":
            return self._approx_knn(
                query, k, tracer=tracer, mode=mode,
                rerank_depth=rerank_depth,
            )
        query = self._check_query(query)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            self._search, query, k, tracer, tracer=tracer, k=k
        )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _search(
        self,
        query: np.ndarray,
        k: int,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = min(k, self.live_count)
        q_proj = [
            self.reduced.subspaces[i].project(query)
            for i in range(len(self.trees))
        ]
        return self._search_core(query, k, q_proj, None, tracer)

    def _search_core(
        self,
        query: np.ndarray,
        k: int,
        q_proj: List[np.ndarray],
        outlier_dists: Optional[np.ndarray],
        tracer: Tracer,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Best-first search with the query geometry already computed.

        ``outlier_dists`` optionally carries precomputed exact outlier
        distances (one row of the batch path's full-matrix kernel, which is
        bit-identical to the per-query norm); the I/O and distance
        *accounting* is charged here either way, so batched and sequential
        executions cost the same.
        """
        if k <= 0:  # every point deleted — nothing to return
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        results: List[Tuple[float, int]] = []  # max-heap via negation
        tombs = getattr(self, "_tombstones", ())

        def offer(dist: float, rid: int) -> None:
            if rid in tombs:
                return
            if len(results) < k:
                heapq.heappush(results, (-dist, rid))
            elif dist < -results[0][0]:
                heapq.heapreplace(results, (-dist, rid))

        # Outliers first: their exact distances tighten the global bound
        # before any tree is descended.
        outliers = self.reduced.outliers
        if outliers.size:
            with tracer.span(
                "gldr.outlier_scan",
                counters=self.counters,
                outliers=int(outliers.size),
            ):
                self.counters.count_sequential_read(self.outlier_pages)
                if outlier_dists is None:
                    dists = np.linalg.norm(
                        outliers.points - query, axis=1
                    )
                else:
                    dists = outlier_dists
                self.counters.count_distance(
                    outliers.size, dims=self.reduced.dimensionality
                )
                for dist, rid in zip(dists, outliers.member_ids):
                    offer(float(dist), int(rid))

        # Delta store next (few entries; exact distances, like outliers):
        # scoring it before the trees tightens the bound further.
        delta = getattr(self, "delta", None)
        if delta is not None and len(delta):
            with tracer.span(
                "gldr.delta_scan",
                counters=self.counters,
                entries=len(delta),
            ):
                for page in delta.pages:
                    self.pool.read(page)
                for vec, rid, sidx in delta.entries():
                    ref = q_proj[sidx] if sidx >= 0 else query
                    dist = float(np.linalg.norm(vec - ref))
                    self.counters.count_distance(
                        1, dims=max(1, vec.size)
                    )
                    offer(dist, int(rid))

        # One global frontier across every cluster's tree.
        frontier: List[Tuple[float, int, int]] = []
        for tree_idx, tree in enumerate(self.trees):
            heapq.heappush(
                frontier,
                (tree.root_mindist(q_proj[tree_idx]), tree_idx, tree.root_page),
            )

        with tracer.span(
            "gldr.tree_search", counters=self.counters, trees=len(self.trees)
        ) as tree_span:
            expanded = 0
            while frontier:
                mindist, tree_idx, page = heapq.heappop(frontier)
                if len(results) == k and mindist > -results[0][0]:
                    break

                def push(child_mindist: float, child_page: int) -> None:
                    heapq.heappush(
                        frontier, (child_mindist, tree_idx, child_page)
                    )

                self.trees[tree_idx].expand(
                    page, q_proj[tree_idx], push, offer
                )
                expanded += 1
            if tracer.enabled:
                tree_span.set(nodes_expanded=expanded)

        ordered = sorted((-d, rid) for d, rid in results)
        distances = np.array([d for d, _ in ordered])
        ids = np.array([rid for _, rid in ordered], dtype=np.int64)
        return ids, distances

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def _knn_batch(
        self, queries: np.ndarray, k: int, tracer: Tracer
    ) -> Tuple[np.ndarray, np.ndarray, List[QueryStats]]:
        """Batch execution: one full-matrix outlier kernel, then the
        per-query best-first tree walk.

        The exact outlier distances for the whole workload are computed
        in one :func:`~repro.linalg.kernels.batch_l2_rows` call (each row
        bit-identical to the sequential per-query norm); the Hybrid-tree
        frontier walk is inherently per-query — its expansion order
        depends on the evolving global bound — so it runs sequentially
        with a cache reset and a counter-snapshot diff per query, exactly
        like a cold :meth:`knn` loop.
        """
        n_queries = queries.shape[0]
        if n_queries == 0:
            return (
                np.empty((0, 0), dtype=np.int64),
                np.empty((0, 0), dtype=np.float64),
                [],
            )
        k_eff = min(k, self.live_count)
        outliers = self.reduced.outliers
        outlier_dists: Optional[np.ndarray] = None
        if outliers.size:
            with tracer.span(
                "gldr.batch_outlier_matrix",
                n_queries=n_queries,
                outliers=int(outliers.size),
            ):
                outlier_dists = batch_l2_rows(outliers.points, queries)
        subspaces = self.reduced.subspaces
        id_rows: List[np.ndarray] = []
        dist_rows: List[np.ndarray] = []
        stats: List[QueryStats] = []
        previous_pool_tracer = self.pool.tracer
        self.pool.tracer = tracer if tracer.enabled else None
        try:
            for i in range(n_queries):
                query = queries[i]
                self.reset_cache()
                q_proj = [
                    subspaces[t].project(query)
                    for t in range(len(self.trees))
                ]
                before = self.counters.snapshot()
                ids_i, dists_i = self._search_core(
                    query,
                    k_eff,
                    q_proj,
                    None if outlier_dists is None else outlier_dists[i],
                    tracer,
                )
                stats.append(
                    QueryStats.from_snapshots(
                        before, self.counters.snapshot()
                    )
                )
                id_rows.append(ids_i)
                dist_rows.append(dists_i)
        finally:
            self.pool.tracer = previous_pool_tracer
        return np.vstack(id_rows), np.vstack(dist_rows), stats
