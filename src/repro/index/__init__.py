"""KNN indexes over reduced datasets (the schemes of Figures 9/10).

* :class:`ExtendedIDistance` — the paper's contribution: one B+-tree over
  all subspaces (iMMDR / iLDR depending on which reducer produced the data).
* :class:`GlobalLDRIndex` — the gLDR baseline: one Hybrid tree per cluster.
* :class:`SequentialScan` — the no-index floor/ceiling.

All three score identically (reduced-space L2, full L2 for outliers) and
return exact KNN under that scoring, so any cost difference between them is
purely structural.
"""

from .base import (
    BatchKNNResult,
    InvalidQueryError,
    KNNResult,
    QueryStats,
    VectorIndex,
)
from .global_ldr import GlobalLDRIndex
from .hybrid_tree import HybridTree, hybrid_internal_fanout, hybrid_leaf_capacity
from .idistance import ExtendedIDistance
from .seqscan import SequentialScan

__all__ = [
    "BatchKNNResult",
    "ExtendedIDistance",
    "GlobalLDRIndex",
    "HybridTree",
    "InvalidQueryError",
    "KNNResult",
    "QueryStats",
    "SequentialScan",
    "VectorIndex",
    "hybrid_internal_fanout",
    "hybrid_leaf_capacity",
]
