"""Hybrid tree — the multi-dimensional index under the gLDR baseline.

Chakrabarti & Mehrotra's Hybrid tree (ICDE 1999) is a kd-tree/R-tree hybrid:
internal nodes partition space with single-dimension splits (kd style,
packed many to a disk page) while allowing the relaxed, overlap-tolerant
semantics of data-partitioning trees.  The LDR paper's *Global Index* (gLDR
here) builds one Hybrid tree per reduced cluster.

Our from-scratch implementation keeps the two properties the ICDE-2003 paper
uses to explain gLDR's costs (§6.2):

* **internal nodes carry multi-dimensional geometry** — each child entry
  stores a d_r-dimensional bounding rectangle, so fanout shrinks as
  dimensionality grows (``4096 / (8·d_r + 8)`` children per page vs. the
  B+-tree's constant 256), which is what drives gLDR's I/O past a
  sequential scan at ~20 dimensions;
* **search computes L-norms in the nodes** — pruning requires a
  d_r-dimensional MINDIST per child rectangle, so CPU cost scales with
  dimensionality, unlike iDistance's one-dimensional key comparisons.

Construction is a recursive kd partitioning: split the largest group at the
median of its widest dimension until a node's child count reaches the page
fanout, then recurse.  This yields zero-overlap rectangles (the best case
for the baseline — our gLDR numbers are, if anything, generous to it).
Search is classic best-first branch-and-bound on MINDIST.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from ..storage.buffer import BufferPool
from ..storage.pager import PAGE_SIZE, POINTER_SIZE, RID_SIZE, PageStore, vector_bytes
from ..storage.metrics import CostCounters

__all__ = ["HybridTree", "hybrid_internal_fanout", "hybrid_leaf_capacity"]


def hybrid_internal_fanout(dimensionality: int) -> int:
    """Children per internal page: each child entry needs a d-dimensional
    rectangle (two float32 corners) plus a pointer."""
    entry_bytes = 2 * vector_bytes(dimensionality) + POINTER_SIZE
    return max(2, PAGE_SIZE // entry_bytes)


def hybrid_leaf_capacity(dimensionality: int) -> int:
    """Vectors per leaf page: vector payload plus a record id each."""
    entry_bytes = vector_bytes(dimensionality) + RID_SIZE
    return max(1, PAGE_SIZE // entry_bytes)


@dataclass
class _Leaf:
    rows: np.ndarray  # indices into the tree's vector block

    is_leaf = True


@dataclass
class _Internal:
    child_pages: List[int]
    rect_lo: np.ndarray  # (n_children, d)
    rect_hi: np.ndarray

    is_leaf = False


class HybridTree:
    """One Hybrid tree over a single cluster's reduced vectors.

    The tree shares its owner's page store / buffer pool so that the gLDR
    composite's I/O is accounted in one place.
    """

    def __init__(
        self,
        store: PageStore,
        pool: BufferPool,
        vectors: np.ndarray,
        rids: np.ndarray,
    ) -> None:
        self.store = store
        self.pool = pool
        self.counters: CostCounters = pool.counters
        self.vectors = np.ascontiguousarray(
            np.asarray(vectors, dtype=np.float64)
        )
        self.rids = np.asarray(rids, dtype=np.int64)
        if self.vectors.shape[0] != self.rids.size:
            raise ValueError(
                f"{self.vectors.shape[0]} vectors but {self.rids.size} rids"
            )
        if self.vectors.shape[0] == 0:
            raise ValueError("cannot build a HybridTree over zero vectors")
        self.dimensionality = self.vectors.shape[1]
        self.leaf_capacity = hybrid_leaf_capacity(self.dimensionality)
        self.fanout = hybrid_internal_fanout(self.dimensionality)
        self.root_page = self._build(
            np.arange(self.vectors.shape[0], dtype=np.int64)
        )
        root_block = self.vectors[: self.vectors.shape[0]]
        self.root_lo = root_block.min(axis=0)
        self.root_hi = root_block.max(axis=0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build(self, rows: np.ndarray) -> int:
        if rows.size <= self.leaf_capacity:
            leaf = _Leaf(rows=rows)
            size = rows.size * (
                vector_bytes(self.dimensionality) + RID_SIZE
            )
            return self.store.allocate(leaf, size)

        groups: List[np.ndarray] = [rows]
        # kd-style: repeatedly median-split the largest group on its widest
        # dimension until the node is full (or nothing can split).
        while len(groups) < self.fanout:
            largest_idx = max(
                range(len(groups)), key=lambda g: groups[g].size
            )
            largest = groups[largest_idx]
            if largest.size <= max(2, self.leaf_capacity // 2):
                break
            block = self.vectors[largest]
            spreads = block.max(axis=0) - block.min(axis=0)
            dim = int(np.argmax(spreads))
            if spreads[dim] <= 0.0:
                break  # all duplicates: cannot split further
            order = np.argsort(block[:, dim], kind="stable")
            mid = largest.size // 2
            left, right = largest[order[:mid]], largest[order[mid:]]
            if left.size == 0 or right.size == 0:
                break
            groups[largest_idx] = left
            groups.append(right)

        if len(groups) == 1:
            # Unsplittable oversized group (mass duplicates): oversized leaf
            # spanning multiple pages' worth — charge accordingly.
            leaf = _Leaf(rows=rows)
            pages = -(-rows.size // self.leaf_capacity)
            for _ in range(pages - 1):
                self.store.allocate(("hybrid-overflow",), 0)
            return self.store.allocate(
                leaf,
                min(
                    PAGE_SIZE,
                    rows.size
                    * (vector_bytes(self.dimensionality) + RID_SIZE),
                ),
            )

        child_pages = []
        los, his = [], []
        for group in groups:
            block = self.vectors[group]
            los.append(block.min(axis=0))
            his.append(block.max(axis=0))
            child_pages.append(self._build(group))
        node = _Internal(
            child_pages=child_pages,
            rect_lo=np.vstack(los),
            rect_hi=np.vstack(his),
        )
        size = len(child_pages) * (
            2 * vector_bytes(self.dimensionality) + POINTER_SIZE
        )
        return self.store.allocate(node, min(size, PAGE_SIZE))

    def leaf_of_rows(self) -> np.ndarray:
        """Leaf page id per vector row, by walking the built tree.

        Uses ``raw_fetch`` (a build-time internal: no pool traffic, no
        counters, no injected faults) so callers can derive the physical
        layout — e.g. the approximate tier's rerank I/O charging —
        without perturbing measured state.  Overflow pages of oversized
        duplicate leaves are not represented: every row maps to the leaf
        page that owns its entry.
        """
        out = np.full(self.vectors.shape[0], -1, dtype=np.int64)
        stack = [self.root_page]
        while stack:
            page_id = stack.pop()
            node = self.store.raw_fetch(page_id).payload
            if getattr(node, "is_leaf", False):
                out[node.rows] = page_id
            elif isinstance(node, _Internal):
                stack.extend(node.child_pages)
        return out

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def root_mindist(self, q: np.ndarray) -> float:
        """MINDIST from the query to the tree's bounding box (seed value)."""
        clipped = np.clip(q, self.root_lo, self.root_hi)
        self.counters.count_distance(dims=self.dimensionality)
        return float(np.linalg.norm(q - clipped))

    def expand(
        self,
        page_id: int,
        q: np.ndarray,
        push: Callable[[float, int], None],
        offer: Callable[[float, int], None],
    ) -> None:
        """Process one node: push children (with MINDIST) or score a leaf.

        ``push(mindist, child_page)`` enqueues internal work;
        ``offer(distance, rid)`` reports candidate neighbors.
        Every child-rectangle MINDIST and every leaf-vector distance is a
        d_r-dimensional L-norm, counted as a distance computation.
        """
        node = self.pool.read(page_id)
        if node.is_leaf:
            rows = node.rows
            block = self.vectors[rows]
            dists = np.linalg.norm(block - q, axis=1)
            self.counters.count_distance(rows.size, dims=self.dimensionality)
            for dist, row in zip(dists, rows):
                offer(float(dist), int(self.rids[row]))
            return
        clipped = np.clip(q, node.rect_lo, node.rect_hi)
        mindists = np.linalg.norm(clipped - q, axis=1)
        self.counters.count_distance(
            len(node.child_pages), dims=self.dimensionality
        )
        for mindist, child in zip(mindists, node.child_pages):
            push(float(mindist), child)

    # ------------------------------------------------------------------
    # standalone KNN (used directly by tests; gLDR drives expand() itself)
    # ------------------------------------------------------------------

    def knn(self, q: np.ndarray, k: int) -> List[Tuple[float, int]]:
        """Exact KNN within this tree (distance, rid), nearest first."""
        q = np.asarray(q, dtype=np.float64)
        results: List[Tuple[float, int]] = []  # max-heap via negation
        frontier: List[Tuple[float, int]] = [
            (self.root_mindist(q), self.root_page)
        ]

        def offer(dist: float, rid: int) -> None:
            if len(results) < k:
                heapq.heappush(results, (-dist, rid))
            elif dist < -results[0][0]:
                heapq.heapreplace(results, (-dist, rid))

        def push(mindist: float, page: int) -> None:
            heapq.heappush(frontier, (mindist, page))

        while frontier:
            mindist, page = heapq.heappop(frontier)
            if len(results) == k and mindist > -results[0][0]:
                break
            self.expand(page, q, push, offer)
        return sorted((-d, rid) for d, rid in results)
