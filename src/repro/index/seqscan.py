"""Sequential scan over the reduced data — Figure 9's floor/ceiling line.

Stores each partition's reduced vectors packed into data pages and answers
a KNN query by reading every page once, sequentially, and scoring every
vector.  No index structure, no random I/O: for a reduced dataset of
``n`` vectors at average width ``d_r`` the cost is exactly
``ceil(n * d_r * 4 / 4096)`` sequential page reads — the bar the paper shows
gLDR falling *behind* once the dimensionality reaches ~20.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..linalg.kernels import batch_l2_rows
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..reduction.base import ReducedDataset
from ..storage.metrics import CostSnapshot
from ..storage.pager import pages_for_vectors
from .base import DEFAULT_POOL_PAGES, KNNResult, QueryStats, VectorIndex

__all__ = ["SequentialScan"]


class SequentialScan(VectorIndex):
    """Full scan of the reduced representations (subspace-aware scoring)."""

    name = "SeqScan"

    def __init__(
        self,
        reduced: ReducedDataset,
        pool_pages: int = DEFAULT_POOL_PAGES,
    ) -> None:
        super().__init__(pool_pages=pool_pages)
        self.reduced = reduced
        #: Total pages one scan must read (subspaces + outliers).
        self.scan_pages = sum(
            pages_for_vectors(s.size, s.reduced_dim)
            for s in reduced.subspaces
        ) + pages_for_vectors(
            reduced.outliers.size, reduced.dimensionality
        )
        # Materialize the page map so the store reflects reality.
        for subspace in reduced.subspaces:
            for _ in range(pages_for_vectors(subspace.size, subspace.reduced_dim)):
                self.store.allocate(("seqscan-data", subspace.subspace_id), 0)
        for _ in range(
            pages_for_vectors(reduced.outliers.size, reduced.dimensionality)
        ):
            self.store.allocate(("seqscan-outliers",), 0)

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
    ) -> KNNResult:
        query = self._check_query(query)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            self._scan, query, k, tracer, tracer=tracer
        )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _scan(
        self,
        query: np.ndarray,
        k: int,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = min(k, self.reduced.n_points)
        with tracer.span(
            "knn.sequential_scan",
            counters=self.counters,
            pages=self.scan_pages,
        ):
            return self._scan_all(query, k)

    def _scan_all(
        self, query: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.counters.count_sequential_read(self.scan_pages)

        id_chunks: List[np.ndarray] = []
        dist_chunks: List[np.ndarray] = []
        for subspace in self.reduced.subspaces:
            q_proj = subspace.project(query)
            diff = subspace.projections - q_proj
            dist_chunks.append(np.linalg.norm(diff, axis=1))
            id_chunks.append(subspace.member_ids)
            self.counters.count_distance(
                subspace.size, dims=subspace.reduced_dim
            )
        outliers = self.reduced.outliers
        if outliers.size:
            diff = outliers.points - query
            dist_chunks.append(np.linalg.norm(diff, axis=1))
            id_chunks.append(outliers.member_ids)
            self.counters.count_distance(
                outliers.size, dims=self.reduced.dimensionality
            )

        ids = np.concatenate(id_chunks)
        distances = np.concatenate(dist_chunks)
        top = np.argpartition(distances, k - 1)[:k]
        order = np.argsort(distances[top])
        best = top[order]
        return ids[best], distances[best]

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def _knn_batch(self, queries: np.ndarray, k: int, tracer: Tracer):
        """One-shot full-matrix scan for the whole workload.

        Every subspace contributes a single ``(Q, m)`` distance block
        (bit-identical per row to the per-query scan — see
        :mod:`repro.linalg.kernels`); top-K selection runs the same
        argpartition/argsort pair row-wise.  Queries are still projected
        one at a time with the per-query gemv the sequential path uses,
        because a gemm over the stacked queries is *not* bit-identical.
        """
        n_queries = queries.shape[0]
        k = min(k, self.reduced.n_points)
        distance_computations = 0
        distance_flops = 0
        dist_blocks: List[np.ndarray] = []
        id_chunks: List[np.ndarray] = []
        with tracer.span(
            "knn.sequential_scan_batch",
            counters=self.counters,
            n_queries=n_queries,
            pages=self.scan_pages,
        ):
            for subspace in self.reduced.subspaces:
                q_proj = np.empty(
                    (n_queries, subspace.reduced_dim), dtype=np.float64
                )
                for i in range(n_queries):
                    q_proj[i] = subspace.project(queries[i])
                dist_blocks.append(
                    batch_l2_rows(subspace.projections, q_proj)
                )
                id_chunks.append(subspace.member_ids)
                distance_computations += subspace.size
                distance_flops += subspace.size * subspace.reduced_dim
            outliers = self.reduced.outliers
            if outliers.size:
                dist_blocks.append(batch_l2_rows(outliers.points, queries))
                id_chunks.append(outliers.member_ids)
                distance_computations += outliers.size
                distance_flops += (
                    outliers.size * self.reduced.dimensionality
                )

            ids = np.concatenate(id_chunks)
            distances = np.concatenate(dist_blocks, axis=1)
            top = np.argpartition(distances, k - 1, axis=1)[:, :k]
            gathered = np.take_along_axis(distances, top, axis=1)
            order = np.argsort(gathered, axis=1)
            best = np.take_along_axis(top, order, axis=1)
            best_ids = ids[best]
            best_dists = np.take_along_axis(distances, best, axis=1)

            per_query = QueryStats(
                page_reads=self.scan_pages,
                distance_computations=distance_computations,
                distance_flops=distance_flops,
                key_comparisons=0,
                cpu_seconds=0.0,
            )
            self.counters.merge(
                CostSnapshot(
                    sequential_reads=self.scan_pages * n_queries,
                    distance_computations=(
                        distance_computations * n_queries
                    ),
                    distance_flops=distance_flops * n_queries,
                )
            )
        return best_ids, best_dists, [per_query] * n_queries
