"""Sequential scan over the reduced data — Figure 9's floor/ceiling line.

Stores each partition's reduced vectors packed into data pages and answers
a KNN query by reading every page once, sequentially, and scoring every
vector.  No index structure, no random I/O: for a reduced dataset of
``n`` vectors at average width ``d_r`` the cost is exactly
``ceil(n * d_r * 4 / 4096)`` sequential page reads — the bar the paper shows
gLDR falling *behind* once the dimensionality reaches ~20.

Online mutation (DESIGN.md §10): inserts append to a
:class:`~repro.index.dynamic.DeltaStore` whose pages join the scan;
deletes tombstone the rid, and the scan still scores the dead entry but
filters it from the result — both run as WAL transactions when
:meth:`~repro.index.base.VectorIndex.enable_wal` is active.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..linalg.backend import batch_l2_rows
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..reduction.base import ReducedDataset
from ..storage.metrics import CostSnapshot
from ..storage.pager import pages_for_vectors, rows_per_page
from .base import DEFAULT_POOL_PAGES, KNNResult, QueryStats, VectorIndex
from .dynamic import DeltaStore, route_point

__all__ = ["SequentialScan"]


class SequentialScan(VectorIndex):
    """Full scan of the reduced representations (subspace-aware scoring)."""

    name = "SeqScan"

    def __init__(
        self,
        reduced: ReducedDataset,
        pool_pages: int = DEFAULT_POOL_PAGES,
        store_factory=None,
    ) -> None:
        super().__init__(pool_pages=pool_pages, store_factory=store_factory)
        self.reduced = reduced
        #: Pages the bulk-loaded data occupies (subspaces + outliers).
        self.scan_pages = sum(
            pages_for_vectors(s.size, s.reduced_dim)
            for s in reduced.subspaces
        ) + pages_for_vectors(
            reduced.outliers.size, reduced.dimensionality
        )
        # Materialize the page map so the store reflects reality, and
        # remember which page holds each rid's vector so the approximate
        # tier's exact rerank charges the same layout a scan reads.
        self._page_of_rid = np.full(reduced.n_points, -1, dtype=np.int64)
        for subspace in reduced.subspaces:
            pages = [
                self.store.allocate(
                    ("seqscan-data", subspace.subspace_id), 0
                )
                for _ in range(
                    pages_for_vectors(subspace.size, subspace.reduced_dim)
                )
            ]
            if pages:
                per_page = rows_per_page(subspace.reduced_dim)
                rows = np.arange(subspace.size, dtype=np.int64)
                self._page_of_rid[subspace.member_ids] = np.asarray(
                    pages, dtype=np.int64
                )[np.minimum(rows // per_page, len(pages) - 1)]
        outlier_pages = [
            self.store.allocate(("seqscan-outliers",), 0)
            for _ in range(
                pages_for_vectors(
                    reduced.outliers.size, reduced.dimensionality
                )
            )
        ]
        if outlier_pages:
            per_page = rows_per_page(reduced.dimensionality)
            rows = np.arange(reduced.outliers.size, dtype=np.int64)
            self._page_of_rid[reduced.outliers.member_ids] = np.asarray(
                outlier_pages, dtype=np.int64
            )[np.minimum(rows // per_page, len(outlier_pages) - 1)]
        self.delta = DeltaStore("seqscan")
        self.n_inserted = 0
        self._tombstones: set = set()

    def _approx_rerank_pages(self, rids: np.ndarray) -> np.ndarray:
        """Data page per bulk rid, from the layout recorded at build."""
        return self._page_of_rid[np.asarray(rids, dtype=np.int64)]

    @property
    def total_scan_pages(self) -> int:
        """Pages one full scan reads: bulk data plus the insert delta."""
        return self.scan_pages + len(self.delta.pages)

    # ------------------------------------------------------------------
    # online mutation
    # ------------------------------------------------------------------

    def insert(
        self, point: np.ndarray, rid: int, beta: float = 0.1
    ) -> int:
        """Insert a point into the scan's delta store, routed like the
        paper's dynamic insert (nearest subspace within β, else outlier).
        Returns the subspace index used (-1 for outlier/full-d)."""
        point = self._prepare_point(point)
        rid = int(rid)
        if rid in self._tombstones:
            raise ValueError(
                f"rid {rid} was deleted from this index; deleted ids "
                "cannot be reused before a rebuild"
            )
        sidx, vector, residual = route_point(self.reduced, point, beta)
        self._note_routed_insert(sidx, residual)
        with self._wal_txn("insert") as txn:
            self.delta.add(self.store, rid, sidx, vector)
            self.n_inserted += 1
            if txn is not None:
                txn.set_meta(
                    {
                        "kind": "insert",
                        "rid": rid,
                        "subspace": sidx,
                        "vector": vector,
                        **self.delta.fill_meta(),
                    }
                )
        return sidx

    def delete(self, rid: int) -> None:
        """Tombstone a record id.  Raises ``KeyError`` for unknown or
        already-deleted rids."""
        rid = int(rid)
        if rid in self._tombstones:
            raise KeyError(f"rid {rid} was already deleted")
        if not (0 <= rid < self.reduced.n_points) and (
            rid not in self.delta.rids
        ):
            raise KeyError(f"rid {rid} is not in the index")
        with self._wal_txn("delete") as txn:
            self._tombstones.add(rid)
            if txn is not None:
                txn.set_meta({"kind": "delete", "rid": rid})

    def _apply_recovery_meta(self, meta: dict) -> None:
        if not hasattr(self, "_tombstones"):
            self._tombstones = set()
        kind = meta["kind"]
        if kind == "insert":
            self.delta.apply_insert(
                meta["rid"], meta["subspace"], meta["vector"], meta
            )
            self.n_inserted = getattr(self, "n_inserted", 0) + 1
        elif kind == "delete":
            self._tombstones.add(int(meta["rid"]))
        else:
            raise ValueError(f"unknown recovery meta kind {kind!r}")

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def knn(
        self,
        query: np.ndarray,
        k: int,
        tracer: Optional[Tracer] = None,
        mode: str = "exact",
        rerank_depth: Optional[int] = None,
    ) -> KNNResult:
        if mode != "exact":
            return self._approx_knn(
                query, k, tracer=tracer, mode=mode,
                rerank_depth=rerank_depth,
            )
        query = self._check_query(query)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        tracer = ensure_tracer(tracer)
        (ids, distances), stats = self._measured(
            self._scan, query, k, tracer, tracer=tracer, k=k
        )
        return KNNResult(ids=ids, distances=distances, stats=stats)

    def _scan(
        self,
        query: np.ndarray,
        k: int,
        tracer: Tracer = NULL_TRACER,
    ) -> Tuple[np.ndarray, np.ndarray]:
        k = min(k, self.live_count)
        if k <= 0:  # every point deleted — nothing to return
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        with tracer.span(
            "knn.sequential_scan",
            counters=self.counters,
            pages=self.total_scan_pages,
        ):
            return self._scan_all(query, k)

    def _scan_all(
        self, query: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.counters.count_sequential_read(self.total_scan_pages)

        id_chunks: List[np.ndarray] = []
        dist_chunks: List[np.ndarray] = []
        q_projs: List[np.ndarray] = []
        for subspace in self.reduced.subspaces:
            q_proj = subspace.project(query)
            q_projs.append(q_proj)
            diff = subspace.projections - q_proj
            dist_chunks.append(np.linalg.norm(diff, axis=1))
            id_chunks.append(subspace.member_ids)
            self.counters.count_distance(
                subspace.size, dims=subspace.reduced_dim
            )
        outliers = self.reduced.outliers
        if outliers.size:
            diff = outliers.points - query
            dist_chunks.append(np.linalg.norm(diff, axis=1))
            id_chunks.append(outliers.member_ids)
            self.counters.count_distance(
                outliers.size, dims=self.reduced.dimensionality
            )
        if len(self.delta):
            ddists = np.empty(len(self.delta), dtype=np.float64)
            for j, (vec, _, sidx) in enumerate(self.delta.entries()):
                ref = q_projs[sidx] if sidx >= 0 else query
                ddists[j] = float(np.linalg.norm(vec - ref))
                self.counters.count_distance(1, dims=max(1, vec.size))
            dist_chunks.append(ddists)
            id_chunks.append(np.asarray(self.delta.rids, dtype=np.int64))

        ids = np.concatenate(id_chunks)
        distances = np.concatenate(dist_chunks)
        tombs = self._tombstone_array()
        if tombs.size:
            alive = ~np.isin(ids, tombs)
            ids, distances = ids[alive], distances[alive]
        top = np.argpartition(distances, k - 1)[:k]
        order = np.argsort(distances[top])
        best = top[order]
        return ids[best], distances[best]

    # ------------------------------------------------------------------
    # batched execution
    # ------------------------------------------------------------------

    def _knn_batch(self, queries: np.ndarray, k: int, tracer: Tracer):
        """One-shot full-matrix scan for the whole workload.

        Every subspace contributes a single ``(Q, m)`` distance block
        (bit-identical per row to the per-query scan — see
        :mod:`repro.linalg.kernels`); top-K selection runs the same
        argpartition/argsort pair row-wise.  Queries are still projected
        one at a time with the per-query gemv the sequential path uses,
        because a gemm over the stacked queries is *not* bit-identical.
        Delta entries are likewise scored with the *same* per-entry norm
        the sequential scan issues, and tombstoned columns are dropped
        before selection exactly as the sequential path drops them.
        """
        n_queries = queries.shape[0]
        k = min(k, self.live_count)
        if k <= 0:  # every point deleted — nothing to return
            zero = QueryStats(0, 0, 0, 0, 0.0)
            return (
                np.empty((n_queries, 0), dtype=np.int64),
                np.empty((n_queries, 0), dtype=np.float64),
                [zero] * n_queries,
            )
        distance_computations = 0
        distance_flops = 0
        dist_blocks: List[np.ndarray] = []
        id_chunks: List[np.ndarray] = []
        q_proj_blocks: List[np.ndarray] = []
        with tracer.span(
            "knn.sequential_scan_batch",
            counters=self.counters,
            n_queries=n_queries,
            pages=self.total_scan_pages,
        ):
            for subspace in self.reduced.subspaces:
                q_proj = np.empty(
                    (n_queries, subspace.reduced_dim), dtype=np.float64
                )
                for i in range(n_queries):
                    q_proj[i] = subspace.project(queries[i])
                q_proj_blocks.append(q_proj)
                dist_blocks.append(
                    batch_l2_rows(subspace.projections, q_proj)
                )
                id_chunks.append(subspace.member_ids)
                distance_computations += subspace.size
                distance_flops += subspace.size * subspace.reduced_dim
            outliers = self.reduced.outliers
            if outliers.size:
                dist_blocks.append(batch_l2_rows(outliers.points, queries))
                id_chunks.append(outliers.member_ids)
                distance_computations += outliers.size
                distance_flops += (
                    outliers.size * self.reduced.dimensionality
                )
            if len(self.delta):
                dblock = np.empty(
                    (n_queries, len(self.delta)), dtype=np.float64
                )
                for i in range(n_queries):
                    for j, (vec, _, sidx) in enumerate(
                        self.delta.entries()
                    ):
                        ref = (
                            q_proj_blocks[sidx][i]
                            if sidx >= 0
                            else queries[i]
                        )
                        dblock[i, j] = float(np.linalg.norm(vec - ref))
                dist_blocks.append(dblock)
                id_chunks.append(
                    np.asarray(self.delta.rids, dtype=np.int64)
                )
                distance_computations += len(self.delta)
                distance_flops += sum(
                    max(1, vec.size) for vec in self.delta.vectors
                )

            ids = np.concatenate(id_chunks)
            distances = np.concatenate(
                [np.atleast_2d(b) for b in dist_blocks], axis=1
            )
            tombs = self._tombstone_array()
            if tombs.size:
                alive = ~np.isin(ids, tombs)
                ids = ids[alive]
                distances = distances[:, alive]
            top = np.argpartition(distances, k - 1, axis=1)[:, :k]
            gathered = np.take_along_axis(distances, top, axis=1)
            order = np.argsort(gathered, axis=1)
            best = np.take_along_axis(top, order, axis=1)
            best_ids = ids[best]
            best_dists = np.take_along_axis(distances, best, axis=1)

            per_query = QueryStats(
                page_reads=self.total_scan_pages,
                distance_computations=distance_computations,
                distance_flops=distance_flops,
                key_comparisons=0,
                cpu_seconds=0.0,
            )
            self.counters.merge(
                CostSnapshot(
                    sequential_reads=self.total_scan_pages * n_queries,
                    distance_computations=(
                        distance_computations * n_queries
                    ),
                    distance_flops=distance_flops * n_queries,
                )
            )
        return best_ids, best_dists, [per_query] * n_queries
