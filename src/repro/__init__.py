"""MMDR: adaptive Multi-level Mahalanobis-based Dimensionality Reduction
for high-dimensional indexing.

A from-scratch reproduction of Jin, Ooi, Shen, Yu & Zhou (ICDE 2003):

* :class:`MMDR` / :class:`ScalableMMDR` — the paper's dimensionality
  reduction (Generate Ellipsoid + Dimensionality Optimization, and the
  data-stream variant for datasets larger than the buffer).
* :class:`GDRReducer` / :class:`LDRReducer` — the global/local PCA baselines
  the paper compares against (Chakrabarti & Mehrotra).
* :class:`ExtendedIDistance` — one B+-tree over every reduced subspace, with
  the paper's expanding-sphere KNN search; :class:`GlobalLDRIndex` (Hybrid
  tree per cluster) and :class:`SequentialScan` as baselines.
* :mod:`repro.data` — the Appendix-A synthetic generator and a simulated
  Corel color-histogram dataset.
* :mod:`repro.eval` — the §6 precision metric and cost harness.

Quickstart
----------
>>> import numpy as np
>>> from repro import MMDR, ExtendedIDistance
>>> from repro.reduction import model_to_reduced
>>> from repro.data import SyntheticSpec, generate_correlated_clusters
>>> rng = np.random.default_rng(0)
>>> spec = SyntheticSpec(n_points=3000, dimensionality=32, n_clusters=3,
...                      retained_dims=4)
>>> dataset = generate_correlated_clusters(spec, rng)
>>> model = MMDR().fit(dataset.points, rng)
>>> index = ExtendedIDistance(model_to_reduced(model))
>>> result = index.knn(dataset.points[0], k=10)
>>> len(result.ids)
10
"""

from .cluster import EllipticalKMeans, kmeans
from .core import (
    DEFAULT_CONFIG,
    MMDR,
    EllipticalSubspace,
    MMDRConfig,
    MMDRModel,
    OutlierSet,
    ScalableMMDR,
)
from .index import (
    ExtendedIDistance,
    GlobalLDRIndex,
    InvalidQueryError,
    KNNResult,
    SequentialScan,
)
from .linalg import ClusterShape, PCAModel, fit_pca
from .obs import NULL_TRACER, MetricsRegistry, NullTracer, Tracer
from .persist import load_index, save_index
from .reduction import (
    GDRReducer,
    LDRReducer,
    MMDRReducer,
    ReducedDataset,
    Reducer,
    model_to_reduced,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "ClusterShape",
    "EllipticalKMeans",
    "EllipticalSubspace",
    "ExtendedIDistance",
    "GDRReducer",
    "GlobalLDRIndex",
    "InvalidQueryError",
    "KNNResult",
    "LDRReducer",
    "MMDR",
    "MMDRConfig",
    "MMDRModel",
    "MMDRReducer",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OutlierSet",
    "PCAModel",
    "Tracer",
    "ReducedDataset",
    "Reducer",
    "ScalableMMDR",
    "SequentialScan",
    "fit_pca",
    "kmeans",
    "load_index",
    "model_to_reduced",
    "save_index",
    "__version__",
]
