"""Observability: structured tracing, metrics, and trace reporting.

The reproduction's headline claims are *cost* claims (page accesses, CPU
work, clustering scalability), so this package makes cost visible below
whole-query granularity:

* :class:`Tracer` — nested spans with wall time, event-log ordering, and a
  per-span :class:`~repro.storage.metrics.CostSnapshot` delta (each span
  knows its own page reads / distance flops / key comparisons).
* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms (``knn.radius_expansions``, ``buffer.hit_rate``, ...).
* :mod:`repro.obs.export` — JSONL trace files.
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  prints a per-span total/mean/p95 + cost table.

Instrumented call sites default to :data:`NULL_TRACER`, a shared no-op, so
runs without a tracer pay only attribute lookups and stay bit-identical.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, ensure_tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "ensure_tracer",
]
