"""Observability: structured tracing, metrics, and trace reporting.

The reproduction's headline claims are *cost* claims (page accesses, CPU
work, clustering scalability), so this package makes cost visible below
whole-query granularity:

* :class:`Tracer` — nested spans with wall time, event-log ordering, and a
  per-span :class:`~repro.storage.metrics.CostSnapshot` delta (each span
  knows its own page reads / distance flops / key comparisons).
* :class:`MetricsRegistry` — named counters, gauges and fixed-bucket
  histograms (``knn.radius_expansions``, ``buffer.hit_rate``, ...).
* :mod:`repro.obs.export` — JSONL trace files.
* :mod:`repro.obs.report` — ``python -m repro.obs.report trace.jsonl``
  prints a per-span total/mean/p95 + cost table; ``--explain`` renders
  each query as an explain-plan tree.
* :mod:`repro.obs.explain` — :class:`QueryExplain`, one query's span tree
  as an exactly-telescoping cost breakdown (``VectorIndex.explain``).
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, a bounded ring of
  per-query cost summaries with a logical slow-query threshold.
* :mod:`repro.obs.health` — :class:`HealthSampler` /
  :class:`HealthReport`, structural index gauges (MPE drift, tombstones,
  delta growth, WAL backlog) with advisory thresholds.

Instrumented call sites default to :data:`NULL_TRACER`, a shared no-op, so
runs without a tracer pay only attribute lookups and stay bit-identical.
Multi-worker runs stitch into one trace: :class:`TraceContext` propagates
the trace identity into workers and :meth:`Tracer.adopt_spans` grafts
their spans back under the parent span.
"""

from .explain import QueryExplain, explain_from_records, explain_from_tracer
from .flight import FlightRecorder, logical_cost
from .health import HealthReport, HealthSampler, drift_scores
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "HealthSampler",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryExplain",
    "Span",
    "TraceContext",
    "Tracer",
    "ensure_tracer",
    "drift_scores",
    "explain_from_records",
    "explain_from_tracer",
    "logical_cost",
]
