"""Named metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` hands out get-or-create instruments by name, so
instrumentation sites can say ``tracer.counter("knn.radius_expansions").inc()``
without coordinating construction.  Instruments are deliberately tiny —
plain Python attributes, no locks — because they sit inside search loops.

Histograms use *fixed upper-bound buckets* (Prometheus-style, inclusive):
an observation lands in the first bucket whose upper bound is >= the value,
or in the implicit ``+inf`` overflow bucket.  Percentiles are estimated from
the bucket counts (upper bound of the covering bucket), which is exactly as
accurate as the bucket grid — good enough for the p95 columns of the trace
report, and O(#buckets) memory regardless of observation count.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram grid: a 1-2-5 geometric ladder covering counts from
#: single candidates to ~1M (page reads, candidate counts, iteration sizes).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10**e for e in range(6) for m in (1, 2, 5)
)


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Last-write-wins named value (e.g. a hit rate, a fraction frozen)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds."""

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "count")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} has duplicate bucket edges")
        self.name = name
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow = 0  # observations above the last bound (+inf bucket)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.count += 1
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile (0 < q <= 1).

        Returns ``inf`` when the quantile falls in the overflow bucket and
        ``nan`` when the histogram is empty — an empty histogram has no
        quantiles, and ``0.0`` would read as "all observations were fast".
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = math.ceil(q * self.count)
        seen = 0
        for bound, n in zip(self.bounds, self.counts):
            seen += n
            if seen >= rank:
                return bound
        return math.inf


class _NullInstrument:
    """No-op counter/gauge/histogram handed out by the null tracer."""

    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullInstrument()
_NULL_GAUGE = _NullInstrument()
_NULL_HISTOGRAM = _NullInstrument()


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create; ``buckets`` only applies on first creation."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return instrument

    def reset(self) -> None:
        """Drop every instrument so the registry can be reused across runs.

        Handles to previously issued instruments stay functional but
        detached — the next get-or-create returns a fresh instrument, so
        records from one bench leg cannot leak into the next.
        """
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def merge_records(self, records: List[dict]) -> None:
        """Fold flattened instrument records (one worker's
        :meth:`as_records` output) into this registry.

        Counters add, gauges last-write-win (callers merge workers in
        chunk order, keeping the outcome deterministic), histograms merge
        bucket-by-bucket.  A histogram whose bucket grid differs from the
        local instrument's cannot be merged losslessly and raises.
        """
        for record in records:
            kind = record.get("type")
            name = record["name"]
            if kind == "counter":
                self.counter(name).inc(float(record["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(record["value"]))
            elif kind == "histogram":
                hist = self.histogram(name, buckets=record["bounds"])
                if hist.bounds != [float(b) for b in record["bounds"]]:
                    raise ValueError(
                        f"histogram {name!r} bucket grids differ; "
                        "cannot merge worker records losslessly"
                    )
                for i, n in enumerate(record["counts"]):
                    hist.counts[i] += int(n)
                hist.overflow += int(record["overflow"])
                hist.total += float(record["total"])
                hist.count += int(record["count"])
            else:
                raise ValueError(f"unknown metric record type {kind!r}")

    def as_records(self) -> List[dict]:
        """Flatten every instrument to a JSON-serializable record."""
        records: List[dict] = []
        for counter in self.counters.values():
            records.append(
                {"type": "counter", "name": counter.name,
                 "value": counter.value}
            )
        for gauge in self.gauges.values():
            records.append(
                {"type": "gauge", "name": gauge.name, "value": gauge.value}
            )
        for hist in self.histograms.values():
            records.append(
                {
                    "type": "histogram",
                    "name": hist.name,
                    "bounds": hist.bounds,
                    "counts": hist.counts,
                    "overflow": hist.overflow,
                    "total": hist.total,
                    "count": hist.count,
                }
            )
        return records
