"""Query explain plans: one KNN query's span tree as a cost breakdown.

``VectorIndex.explain(query, k)`` runs a single traced query and turns its
span tree + per-span cost deltas into a :class:`QueryExplain`: an
EXPLAIN ANALYZE-style node tree (each node knows its *inclusive* cost and
its *self* cost — inclusive minus children), per-phase aggregates, the
per-partition probe breakdown of an iDistance search, radius-expansion
counts, and the delta-store-vs-bulk split of the result set.

The arithmetic backbone is telescoping: every span's self cost is its cost
minus the sum of its children's costs, so summing self costs over the whole
tree — equivalently, summing the per-phase aggregates — reproduces the root
cost *exactly* for the integer logical counters (float ``cpu_seconds`` may
drift by rounding).  The test suite asserts that equality against the
query's :class:`~repro.index.base.QueryStats`, which makes the explain plan
trustworthy: no page read or distance evaluation can hide between phases.

Builders work on exported span *records* (the dicts of
:func:`repro.obs.export.span_to_record`), so the same code explains a live
tracer and a JSONL trace file (``python -m repro.obs.report --explain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..storage.metrics import CostSnapshot

__all__ = [
    "INT_COST_FIELDS",
    "ExplainNode",
    "QueryExplain",
    "explain_from_records",
    "explain_from_tracer",
    "render_explain",
]

#: The machine-independent cost counters (everything but wall-clock time).
#: Telescoping self-cost sums are exact over these.
INT_COST_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(CostSnapshot) if f.name != "cpu_seconds"
)

_ZERO_COST: Dict[str, int] = {name: 0 for name in INT_COST_FIELDS}


def _cost_of(record: dict) -> Dict[str, int]:
    cost = record.get("cost")
    if not cost:
        return dict(_ZERO_COST)
    return {name: int(cost.get(name, 0)) for name in INT_COST_FIELDS}


def _add(into: Dict[str, int], other: Dict[str, int]) -> None:
    for name in INT_COST_FIELDS:
        into[name] += other[name]


def _sub(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    return {name: a[name] - b[name] for name in INT_COST_FIELDS}


def _page_reads(cost: Dict[str, int]) -> int:
    return cost["physical_reads"] + cost["sequential_reads"]


@dataclass
class ExplainNode:
    """One span of the query, with inclusive and self cost."""

    name: str
    index: int
    depth: int
    attrs: Dict[str, object]
    duration_s: float
    cost: Dict[str, int]
    self_cost: Dict[str, int] = field(default_factory=dict)
    children: List["ExplainNode"] = field(default_factory=list)

    def walk(self) -> Iterable["ExplainNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class QueryExplain:
    """Structured cost attribution for one KNN query.

    ``total`` is the root span's cost delta (== the query's
    :class:`~repro.index.base.QueryStats` in counter terms); ``phases``
    maps span name -> summed *self* cost, and sums back to ``total``
    exactly.  ``partitions`` breaks iDistance probes down per partition
    (empty for schemes without per-partition spans); ``delta_hits`` /
    ``bulk_hits`` split the result ids between the dynamic delta store and
    the bulk-loaded structure when the caller provides the delta rid set.
    """

    scheme: str
    root: ExplainNode
    total: Dict[str, int]
    phases: Dict[str, Dict[str, int]]
    expansions: int
    partitions: Dict[int, Dict[str, int]]
    duration_s: float
    k: Optional[int] = None
    result_ids: Optional[List[int]] = None
    delta_hits: Optional[int] = None
    bulk_hits: Optional[int] = None

    @property
    def total_page_reads(self) -> int:
        return _page_reads(self.total)

    def phase_sum(self) -> Dict[str, int]:
        """Sum of per-phase self costs; equals ``total`` by telescoping."""
        out = dict(_ZERO_COST)
        for cost in self.phases.values():
            _add(out, cost)
        return out

    def render(self) -> str:
        return render_explain(self)


def _build_tree(records: Sequence[dict], root_record: dict) -> ExplainNode:
    """Materialize the subtree rooted at ``root_record`` from flat span
    records (children linked by parent index, in event-log order)."""
    nodes: Dict[int, ExplainNode] = {}
    root = ExplainNode(
        name=root_record["name"],
        index=int(root_record["index"]),
        depth=int(root_record["depth"]),
        attrs=dict(root_record.get("attrs") or {}),
        duration_s=float(root_record.get("duration_s", 0.0)),
        cost=_cost_of(root_record),
    )
    nodes[root.index] = root
    for record in records:
        idx = int(record["index"])
        if idx == root.index:
            continue
        parent = nodes.get(int(record["parent"]))
        if parent is None:
            continue  # outside this query's subtree
        node = ExplainNode(
            name=record["name"],
            index=idx,
            depth=int(record["depth"]),
            attrs=dict(record.get("attrs") or {}),
            duration_s=float(record.get("duration_s", 0.0)),
            cost=_cost_of(record),
        )
        nodes[idx] = node
        parent.children.append(node)
    for node in nodes.values():
        child_sum = dict(_ZERO_COST)
        for child in node.children:
            _add(child_sum, child.cost)
        node.self_cost = _sub(node.cost, child_sum)
    return root


def _explain_from_tree(root: ExplainNode) -> QueryExplain:
    phases: Dict[str, Dict[str, int]] = {}
    partitions: Dict[int, Dict[str, int]] = {}
    expansions = 0
    for node in root.walk():
        phase = phases.setdefault(node.name, dict(_ZERO_COST))
        _add(phase, node.self_cost)
        if node.name == "knn.expand_radius":
            expansions += 1
        if node.name == "knn.probe_partition":
            pid = int(node.attrs.get("partition", -1))
            agg = partitions.setdefault(
                pid, {**_ZERO_COST, "probes": 0}
            )
            agg["probes"] += 1
            for name in INT_COST_FIELDS:
                agg[name] += node.cost[name]
    return QueryExplain(
        scheme=str(root.attrs.get("scheme", "?")),
        root=root,
        total=dict(root.cost),
        phases=phases,
        expansions=expansions,
        partitions=partitions,
        duration_s=root.duration_s,
    )


def explain_from_records(
    span_records: Sequence[dict], root_name: str = "knn.query"
) -> List[QueryExplain]:
    """Build one :class:`QueryExplain` per ``root_name`` span in a flat
    span-record list (e.g. a loaded JSONL trace, possibly holding many
    queries and non-query spans)."""
    return [
        _explain_from_tree(_build_tree(span_records, record))
        for record in span_records
        if record["name"] == root_name
    ]


def explain_from_tracer(
    tracer,
    k: Optional[int] = None,
    result_ids: Optional[Sequence[int]] = None,
    delta_rids: Optional[Iterable[int]] = None,
) -> QueryExplain:
    """Explain the single ``knn.query`` recorded on ``tracer``.

    ``result_ids`` and ``delta_rids`` (the index's dynamically inserted
    rid set) enable the delta-store-vs-bulk hit split.  Raises when the
    tracer holds no query span or more than one.
    """
    from .export import span_to_record

    records = [span_to_record(s) for s in tracer.spans]
    explains = explain_from_records(records)
    if len(explains) != 1:
        raise ValueError(
            f"expected exactly one knn.query span, found {len(explains)}"
        )
    explain = explains[0]
    explain.k = k
    if result_ids is not None:
        ids = [int(i) for i in result_ids]
        explain.result_ids = ids
        if delta_rids is not None:
            delta = set(int(r) for r in delta_rids)
            explain.delta_hits = sum(1 for i in ids if i in delta)
            explain.bulk_hits = len(ids) - explain.delta_hits
    return explain


# ---------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------


def _cost_line(cost: Dict[str, int]) -> str:
    return (
        f"pages={_page_reads(cost)} dist={cost['distance_computations']} "
        f"flops={cost['distance_flops']} keys={cost['key_comparisons']}"
    )


def _attr_line(attrs: Dict[str, object]) -> str:
    shown = {
        key: value
        for key, value in attrs.items()
        if key not in ("scheme",) and value is not None
    }
    if not shown:
        return ""
    inner = ", ".join(
        f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
        for key, value in shown.items()
    )
    return f" ({inner})"


def render_explain(explain: QueryExplain) -> str:
    """EXPLAIN ANALYZE-style text: the node tree, then phase and
    partition summaries."""
    lines: List[str] = []
    header = f"KNN Explain — scheme={explain.scheme}"
    if explain.k is not None:
        header += f" k={explain.k}"
    lines.append(header)
    lines.append(
        f"total: {_cost_line(explain.total)} "
        f"time={explain.duration_s * 1e3:.3f}ms "
        f"expansions={explain.expansions}"
    )
    if explain.delta_hits is not None:
        lines.append(
            f"result: {explain.bulk_hits} from bulk structure, "
            f"{explain.delta_hits} from delta store"
        )

    def walk(node: ExplainNode, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        lines.append(
            f"{prefix}{connector}{node.name}{_attr_line(node.attrs)}"
            f"  [{_cost_line(node.cost)} "
            f"self:{_cost_line(node.self_cost)} "
            f"time={node.duration_s * 1e3:.3f}ms]"
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1)

    walk(explain.root, "", True)

    lines.append("")
    lines.append("phases (self cost; sums exactly to total):")
    for name, cost in sorted(
        explain.phases.items(), key=lambda kv: -_page_reads(kv[1])
    ):
        lines.append(f"  {name:<28} {_cost_line(cost)}")
    if explain.partitions:
        lines.append("")
        lines.append("partitions:")
        for pid in sorted(explain.partitions):
            agg = explain.partitions[pid]
            label = "outliers" if pid == len(explain.partitions) - 1 else ""
            lines.append(
                f"  p{pid:<3} probes={agg['probes']:<3} "
                f"pages={agg['physical_reads'] + agg['sequential_reads']} "
                f"dist={agg['distance_computations']} "
                f"keys={agg['key_comparisons']} {label}".rstrip()
            )
    return "\n".join(lines)
