"""Flight recorder: a bounded ring buffer of per-query cost summaries.

Always-on query observability with O(capacity) memory: every query answered
by an index with :meth:`~repro.index.base.VectorIndex.enable_flight_recorder`
leaves one small :class:`FlightRecord` in a ring buffer (old records fall
off the back), so "what has this index been doing lately" and "which
queries were slow" are answerable after the fact without tracing anything.

Slowness is judged on *logical* cost, not wall time, so the threshold means
the same thing on a laptop and in CI: ``logical_cost = cpu_work +
page_reads * LOGICAL_PAGE_WEIGHT`` where cpu_work is the repo's
deterministic CPU proxy (distance flops + key comparisons) and each 4 KiB
page read is charged :data:`LOGICAL_PAGE_WEIGHT` units — the number of
float64 values a page holds, i.e. a read costs as much as scoring every
value it carries once.

The recorder must never perturb the measurement: it reads a query's
finished :class:`~repro.index.base.QueryStats` after the counters are
diffed, touches no counters itself, and drops records instead of growing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = [
    "LOGICAL_PAGE_WEIGHT",
    "FlightRecord",
    "FlightRecorder",
    "logical_cost",
]

#: Logical-cost weight of one page read: float64 values per 4 KiB page.
LOGICAL_PAGE_WEIGHT = 512


def logical_cost(stats) -> int:
    """Machine-independent cost of one query from its
    :class:`~repro.index.base.QueryStats`."""
    return int(stats.cpu_work + stats.page_reads * LOGICAL_PAGE_WEIGHT)


@dataclass(frozen=True)
class FlightRecord:
    """One query's cost summary, as kept in the ring buffer."""

    seq: int  # recorder-lifetime query number (keeps ordering after wrap)
    scheme: str
    kind: str  # "knn" (per-query path) or "knn_batch" (vectorized path)
    k: Optional[int]
    page_reads: int
    distance_computations: int
    distance_flops: int
    key_comparisons: int
    cpu_seconds: float
    logical_cost: int
    slow: bool

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "scheme": self.scheme,
            "kind": self.kind,
            "k": self.k,
            "page_reads": self.page_reads,
            "distance_computations": self.distance_computations,
            "distance_flops": self.distance_flops,
            "key_comparisons": self.key_comparisons,
            "cpu_seconds": self.cpu_seconds,
            "logical_cost": self.logical_cost,
            "slow": self.slow,
        }


class FlightRecorder:
    """Bounded per-query cost history with a logical slow-query threshold.

    ``capacity`` bounds memory (a :class:`collections.deque` ring);
    ``slow_threshold`` (logical cost units) marks records as slow and
    counts them over the recorder's lifetime — ``None`` disables slow
    classification.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_threshold: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.slow_threshold = slow_threshold
        self.records: Deque[FlightRecord] = deque(maxlen=capacity)
        self.total_queries = 0  # lifetime, unlike len(records)
        self.slow_queries = 0

    def record(self, scheme: str, kind: str, stats, k: Optional[int] = None
               ) -> FlightRecord:
        """Append one finished query's stats; returns the stored record."""
        cost = logical_cost(stats)
        slow = (
            self.slow_threshold is not None and cost >= self.slow_threshold
        )
        rec = FlightRecord(
            seq=self.total_queries,
            scheme=scheme,
            kind=kind,
            k=k,
            page_reads=int(stats.page_reads),
            distance_computations=int(stats.distance_computations),
            distance_flops=int(stats.distance_flops),
            key_comparisons=int(stats.key_comparisons),
            cpu_seconds=float(stats.cpu_seconds),
            logical_cost=cost,
            slow=slow,
        )
        self.records.append(rec)
        self.total_queries += 1
        if slow:
            self.slow_queries += 1
        return rec

    def top_offenders(self, n: int = 10) -> List[FlightRecord]:
        """The n most expensive retained queries, costliest first (ties
        broken oldest-first so the ranking is deterministic)."""
        return sorted(
            self.records, key=lambda r: (-r.logical_cost, r.seq)
        )[:n]

    def slow_records(self) -> List[FlightRecord]:
        """Retained records at or above the slow threshold, in order."""
        return [r for r in self.records if r.slow]

    def summary(self) -> dict:
        """Lifetime counts plus the retained buffer's cost spread."""
        costs = [r.logical_cost for r in self.records]
        return {
            "total_queries": self.total_queries,
            "slow_queries": self.slow_queries,
            "retained": len(self.records),
            "capacity": self.capacity,
            "slow_threshold": self.slow_threshold,
            "max_logical_cost": max(costs) if costs else 0,
            "mean_logical_cost": (
                sum(costs) / len(costs) if costs else 0.0
            ),
        }

    def render(self, n: int = 10) -> str:
        """Top-offenders table for terminals and test failures."""
        lines = [
            "flight recorder: "
            f"{self.total_queries} queries seen, "
            f"{len(self.records)} retained, "
            f"{self.slow_queries} slow"
            + (
                f" (threshold {self.slow_threshold})"
                if self.slow_threshold is not None
                else ""
            ),
            f"{'seq':>6} {'scheme':<10} {'kind':<10} {'k':>4} "
            f"{'pages':>7} {'flops':>9} {'keys':>7} {'logical':>9} slow",
        ]
        for r in self.top_offenders(n):
            lines.append(
                f"{r.seq:>6} {r.scheme:<10} {r.kind:<10} "
                f"{r.k if r.k is not None else '-':>4} "
                f"{r.page_reads:>7} {r.distance_flops:>9} "
                f"{r.key_comparisons:>7} {r.logical_cost:>9} "
                f"{'*' if r.slow else ''}"
            )
        return "\n".join(lines)
