"""Structured tracing with nested spans and per-span cost deltas.

Every instrumented code path in the reproduction threads a tracer through
its hot loops::

    tracer = Tracer(counters=index.counters)
    with tracer.span("knn.expand_radius", radius=r) as span:
        ...                      # work that reads pages / computes distances
        span.set(candidates=n)   # late attributes

A span records its wall-clock duration, a monotonically increasing start
index (the event log order), its parent/depth (spans nest via a stack), any
keyword attributes, and — when a :class:`~repro.storage.metrics.CostCounters`
is attached — the *delta* of a :class:`~repro.storage.metrics.CostSnapshot`
taken around the block, so each span knows its own page reads, distance
flops and key comparisons, not just the whole query's.

Tracing is strictly opt-in and zero-overhead by default: call sites take a
``tracer`` argument that defaults to :data:`NULL_TRACER`, whose ``span`` /
``counter`` / ``gauge`` / ``histogram`` methods return shared no-op objects.
A disabled run therefore pays only attribute lookups — it must never change
counters, RNG state, or results (the test suite asserts bit-identical query
costs with and without a tracer).

Tracers are not thread-safe; use one per worker.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..storage.metrics import CostCounters, CostSnapshot
from .metrics import (
    MetricsRegistry,
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
)

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
]

#: Per-process trace-id sequence; combined with the pid so ids minted in a
#: forked worker can never collide with the coordinator's.
_TRACE_SEQ = itertools.count(1)


def _new_trace_id() -> str:
    return f"{os.getpid():x}-{next(_TRACE_SEQ):x}"


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to join its spans to a parent trace.

    Propagated (picklable) into forked/thread workers by the parallel
    harness: the worker records spans on a private tracer stamped with
    ``trace_id`` and ships them back; the parent re-indexes them under the
    span at ``parent_index`` via :meth:`Tracer.adopt_spans`.
    """

    trace_id: str
    parent_index: int


@dataclass
class Span:
    """One timed, cost-accounted region of the event log.

    ``index`` is the span's position in tracer start order (the monotonic
    event log); ``parent`` is the index of the enclosing span or ``-1`` at
    the top level.  ``cost`` is the counter delta over the block, or ``None``
    when the span ran without counters attached.
    """

    name: str
    index: int
    parent: int
    depth: int
    start_s: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    duration_s: float = 0.0
    cost: Optional[CostSnapshot] = None
    _snapshot_before: Optional[CostSnapshot] = field(
        default=None, repr=False
    )

    def set(self, **attributes: Any) -> "Span":
        """Attach late attributes (values known only mid-block)."""
        self.attributes.update(attributes)
        return self


class _SpanContext:
    """Context manager that opens/closes one span on its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close_span(self._span)


class Tracer:
    """Collects spans (in start order) and owns a metrics registry.

    Parameters
    ----------
    counters:
        Default cost counters snapshotted around every span.  Individual
        ``span()`` calls can override with their own ``counters=`` (the
        index instrumentation does, so one tracer can follow a model fit
        and a query batch that use different counter sets).
    metrics:
        Registry for named counters/gauges/histograms; a fresh one is
        created when omitted.
    """

    enabled = True

    def __init__(
        self,
        counters: Optional[CostCounters] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.counters = counters
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def span(
        self,
        name: str,
        counters: Optional[CostCounters] = None,
        **attributes: Any,
    ) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span(...) as s:``.

        The span is appended to :attr:`spans` immediately (start order =
        event-log order); its duration and cost delta are filled in when
        the block exits, even on exception.
        """
        active = counters if counters is not None else self.counters
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            index=len(self.spans),
            parent=parent.index if parent is not None else -1,
            depth=len(self._stack),
            start_s=time.perf_counter() - self._epoch,
            attributes=dict(attributes),
        )
        if active is not None:
            span._snapshot_before = active.snapshot()
            span._counters = active  # type: ignore[attr-defined]
        self.spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close_span(self, span: Span) -> None:
        span.duration_s = (
            time.perf_counter() - self._epoch - span.start_s
        )
        if span._snapshot_before is not None:
            counters: CostCounters = span._counters  # type: ignore[attr-defined]
            span.cost = counters.snapshot() - span._snapshot_before
            span._snapshot_before = None
            del span._counters  # type: ignore[attr-defined]
        # Exceptions may unwind several spans at once; pop everything the
        # failed block opened so the stack matches the closing span.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break

    @property
    def active_span(self) -> Optional[Span]:
        """The innermost open span, or ``None`` between spans."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Forget every recorded span and metric, keeping the tracer
        attached (counters, identity) so long-lived callers — the bench
        runner between legs, a reused harness tracer between runs — can
        reuse one tracer without records leaking across runs.

        Clearing while a span is open would orphan it, so that raises.
        A fresh trace id is minted: the next run is a new trace.
        """
        if self._stack:
            raise RuntimeError(
                f"cannot clear while span {self._stack[-1].name!r} is open"
            )
        self.spans = []
        self.metrics.reset()
        self.trace_id = _new_trace_id()
        self._epoch = time.perf_counter()

    def adopt_spans(
        self,
        spans: Sequence[Span],
        parent: Optional[Span] = None,
        worker: Optional[int] = None,
    ) -> int:
        """Graft a worker tracer's (closed) spans into this trace.

        ``spans`` must be one tracer's complete span list in its event-log
        order: indices are rebased onto this tracer's log, local parent
        links are preserved, and roots (``parent == -1``) are re-parented
        under ``parent`` (or stay roots) with depths shifted accordingly.
        ``worker`` stamps a ``worker`` attribute on the adopted roots so a
        stitched trace keeps per-worker attribution.  Returns the number
        of spans adopted.
        """
        if not spans:
            return 0
        base = len(self.spans)
        local0 = spans[0].index  # worker logs start at 0; rebase from it
        parent_index = parent.index if parent is not None else -1
        parent_depth = parent.depth + 1 if parent is not None else 0
        for span in spans:
            span.index = span.index - local0 + base
            if span.parent == -1:
                span.parent = parent_index
                span.depth += parent_depth
                if worker is not None:
                    span.attributes.setdefault("worker", worker)
            else:
                span.parent = span.parent - local0 + base
                span.depth += parent_depth
            self.spans.append(span)
        return len(spans)

    # ------------------------------------------------------------------
    # metrics pass-through (uniform API with NullTracer)
    # ------------------------------------------------------------------

    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets=None):
        return self.metrics.histogram(name, buckets=buckets)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write spans + metrics to a JSONL trace file; returns the record
        count.  (Delegates to :mod:`repro.obs.export`.)"""
        from .export import write_jsonl

        return write_jsonl(path, self)


class _NullSpan:
    """Shared, stateless no-op stand-in for :class:`Span`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer: the default for every instrumented call site.

    All methods return shared singletons, so a disabled run costs only
    attribute lookups and empty method calls — no allocation, no timing,
    no counter snapshots.
    """

    enabled = False
    spans: List[Span] = []  # always empty; shared intentionally
    trace_id = "null"

    def span(self, name: str, counters=None, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def clear(self) -> None:
        return None

    def adopt_spans(self, spans, parent=None, worker=None) -> int:
        return 0

    def counter(self, name: str):
        return _NULL_COUNTER

    def gauge(self, name: str):
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=None):
        return _NULL_HISTOGRAM

    @property
    def active_span(self) -> None:
        return None

    def export_jsonl(self, path) -> int:
        return 0


NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional["Tracer"]) -> "Tracer":
    """Normalize an optional ``tracer`` argument to a usable tracer."""
    return tracer if tracer is not None else NULL_TRACER
