"""Aggregate a JSONL trace into a human-readable per-span report.

Usage::

    python -m repro.obs.report trace.jsonl [--sort total|count|pages|name]
                                           [--top N] [--explain]

For every span name the report shows call count, total/mean/p95 wall time,
and the summed cost deltas (page reads, distance computations, distance
flops, key comparisons) — i.e. where inside a query or a fit the I/O and
CPU work actually went, phase by phase.  Counters, gauges and histograms
recorded alongside the spans are printed below the table.

``--explain`` switches to the per-query view: every ``knn.query`` span in
the trace is rendered as an EXPLAIN ANALYZE-style tree (see
:mod:`repro.obs.explain`) instead of the aggregate table.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .export import read_jsonl

__all__ = ["SpanAggregate", "aggregate_spans", "render_report", "main"]


@dataclass
class SpanAggregate:
    """Roll-up of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    durations: List[float] = field(default_factory=list)
    pages: int = 0
    logical_reads: int = 0
    distance_computations: int = 0
    distance_flops: int = 0
    key_comparisons: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def percentile_s(self, q: float) -> float:
        """Exact q-quantile of the recorded durations (nearest-rank)."""
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]


def aggregate_spans(spans: Iterable[dict]) -> Dict[str, SpanAggregate]:
    """Group span records (as loaded by :func:`read_jsonl`) by name."""
    rollup: Dict[str, SpanAggregate] = {}
    for record in spans:
        name = record["name"]
        agg = rollup.get(name)
        if agg is None:
            agg = rollup[name] = SpanAggregate(name=name)
        duration = float(record.get("duration_s", 0.0))
        agg.count += 1
        agg.total_s += duration
        agg.durations.append(duration)
        cost = record.get("cost")
        if cost:
            agg.pages += int(cost.get("physical_reads", 0)) + int(
                cost.get("sequential_reads", 0)
            )
            agg.logical_reads += int(cost.get("logical_reads", 0))
            agg.distance_computations += int(
                cost.get("distance_computations", 0)
            )
            agg.distance_flops += int(cost.get("distance_flops", 0))
            agg.key_comparisons += int(cost.get("key_comparisons", 0))
    return rollup


_SORT_KEYS = {
    "total": lambda a: -a.total_s,
    "count": lambda a: -a.count,
    "pages": lambda a: -a.pages,
    "name": lambda a: a.name,
}


def render_report(
    trace: Dict[str, List[dict]],
    sort: str = "total",
    top: Optional[int] = None,
) -> str:
    """Format the per-span table plus the metrics section."""
    if sort not in _SORT_KEYS:
        raise ValueError(
            f"unknown sort key {sort!r}; pick one of {sorted(_SORT_KEYS)}"
        )
    aggregates = sorted(
        aggregate_spans(trace["spans"]).values(), key=_SORT_KEYS[sort]
    )
    if top is not None:
        aggregates = aggregates[:top]

    header = (
        f"{'span':<34} {'count':>6} {'total_ms':>10} {'mean_ms':>9} "
        f"{'p95_ms':>9} {'pages':>8} {'dist':>9} {'flops':>11} {'keys':>9}"
    )
    lines = [header, "-" * len(header)]
    for agg in aggregates:
        lines.append(
            f"{agg.name:<34} {agg.count:>6} "
            f"{agg.total_s * 1e3:>10.2f} {agg.mean_s * 1e3:>9.3f} "
            f"{agg.percentile_s(0.95) * 1e3:>9.3f} "
            f"{agg.pages:>8} {agg.distance_computations:>9} "
            f"{agg.distance_flops:>11} {agg.key_comparisons:>9}"
        )
    if not aggregates:
        lines.append("(no spans)")

    metrics = trace.get("metrics", [])
    if metrics:
        lines.append("")
        lines.append("metrics")
        lines.append("-------")
        for record in metrics:
            kind = record["type"]
            if kind in ("counter", "gauge"):
                lines.append(
                    f"  {record['name']:<40} {kind:<9} "
                    f"{record['value']:.6g}"
                )
            elif kind == "histogram":
                count = record["count"]
                mean = record["total"] / count if count else 0.0
                p95 = _histogram_percentile(record, 0.95)
                lines.append(
                    f"  {record['name']:<40} histogram "
                    f"count={count} mean={mean:.6g} p95<={p95:.6g}"
                )
    return "\n".join(lines)


def _histogram_percentile(record: dict, q: float) -> float:
    # nan for an empty histogram, matching Histogram.percentile — 0.0
    # would read as "all observations were fast".
    count = record["count"]
    if not count:
        return math.nan
    rank = math.ceil(q * count)
    seen = 0
    for bound, n in zip(record["bounds"], record["counts"]):
        seen += n
        if seen >= rank:
            return float(bound)
    return math.inf


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    parser.add_argument("trace", help="path to a JSONL trace file")
    parser.add_argument(
        "--sort",
        choices=sorted(_SORT_KEYS),
        default="total",
        help="table ordering (default: total wall time, descending)",
    )
    parser.add_argument(
        "--top", type=int, default=None, help="only show the first N rows"
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="render each knn.query span as an explain-plan tree instead "
        "of the aggregate table",
    )
    args = parser.parse_args(argv)
    try:
        trace = read_jsonl(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    if args.explain:
        from .explain import explain_from_records

        explains = explain_from_records(trace["spans"])
        if not explains:
            print("(no knn.query spans in trace)")
            return 0
        shown = explains if args.top is None else explains[: args.top]
        for i, explain in enumerate(shown):
            if i:
                print()
            print(explain.render())
        if len(shown) < len(explains):
            print(
                f"\n({len(explains) - len(shown)} more queries; "
                "raise --top to see them)"
            )
        return 0
    print(render_report(trace, sort=args.sort, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
