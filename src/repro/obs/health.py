"""Index health telemetry: gauge snapshots, time series, and thresholds.

A :class:`HealthSampler` snapshots the structural health of a live index —
how far online inserts have drifted each partition's mean projection error
(MPE) from its bulk-load value, how much of the dataset is tombstoned or
sitting in the delta store, buffer effectiveness, and WAL growth since the
last checkpoint — into an in-memory time series of :class:`HealthSample`
rows (JSONL-exportable for offline plotting).

MPE drift is the scheme-level early warning the paper's adaptive reduction
implies: each subspace was fit so its members' projection error is small,
and every online insert routed into it adds a *known* residual (the
``ProjDist_r`` computed at routing time).  The live MPE estimate

    (bulk_mpe * bulk_size + sum(insert residuals)) / (bulk_size + n_inserts)

is therefore free to maintain, and its relative drift tells an operator
when the bulk-loaded ellipsoids no longer describe the data and a re-fit /
repack is due — before recall or page-access regressions show up.

:class:`HealthReport` judges the latest sample against direction-aware
thresholds (``ok`` / ``warn``, advisory only); the bench runner embeds its
``as_dict()`` in :class:`~repro.bench.report.BenchReport` as an advisory
section that the regression comparator ignores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "DEFAULT_THRESHOLDS",
    "HealthSample",
    "HealthSampler",
    "HealthReport",
    "Threshold",
    "drift_scores",
]


@dataclass(frozen=True)
class Threshold:
    """Warn when a gauge goes past ``value`` in ``direction``."""

    direction: str  # "above" | "below"
    value: float

    def __post_init__(self) -> None:
        if self.direction not in ("above", "below"):
            raise ValueError(
                f"direction must be 'above' or 'below', "
                f"got {self.direction!r}"
            )

    def status(self, observed: float) -> str:
        if self.direction == "above":
            return "warn" if observed > self.value else "ok"
        return "warn" if observed < self.value else "ok"


#: Advisory warn thresholds for the structural gauges.  Gauges absent here
#: are informational only (always "ok").  Rationale:
#: - mpe_drift_max: a partition's live MPE 50% above its bulk-load value
#:   means the fitted ellipsoid no longer describes its members; re-fit.
#: - tombstone_fraction: >30% dead entries pay their page reads for nothing.
#: - delta_fraction: the unindexed delta store is scanned linearly by every
#:   query; past ~25% of the dataset it dominates probe cost — compact.
#: - wal_commits_since_checkpoint: recovery replays everything after the
#:   last checkpoint; 10k+ committed transactions means a long restart.
DEFAULT_THRESHOLDS: Dict[str, Threshold] = {
    "mpe_drift_max": Threshold("above", 0.50),
    "tombstone_fraction": Threshold("above", 0.30),
    "delta_fraction": Threshold("above", 0.25),
    "wal_commits_since_checkpoint": Threshold("above", 10_000.0),
}


@dataclass(frozen=True)
class HealthSample:
    """One snapshot of an index's health gauges."""

    seq: int
    scheme: str
    label: Optional[str]
    gauges: Dict[str, float]

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "scheme": self.scheme,
            "label": self.label,
            "gauges": dict(self.gauges),
        }


def _live_mpe(subspace, residuals: Dict[int, Tuple[int, float]], i: int):
    """``(live_mpe, drift)`` for one partition: the running live estimate
    and its normalized delta against the build-time MPE
    (``live / bulk - 1``; 0.0 with no inserts, +inf when insert residuals
    land in a partition that was fit with zero error)."""
    n_ins, sum_resid = residuals.get(i, (0, 0.0))
    denom = subspace.size + n_ins
    live = (
        (subspace.mpe * subspace.size + sum_resid) / denom
        if denom
        else 0.0
    )
    if subspace.mpe > 0:
        drift = live / subspace.mpe - 1.0
    else:
        drift = float("inf") if live > 0 else 0.0
    return live, drift


def drift_scores(index) -> Dict[int, float]:
    """Per-partition drift score: normalized live-MPE delta vs. the
    build-time MPE (``live_mpe / bulk_mpe - 1``).

    This is THE drift definition — the ingest reorganization trigger
    (:meth:`repro.ingest.IngestPipeline.check_drift`), the bench health
    section, and the ``mpe_drift_max`` gauge all read it from here, so a
    threshold tuned against one is valid against the others.  Empty for
    indexes without a reduced dataset.
    """
    reduced = getattr(index, "reduced", None)
    if reduced is None:
        return {}
    residuals: Dict[int, Tuple[int, float]] = getattr(
        index, "_insert_residuals", None
    ) or {}
    return {
        i: _live_mpe(subspace, residuals, i)[1]
        for i, subspace in enumerate(reduced.subspaces)
    }


def _mpe_gauges(index) -> Dict[str, float]:
    """Per-partition live MPE estimates and the max relative drift."""
    reduced = getattr(index, "reduced", None)
    if reduced is None:
        return {}
    residuals: Dict[int, Tuple[int, float]] = getattr(
        index, "_insert_residuals", None
    ) or {}
    gauges: Dict[str, float] = {}
    max_drift = 0.0
    for i, subspace in enumerate(reduced.subspaces):
        live, drift = _live_mpe(subspace, residuals, i)
        gauges[f"mpe_live.p{i}"] = live
        max_drift = max(max_drift, drift)
    gauges["mpe_drift_max"] = max_drift
    return gauges


def _delta_entry_count(index) -> int:
    """Online inserts still living in delta structures (scheme-agnostic:
    iDistance tracks per-partition delta pages via ``_delta_location``;
    SeqScan/gLDR keep a shared :class:`~repro.index.dynamic.DeltaStore`)."""
    locations = getattr(index, "_delta_location", None)
    if locations is not None:
        return len(locations)
    delta = getattr(index, "delta", None)
    if delta is not None:
        return len(delta.rids)
    return 0


def sample_gauges(index) -> Dict[str, float]:
    """Snapshot every health gauge the index can answer right now."""
    gauges: Dict[str, float] = {}
    gauges.update(_mpe_gauges(index))

    live = float(index.live_count)
    tombstones = float(len(getattr(index, "_tombstones", ())))
    delta_entries = float(_delta_entry_count(index))
    total = live + tombstones
    gauges["live_count"] = live
    gauges["tombstone_count"] = tombstones
    gauges["tombstone_fraction"] = tombstones / total if total else 0.0
    gauges["delta_entries"] = delta_entries
    gauges["delta_fraction"] = delta_entries / live if live else 0.0
    gauges["buffer_hit_rate"] = float(index.buffer_hit_rate)

    wal = getattr(index, "wal", None)
    if wal is not None:
        stats = wal.stats()
        gauges["wal_bytes"] = float(stats["bytes"])
        gauges["wal_records"] = float(stats["records"])
        gauges["wal_commits_since_checkpoint"] = float(
            stats["commits_since_checkpoint"]
        )
    return gauges


class HealthSampler:
    """Collects :class:`HealthSample` rows into an in-memory time series."""

    def __init__(self) -> None:
        self.samples: List[HealthSample] = []

    def sample(self, index, label: Optional[str] = None) -> HealthSample:
        """Snapshot ``index`` now; ``label`` names the moment (e.g. the
        bench leg that just finished)."""
        row = HealthSample(
            seq=len(self.samples),
            scheme=getattr(index, "name", "?"),
            label=label,
            gauges=sample_gauges(index),
        )
        self.samples.append(row)
        return row

    @property
    def latest(self) -> Optional[HealthSample]:
        return self.samples[-1] if self.samples else None

    def drift_score(self, index) -> Dict[int, float]:
        """Per-partition normalized live-MPE drift (the single shared
        definition — see :func:`drift_scores`)."""
        return drift_scores(index)

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """One ``{"type": "health", ...}`` record per sample; returns the
        record count.  Appendable alongside trace JSONL files."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for row in self.samples:
                fh.write(
                    json.dumps({"type": "health", **row.as_dict()}) + "\n"
                )
        return len(self.samples)

    def report(
        self, thresholds: Optional[Dict[str, Threshold]] = None
    ) -> "HealthReport":
        return HealthReport.from_sampler(self, thresholds=thresholds)


@dataclass(frozen=True)
class HealthReport:
    """Threshold judgement of the latest sample.  Advisory only — nothing
    here gates a bench comparison."""

    gauges: Dict[str, float]
    status: Dict[str, str]  # gauge name -> "ok" | "warn" (thresholded only)
    n_samples: int
    scheme: str = "?"
    warnings: Tuple[str, ...] = field(default_factory=tuple)

    @staticmethod
    def from_sampler(
        sampler: HealthSampler,
        thresholds: Optional[Dict[str, Threshold]] = None,
    ) -> "HealthReport":
        thresholds = (
            thresholds if thresholds is not None else DEFAULT_THRESHOLDS
        )
        latest = sampler.latest
        gauges = dict(latest.gauges) if latest else {}
        status: Dict[str, str] = {}
        warnings: List[str] = []
        for name, threshold in thresholds.items():
            if name not in gauges:
                continue
            verdict = threshold.status(gauges[name])
            status[name] = verdict
            if verdict == "warn":
                warnings.append(
                    f"{name}={gauges[name]:.4g} is "
                    f"{threshold.direction} {threshold.value:.4g}"
                )
        return HealthReport(
            gauges=gauges,
            status=status,
            n_samples=len(sampler.samples),
            scheme=latest.scheme if latest else "?",
            warnings=tuple(warnings),
        )

    @property
    def ok(self) -> bool:
        return not self.warnings

    def as_dict(self) -> dict:
        """JSON-ready form for :class:`~repro.bench.report.BenchReport`'s
        advisory ``health`` section."""
        return {
            "ok": self.ok,
            "scheme": self.scheme,
            "n_samples": self.n_samples,
            "gauges": {k: v for k, v in sorted(self.gauges.items())},
            "status": dict(self.status),
            "warnings": list(self.warnings),
        }
