"""JSONL serialization of traces (spans + metrics).

One record per line.  Span records preserve event-log order (the tracer's
start order) and carry the cost delta as a flat object, e.g.::

    {"type": "span", "name": "knn.expand_radius", "index": 12, "parent": 11,
     "depth": 2, "start_s": 0.0134, "duration_s": 0.0009,
     "attrs": {"radius": 0.35},
     "cost": {"logical_reads": 9, "physical_reads": 4, ...}}

Metric records follow the spans (``type`` of ``counter`` / ``gauge`` /
``histogram``).  The format is line-appendable so several tracers (e.g. one
per benchmark run) can share one file; :func:`read_jsonl` just pools the
records.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Union

__all__ = ["span_to_record", "write_jsonl", "read_jsonl"]


def span_to_record(span) -> dict:
    """Flatten a :class:`~repro.obs.tracer.Span` for serialization."""
    return {
        "type": "span",
        "name": span.name,
        "index": span.index,
        "parent": span.parent,
        "depth": span.depth,
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "attrs": {key: _jsonable(v) for key, v in span.attributes.items()},
        "cost": (
            dataclasses.asdict(span.cost) if span.cost is not None else None
        ),
    }


def _jsonable(value):
    """Coerce numpy scalars and other oddities into JSON-native types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def write_jsonl(path: Union[str, Path], tracer, append: bool = False) -> int:
    """Write a tracer's spans and metrics to ``path``; returns #records.

    A leading ``{"type": "trace", "id": ...}`` record names the trace (the
    tracer's ``trace_id``) so stitched multi-worker traces stay attributable
    after export; readers that don't know the record type see it under
    ``read_jsonl``'s ``"other"`` bucket.
    """
    path = Path(path)
    records: List[dict] = []
    trace_id = getattr(tracer, "trace_id", None)
    if trace_id is not None and trace_id != "null":
        records.append({"type": "trace", "id": trace_id})
    records.extend(span_to_record(s) for s in tracer.spans)
    metrics = getattr(tracer, "metrics", None)
    if metrics is not None:
        records.extend(metrics.as_records())
    with path.open("a" if append else "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return len(records)


def read_jsonl(path: Union[str, Path]) -> Dict[str, List[dict]]:
    """Load a trace file into ``{"spans": [...], "metrics": [...]}``.

    Blank lines are skipped; unknown record types are preserved under
    ``"other"`` so future record kinds do not break old readers.  A line
    that fails to parse (e.g. a partial final line from an interrupted
    writer) is recorded under ``"other"`` as
    ``{"type": "malformed", "line": <1-based number>}`` instead of
    aborting the whole read.
    """
    spans: List[dict] = []
    metrics: List[dict] = []
    other: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                other.append({"type": "malformed", "line": lineno})
                continue
            if not isinstance(record, dict):
                other.append({"type": "malformed", "line": lineno})
                continue
            kind = record.get("type")
            if kind == "span":
                spans.append(record)
            elif kind in ("counter", "gauge", "histogram"):
                metrics.append(record)
            else:
                other.append(record)
    return {"spans": spans, "metrics": metrics, "other": other}
