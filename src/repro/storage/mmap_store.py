"""Out-of-core page store backed by one mmap'd file.

The in-memory :class:`~repro.storage.pager.PageStore` holds every payload
as a live Python object — fine for simulation, useless for datasets larger
than RAM.  :class:`MmapPageStore` keeps the same contract (ids, checksums,
typed errors, ``register_pool`` invalidation, WAL/fault wrappers compose
unchanged) while the page *images* live in a memory-mapped file the OS
pages in and out on demand:

* **Layout** — an append-only heap of pickled payload blobs.  A small
  in-memory table maps ``page_id -> (offset, length, size_bytes,
  checksum, lsn)``; ``overwrite`` appends a fresh blob and repoints the
  table entry (old space is leaked until the store is rebuilt, exactly
  like a log-structured heap between compactions).  The file doubles via
  ``mmap.resize`` when the heap outgrows it.
* **Fetch semantics** — every :meth:`fetch` deserializes a *fresh*
  :class:`~repro.storage.pager.Page`; callers must persist payload
  mutations through :meth:`overwrite` (the indexes already do — that is
  what the checksum restamp on write is for).  This is why the base
  store grew :meth:`~repro.storage.pager.PageStore.stamp_lsn` and
  :meth:`~repro.storage.pager.PageStore.corrupt_checksum`: WAL LSNs and
  injected bit rot must land in the metadata table, not on a transient
  deserialized copy.
* **Durability semantics** — :meth:`flush` msync's the mapping (the
  ``fsync`` analogue); :meth:`close` flushes, unmaps and deletes the
  backing file when the store created it itself (anonymous temp-file
  mode).  Pass ``path`` to keep the heap on a caller-owned file instead.
* **Pickling** — checkpoint/snapshot pickle whole indexes; the store
  serializes its raw blobs plus the table, and rebuilds into a fresh
  temp-backed mapping on unpickle, so crash-recovery round trips work
  with no special casing in :mod:`repro.persist` or :mod:`repro.recovery`.
"""

from __future__ import annotations

import mmap
import os
import pickle
import tempfile
import zlib
from typing import Any, Dict, List, Optional, Union

from .metrics import CostCounters
from .pager import (
    PAGE_SIZE,
    Page,
    PageNotFoundError,
    PageOverflowError,
    PageStore,
)

__all__ = ["MmapPageStore"]

#: Initial heap size; doubled as needed.  1 MiB keeps temp files cheap for
#: the many short-lived stores tests create.
_INITIAL_CAPACITY = 1 << 20


class _PageMeta:
    """Table entry for one live page (mutable: overwrite/LSN/corruption)."""

    __slots__ = ("offset", "length", "size_bytes", "checksum", "lsn")

    def __init__(self, offset, length, size_bytes, checksum, lsn=None):
        self.offset = offset
        self.length = length
        self.size_bytes = size_bytes
        self.checksum = checksum
        self.lsn = lsn


class MmapPageStore(PageStore):
    """A :class:`PageStore` whose page images live in an mmap'd heap file."""

    def __init__(
        self,
        counters: Optional[CostCounters] = None,
        path: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.counters = counters if counters is not None else CostCounters()
        self._pools: List[Any] = []
        self._next_id = 0
        self._meta: Dict[int, _PageMeta] = {}
        self._open_heap(path)

    # -- heap file management --------------------------------------------

    def _open_heap(self, path) -> None:
        if path is None:
            fd, self._path = tempfile.mkstemp(
                prefix="repro_mmap_", suffix=".pages"
            )
            self._file = os.fdopen(fd, "r+b")
            self._owns_file = True
        else:
            self._path = os.fspath(path)
            self._file = open(self._path, "w+b")
            self._owns_file = False
        self._capacity = _INITIAL_CAPACITY
        self._file.truncate(self._capacity)
        self._mm = mmap.mmap(self._file.fileno(), self._capacity)
        self._write_pos = 0

    def _append_blob(self, blob: bytes) -> int:
        """Write ``blob`` at the heap tail, growing the map if needed;
        returns its offset."""
        end = self._write_pos + len(blob)
        if end > self._capacity:
            new_capacity = self._capacity
            while new_capacity < end:
                new_capacity *= 2
            # mmap.resize grows the backing file too (ftruncate + remap).
            self._mm.resize(new_capacity)
            self._capacity = new_capacity
        offset = self._write_pos
        self._mm[offset:end] = blob
        self._write_pos = end
        return offset

    def flush(self) -> None:
        """msync the mapping to the backing file (fsync semantics)."""
        self._mm.flush()

    def close(self) -> None:
        """Flush, unmap and close; deletes the heap file when owned.

        Idempotent.  A closed store serves no further reads or writes.
        """
        mm = getattr(self, "_mm", None)
        if mm is None:
            return
        try:
            if not mm.closed:
                mm.flush()
                mm.close()
            self._file.close()
        finally:
            self._mm = None
            if self._owns_file:
                try:
                    os.unlink(self._path)
                except OSError:
                    pass

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    @property
    def heap_bytes(self) -> int:
        """Bytes appended to the heap so far (including leaked blobs)."""
        return self._write_pos

    @property
    def path(self) -> str:
        """Filesystem path of the backing heap file."""
        return self._path

    # -- PageStore contract ----------------------------------------------

    def __len__(self) -> int:
        return len(self._meta)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._meta

    @property
    def allocated_pages(self) -> int:
        return len(self._meta)

    def _put(
        self,
        page_id: int,
        payload: Any,
        size_bytes: int,
        lsn: Optional[int] = None,
    ) -> None:
        if size_bytes > PAGE_SIZE:
            raise PageOverflowError(
                f"payload of {size_bytes} bytes exceeds the "
                f"{PAGE_SIZE}-byte page capacity"
            )
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        # CRC over the canonical pickle bytes == page_checksum(payload),
        # without serializing twice.
        checksum = zlib.crc32(blob) & 0xFFFFFFFF
        offset = self._append_blob(blob)
        self._meta[page_id] = _PageMeta(
            offset, len(blob), size_bytes, checksum, lsn
        )

    def allocate(self, payload: Any, size_bytes: int) -> int:
        page_id = self._next_id
        self._put(page_id, payload, size_bytes)
        self._next_id += 1
        self.counters.count_page_write()
        return page_id

    def overwrite(self, page_id: int, payload: Any, size_bytes: int) -> None:
        if page_id not in self._meta:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        self._put(page_id, payload, size_bytes)
        self.counters.count_page_write()

    def fetch(self, page_id: int) -> Page:
        meta = self._meta.get(page_id)
        if meta is None:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        blob = self._mm[meta.offset:meta.offset + meta.length]
        return Page(
            page_id,
            pickle.loads(blob),
            meta.size_bytes,
            meta.checksum,
            meta.lsn,
        )

    def free(self, page_id: int) -> None:
        if page_id not in self._meta:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        del self._meta[page_id]
        for pool in self._pools:
            pool.invalidate(page_id)

    def install(
        self,
        page_id: int,
        payload: Any,
        size_bytes: int,
        lsn: Optional[int] = None,
    ) -> None:
        self._put(page_id, payload, size_bytes, lsn)
        self._next_id = max(self._next_id, page_id + 1)
        self.counters.count_page_write()
        for pool in self._pools:
            pool.invalidate(page_id)

    def discard(self, page_id: int) -> None:
        if page_id in self._meta:
            self.free(page_id)

    # -- metadata mutation hooks (see PageStore) -------------------------

    def stamp_lsn(self, page_id: int, lsn: Optional[int]) -> None:
        meta = self._meta.get(page_id)
        if meta is None:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        meta.lsn = lsn

    def corrupt_checksum(self, page_id: int, bit: int = 0) -> None:
        meta = self._meta.get(page_id)
        if meta is None:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        if meta.checksum is None:
            meta.checksum = 0
        meta.checksum ^= 1 << (bit % 32)

    # -- pickling (checkpoint / snapshot / crash recovery) ---------------

    def __getstate__(self) -> dict:
        pages = {
            pid: (
                bytes(self._mm[m.offset:m.offset + m.length]),
                m.size_bytes,
                m.checksum,
                m.lsn,
            )
            for pid, m in self._meta.items()
        }
        # _pools rides along: the buffer pool holds a back-reference to
        # this store, and pickle's memo keeps the cycle consistent inside
        # one snapshot payload.
        return {
            "counters": self.counters,
            "next_id": self._next_id,
            "pages": pages,
            "pools": self._pools,
        }

    def __setstate__(self, state: dict) -> None:
        self.counters = state["counters"]
        self._pools = state["pools"]
        self._next_id = state["next_id"]
        self._meta = {}
        self._open_heap(None)
        for pid, (blob, size_bytes, checksum, lsn) in state["pages"].items():
            offset = self._append_blob(blob)
            self._meta[pid] = _PageMeta(
                offset, len(blob), size_bytes, checksum, lsn
            )
