"""Simulated paged storage.

The 2003 testbed measured real disk pages; this reproduction replaces the
disk with an in-memory page store that charges the same accounting.  A
:class:`PageStore` hands out fixed-size pages identified by integer ids; a
page carries an arbitrary Python payload (a B+-tree node, a Hybrid-tree node,
a run of data vectors) plus a declared byte size, and the store refuses
payloads that exceed the page capacity.  Reads normally go through a
:class:`~repro.storage.buffer.BufferPool`, which is where physical-read
accounting happens.

Byte-size constants mirror the layout assumed in DESIGN.md §5: 4 KiB pages,
float32 vector components, 8-byte keys and pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from .metrics import CostCounters

__all__ = [
    "PAGE_SIZE",
    "FLOAT_SIZE",
    "KEY_SIZE",
    "POINTER_SIZE",
    "RID_SIZE",
    "Page",
    "PageStore",
    "PageOverflowError",
    "vector_bytes",
    "pages_for_vectors",
]

#: Simulated page size in bytes (a common DBMS default, used by the paper's
#: era of systems).
PAGE_SIZE = 4096
#: Bytes per stored vector component (float32).
FLOAT_SIZE = 4
#: Bytes per B+-tree key (float64 distance value).
KEY_SIZE = 8
#: Bytes per child-page pointer.
POINTER_SIZE = 8
#: Bytes per record identifier stored alongside a leaf key.
RID_SIZE = 8


class PageOverflowError(ValueError):
    """Raised when a payload is declared larger than the page capacity."""


def vector_bytes(dimensionality: int) -> int:
    """Bytes needed to store one ``dimensionality``-dimensional vector."""
    if dimensionality < 0:
        raise ValueError(f"dimensionality must be >= 0, got {dimensionality}")
    return dimensionality * FLOAT_SIZE


def pages_for_vectors(count: int, dimensionality: int) -> int:
    """Pages needed to store ``count`` packed vectors of the given width.

    Vectors are packed without splitting across page boundaries, matching how
    the sequential-scan baseline and index leaves charge their I/O.  Zero- and
    low-dimensional corner cases still cost at least one page when any data
    exists.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return 0
    per_page = max(1, PAGE_SIZE // max(1, vector_bytes(dimensionality)))
    return -(-count // per_page)  # ceil division


@dataclass
class Page:
    """One fixed-size page: an id, a payload, and its declared byte size."""

    page_id: int
    payload: Any
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes > PAGE_SIZE:
            raise PageOverflowError(
                f"payload of {self.size_bytes} bytes exceeds the "
                f"{PAGE_SIZE}-byte page capacity"
            )
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


class PageStore:
    """Allocates pages and serves raw (uncached, uncounted) page fetches.

    The store itself never counts reads: callers either go through a
    :class:`~repro.storage.buffer.BufferPool` (random access, counted as
    logical/physical reads) or call :meth:`read_sequential` for streaming
    scans (counted as sequential reads).  Writes are counted here because
    construction cost does not depend on the buffer pool.
    """

    def __init__(self, counters: Optional[CostCounters] = None) -> None:
        self._pages: Dict[int, Page] = {}
        self._next_id = 0
        self.counters = counters if counters is not None else CostCounters()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def allocate(self, payload: Any, size_bytes: int) -> int:
        """Store a payload on a fresh page and return its id."""
        page = Page(self._next_id, payload, size_bytes)
        self._pages[page.page_id] = page
        self._next_id += 1
        self.counters.count_page_write()
        return page.page_id

    def overwrite(self, page_id: int, payload: Any, size_bytes: int) -> None:
        """Replace the payload of an existing page."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        self._pages[page_id] = Page(page_id, payload, size_bytes)
        self.counters.count_page_write()

    def fetch(self, page_id: int) -> Page:
        """Return a page without any I/O accounting (buffer pool internal)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} was never allocated") from None

    def read_sequential(self, page_id: int) -> Page:
        """Read a page as part of a streaming scan (no buffering)."""
        page = self.fetch(page_id)
        self.counters.count_sequential_read()
        return page

    def free(self, page_id: int) -> None:
        """Release a page (dynamic deletes; unused pages stop counting)."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} was never allocated")
        del self._pages[page_id]

    @property
    def allocated_pages(self) -> int:
        """Number of live pages (index size in pages)."""
        return len(self._pages)
