"""Simulated paged storage.

The 2003 testbed measured real disk pages; this reproduction replaces the
disk with an in-memory page store that charges the same accounting.  A
:class:`PageStore` hands out fixed-size pages identified by integer ids; a
page carries an arbitrary Python payload (a B+-tree node, a Hybrid-tree node,
a run of data vectors) plus a declared byte size, and the store refuses
payloads that exceed the page capacity.  Reads normally go through a
:class:`~repro.storage.buffer.BufferPool`, which is where physical-read
accounting happens.

Byte-size constants mirror the layout assumed in DESIGN.md §5: 4 KiB pages,
float32 vector components, 8-byte keys and pointers.

Robustness (DESIGN.md §9): every page carries a CRC32 checksum over its
payload bytes, stamped at allocate/overwrite time and verified on every
buffer-pool miss.  A mismatch raises the typed :class:`PageCorruptionError`
— corruption is detected, never silently served.  Unknown or freed page ids
raise :class:`PageNotFoundError` (a ``KeyError`` subclass), and freeing a
page invalidates it in every registered buffer pool so a stale cached
payload can never be read back.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import CostCounters

__all__ = [
    "PAGE_SIZE",
    "FLOAT_SIZE",
    "KEY_SIZE",
    "POINTER_SIZE",
    "RID_SIZE",
    "Page",
    "PageStore",
    "PageOverflowError",
    "PageNotFoundError",
    "PageCorruptionError",
    "TransientPageError",
    "page_checksum",
    "verify_page",
    "vector_bytes",
    "rows_per_page",
    "pages_for_vectors",
]

#: Simulated page size in bytes (a common DBMS default, used by the paper's
#: era of systems).
PAGE_SIZE = 4096
#: Bytes per stored vector component (float32).
FLOAT_SIZE = 4
#: Bytes per B+-tree key (float64 distance value).
KEY_SIZE = 8
#: Bytes per child-page pointer.
POINTER_SIZE = 8
#: Bytes per record identifier stored alongside a leaf key.
RID_SIZE = 8


class PageOverflowError(ValueError):
    """Raised when a payload is declared larger than the page capacity."""


class PageNotFoundError(KeyError):
    """Raised when a page id was never allocated or has been freed.

    Subclasses ``KeyError`` so pre-existing callers that caught the bare
    ``KeyError`` keep working; new code should catch this type.
    """


class PageCorruptionError(IOError):
    """Raised when a page's payload no longer matches its stored checksum.

    Covers bit flips and torn writes in simulated storage as well as
    tampered snapshot files (see :mod:`repro.persist`).  Detection is the
    contract: corrupted data is never silently returned to a caller.
    """


class TransientPageError(IOError):
    """A read failed transiently (injected fault); retrying may succeed.

    Raised by :class:`~repro.storage.faults.FaultyPageStore`; the buffer
    pool's read path retries these with bounded backoff.
    """


def page_checksum(payload: Any) -> int:
    """CRC32 over the payload's serialized bytes (the simulated page image).

    The payload objects live in memory, so "the bytes on the page" are the
    payload's canonical pickle serialization.  Within one process (and its
    forked children) equal object state yields equal bytes, which is the
    only property verification needs.
    """
    return zlib.crc32(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ) & 0xFFFFFFFF


def verify_page(page: "Page") -> None:
    """Raise :class:`PageCorruptionError` if the page fails its checksum.

    Pages stamped with ``checksum=None`` (hand-built in tests, or predating
    the checksum format) are skipped rather than failed.
    """
    if page.checksum is None:
        return
    actual = page_checksum(page.payload)
    if actual != page.checksum:
        raise PageCorruptionError(
            f"page {page.page_id} failed checksum verification "
            f"(stored 0x{page.checksum:08x}, computed 0x{actual:08x})"
        )


def vector_bytes(dimensionality: int) -> int:
    """Bytes needed to store one ``dimensionality``-dimensional vector."""
    if dimensionality < 0:
        raise ValueError(f"dimensionality must be >= 0, got {dimensionality}")
    return dimensionality * FLOAT_SIZE


def rows_per_page(dimensionality: int) -> int:
    """Packed vectors of the given width that fit on one page (>= 1)."""
    return max(1, PAGE_SIZE // max(1, vector_bytes(dimensionality)))


def pages_for_vectors(count: int, dimensionality: int) -> int:
    """Pages needed to store ``count`` packed vectors of the given width.

    Vectors are packed without splitting across page boundaries, matching how
    the sequential-scan baseline and index leaves charge their I/O.  Zero- and
    low-dimensional corner cases still cost at least one page when any data
    exists.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return 0
    return -(-count // rows_per_page(dimensionality))  # ceil division


@dataclass
class Page:
    """One fixed-size page: an id, a payload, and its declared byte size.

    ``checksum`` is the CRC32 of the payload bytes at the last write
    (:func:`page_checksum`), or ``None`` for pages built outside a
    :class:`PageStore` (checksum verification then skips the page).

    ``lsn`` is the log sequence number of the last write-ahead-log record
    that wrote this page (see :mod:`repro.storage.wal`), or ``None`` for
    pages written outside WAL protection.  Recovery's redo pass compares it
    against each log record's LSN so replaying a record twice is a no-op.
    """

    page_id: int
    payload: Any
    size_bytes: int
    checksum: Optional[int] = field(default=None, compare=False)
    lsn: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes > PAGE_SIZE:
            raise PageOverflowError(
                f"payload of {self.size_bytes} bytes exceeds the "
                f"{PAGE_SIZE}-byte page capacity"
            )
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


class PageStore:
    """Allocates pages and serves raw (uncached, uncounted) page fetches.

    The store itself never counts reads: callers either go through a
    :class:`~repro.storage.buffer.BufferPool` (random access, counted as
    logical/physical reads) or call :meth:`read_sequential` for streaming
    scans (counted as sequential reads).  Writes are counted here because
    construction cost does not depend on the buffer pool.
    """

    def __init__(self, counters: Optional[CostCounters] = None) -> None:
        self._pages: Dict[int, Page] = {}
        self._next_id = 0
        self.counters = counters if counters is not None else CostCounters()
        # Buffer pools layered over this store; free() invalidates the page
        # in every one of them so a stale cached payload is never served.
        self._pools: List[Any] = []

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def register_pool(self, pool: Any) -> None:
        """Attach a buffer pool for free-time invalidation callbacks."""
        if pool not in self._pools:
            self._pools.append(pool)

    @property
    def next_page_id(self) -> int:
        """The id :meth:`allocate` will assign next.

        The write-ahead log needs it to frame a page-allocation record
        *before* the allocation lands (log-before-write ordering).
        """
        return self._next_id

    def allocate(self, payload: Any, size_bytes: int) -> int:
        """Store a payload on a fresh page and return its id."""
        page = Page(
            self._next_id, payload, size_bytes, page_checksum(payload)
        )
        self._pages[page.page_id] = page
        self._next_id += 1
        self.counters.count_page_write()
        return page.page_id

    def overwrite(self, page_id: int, payload: Any, size_bytes: int) -> None:
        """Replace the payload of an existing page (checksum restamped)."""
        if page_id not in self._pages:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        self._pages[page_id] = Page(
            page_id, payload, size_bytes, page_checksum(payload)
        )
        self.counters.count_page_write()

    def fetch(self, page_id: int) -> Page:
        """Return a page without any I/O accounting (buffer pool internal)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            ) from None

    def raw_fetch(self, page_id: int) -> Page:
        """Fetch bypassing any fault injection layered over the store.

        Used by accounting-replay paths (the batch engine's
        ``descend_path``) and build-time internals, which model *no* real
        I/O and must therefore never observe injected faults.  On a plain
        store this is :meth:`fetch`; :class:`~repro.storage.faults.
        FaultyPageStore` overrides it to reach the pristine inner store.
        """
        return self.fetch(page_id)

    def read_sequential(self, page_id: int) -> Page:
        """Read a page as part of a streaming scan (no buffering)."""
        page = self.fetch(page_id)
        self.counters.count_sequential_read()
        return page

    def free(self, page_id: int) -> None:
        """Release a page (dynamic deletes; unused pages stop counting).

        Every registered buffer pool drops the page too, so a later fetch
        of the dead id fails typed instead of serving a stale payload.
        """
        if page_id not in self._pages:
            raise PageNotFoundError(
                f"page {page_id} was never allocated or has been freed"
            )
        del self._pages[page_id]
        for pool in self._pools:
            pool.invalidate(page_id)

    # -- metadata mutation hooks -----------------------------------------
    #
    # The WAL wrapper stamps LSNs and the fault injector flips checksum
    # bits *after* a page landed.  On this in-memory store those are plain
    # in-place mutations of the stored Page object; a serializing store
    # (MmapPageStore) overrides them to update its metadata table instead —
    # mutating a fetched Page there would touch a transient deserialized
    # copy and silently persist nothing.

    def stamp_lsn(self, page_id: int, lsn: Optional[int]) -> None:
        """Record the LSN of the last logged write to ``page_id``."""
        self.raw_fetch(page_id).lsn = lsn

    def corrupt_checksum(self, page_id: int, bit: int = 0) -> None:
        """Flip one bit of the stored checksum word (simulated bit rot).

        The next checksum verification of the page (any buffer-pool miss)
        raises :class:`PageCorruptionError`.
        """
        page = self.raw_fetch(page_id)
        if page.checksum is None:
            page.checksum = 0
        page.checksum ^= 1 << (bit % 32)

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        """Push buffered writes to the backing medium.

        A no-op for the in-memory store; :class:`~repro.storage.mmap_store.
        MmapPageStore` overrides it.  Part of the PageStore protocol so
        wrappers can forward it blindly.
        """

    def close(self) -> None:
        """Release backing resources (files, mappings).

        A no-op for the in-memory store; serializing stores override it.
        Wrappers forward to their inner store, so ``store.close()`` always
        reaches the physical layer no matter how deep the stack is.
        """

    # -- recovery support ------------------------------------------------

    def install(
        self,
        page_id: int,
        payload: Any,
        size_bytes: int,
        lsn: Optional[int] = None,
    ) -> None:
        """Place a page image at a *specific* id (recovery's redo path).

        Unlike :meth:`allocate`/:meth:`overwrite`, the caller dictates the
        page id: redo must reproduce exactly the ids the crashed run
        assigned, whether or not the page survived into the checkpoint.
        The id counter advances past the installed id, the checksum is
        restamped, and any registered buffer pool drops its stale copy.
        """
        self._pages[page_id] = Page(
            page_id, payload, size_bytes, page_checksum(payload), lsn
        )
        self._next_id = max(self._next_id, page_id + 1)
        self.counters.count_page_write()
        for pool in self._pools:
            pool.invalidate(page_id)

    def discard(self, page_id: int) -> None:
        """Idempotent :meth:`free` (redo of a logged free record)."""
        if page_id in self._pages:
            self.free(page_id)

    @property
    def allocated_pages(self) -> int:
        """Number of live pages (index size in pages)."""
        return len(self._pages)
