"""Page-level write-ahead logging for the simulated storage stack.

PR 3 made the *read* path fault-tolerant; this module is the write-path
counterpart (DESIGN.md §10).  Every page mutation applied through a
:class:`WALPageStore` is first framed as a CRC-checked record and appended
to an on-disk :class:`WriteAheadLog`, then applied to the wrapped in-memory
:class:`~repro.storage.pager.PageStore` with the record's LSN stamped on the
page.  A process crash therefore loses at most the in-memory state — the
log plus the last checkpoint snapshot always reconstruct every *committed*
mutation (:mod:`repro.recovery`).

Log format
----------
The log is a flat append-only file of records::

    +-------+-----+--------+-------+-------------+-------+---------+
    | magic | lsn | txn_id | rtype | payload_len | crc32 | payload |
    | 4s    | u64 | u64    | u8    | u32         | u32   | bytes   |
    +-------+-----+--------+-------+-------------+-------+---------+

``crc32`` covers the header fields *and* the payload, so any torn tail —
a header cut short, a payload cut short, or a record half-written when the
power died — fails verification and replay stops at the last intact record
(``wal.torn_tail_dropped`` counts the discarded bytes).  LSNs increase by
one per record and survive checkpoint truncation, so a page stamped with an
LSN can always be ordered against any record in any later log segment.

Record types
------------
``BEGIN``/``COMMIT`` bracket one logical index mutation (an insert or a
delete).  ``PAGE_ALLOC``/``PAGE_WRITE``/``PAGE_FREE`` carry physical page
after-images (the payload object pickled at append time, i.e. the page
bytes as of that write).  ``COMMIT`` additionally carries the index-level
metadata after-image (delta-store entry, radii, tree scalars) that lives
outside the page store.  ``CHECKPOINT`` names a snapshot directory; records
before the last checkpoint are dead weight and are dropped when the
checkpoint truncates the log.

Transactions are strictly serial (the reproduction's mutators are
single-threaded); a page mutation outside an open transaction raises
:class:`WALProtocolError` rather than silently escaping crash protection.

Crashpoints
-----------
A :class:`~repro.storage.faults.CrashPoint` armed on the
:class:`WALPageStore` raises :class:`~repro.storage.faults.CrashError` at
the N-th physical page write — before or after the corresponding log
append, by plan — which is how the recovery tests sweep every torn
schedule deterministically.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple, Union

from ..obs.metrics import MetricsRegistry
from .faults import CrashError, CrashPoint
from .metrics import CostCounters
from .pager import Page, PageStore

__all__ = [
    "WAL_MAGIC",
    "BEGIN",
    "PAGE_ALLOC",
    "PAGE_WRITE",
    "PAGE_FREE",
    "COMMIT",
    "CHECKPOINT",
    "RECORD_TYPE_NAMES",
    "WALError",
    "WALProtocolError",
    "WALRecord",
    "WALTransaction",
    "WriteAheadLog",
    "WALPageStore",
]

#: Per-record magic: cheap resynchronization check ahead of the CRC.
WAL_MAGIC = b"WALR"

# Record types.
BEGIN = 1
PAGE_ALLOC = 2
PAGE_WRITE = 3
PAGE_FREE = 4
COMMIT = 5
CHECKPOINT = 6

RECORD_TYPE_NAMES = {
    BEGIN: "BEGIN",
    PAGE_ALLOC: "PAGE_ALLOC",
    PAGE_WRITE: "PAGE_WRITE",
    PAGE_FREE: "PAGE_FREE",
    COMMIT: "COMMIT",
    CHECKPOINT: "CHECKPOINT",
}

#: Header minus the trailing CRC word (which covers header + payload).
_PREFIX = struct.Struct("<4sQQBI")
_CRC = struct.Struct("<I")
_HEADER_SIZE = _PREFIX.size + _CRC.size


class WALError(RuntimeError):
    """Base class for write-ahead-log failures."""


class WALProtocolError(WALError):
    """The WAL was used outside its contract: a page mutation without an
    open transaction, nested transactions, or commit of a foreign/closed
    transaction.  These are caller bugs, never recoverable at runtime."""


class WALRecord:
    """One decoded log record (immutable value object)."""

    __slots__ = ("lsn", "txn_id", "rtype", "payload")

    def __init__(self, lsn: int, txn_id: int, rtype: int, payload: Any):
        self.lsn = lsn
        self.txn_id = txn_id
        self.rtype = rtype
        self.payload = payload

    @property
    def type_name(self) -> str:
        return RECORD_TYPE_NAMES.get(self.rtype, f"UNKNOWN({self.rtype})")

    def __repr__(self) -> str:  # debugging aid for recovery reports
        return (
            f"WALRecord(lsn={self.lsn}, txn={self.txn_id}, "
            f"type={self.type_name})"
        )


class WALTransaction:
    """Handle for one open logical mutation (insert/delete).

    The mutator calls :meth:`set_meta` with the index-level after-image
    just before the transaction commits; recovery hands that payload back
    to ``VectorIndex._apply_recovery_meta`` after redoing the
    transaction's page records.
    """

    __slots__ = ("txn_id", "kind", "meta", "committed")

    def __init__(self, txn_id: int, kind: str) -> None:
        self.txn_id = txn_id
        self.kind = kind
        self.meta: Optional[dict] = None
        self.committed = False

    def set_meta(self, meta: dict) -> None:
        self.meta = meta


def _encode(lsn: int, txn_id: int, rtype: int, payload: Any) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    prefix = _PREFIX.pack(WAL_MAGIC, lsn, txn_id, rtype, len(body))
    crc = zlib.crc32(prefix + body) & 0xFFFFFFFF
    return prefix + _CRC.pack(crc) + body


def _decode_stream(
    data: bytes,
) -> Tuple[List[WALRecord], int]:
    """Decode records from ``data``; return them plus the byte offset of
    the first invalid/torn record (== ``len(data)`` for a clean log)."""
    records: List[WALRecord] = []
    offset = 0
    total = len(data)
    while True:
        if total - offset < _HEADER_SIZE:
            break
        magic, lsn, txn_id, rtype, length = _PREFIX.unpack_from(data, offset)
        if magic != WAL_MAGIC:
            break
        (crc,) = _CRC.unpack_from(data, offset + _PREFIX.size)
        body_start = offset + _HEADER_SIZE
        if total - body_start < length:
            break  # payload torn off mid-record
        body = data[body_start : body_start + length]
        actual = (
            zlib.crc32(data[offset : offset + _PREFIX.size] + body)
            & 0xFFFFFFFF
        )
        if actual != crc:
            break
        try:
            payload = pickle.loads(body)
        except Exception:
            break  # CRC collision on garbage — treat as torn
        records.append(WALRecord(lsn, txn_id, rtype, payload))
        offset = body_start + length
    return records, offset


class WriteAheadLog:
    """Append-only, CRC-framed, LSN-ordered log file.

    Opening an existing log scans it, keeps the longest valid prefix, and
    truncates any torn tail in place (counted in ``wal.torn_tail_dropped``
    bytes) — the next LSN continues after the last surviving record.

    Parameters
    ----------
    path:
        Log file location (created empty when absent).
    metrics:
        Registry for ``wal.*`` counters; a private one is created when
        omitted.
    fsync:
        Issue ``os.fsync`` on every flush.  Defaults off: the tests crash
        processes logically (exceptions), not physically, and the paper's
        cost model has no fsync column.
    """

    def __init__(
        self,
        path: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fsync = fsync
        self._active: Optional[WALTransaction] = None
        next_lsn, next_txn = 1, 1
        if self.path.exists():
            records, valid_bytes, torn = self.scan(self.path)
            if torn:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_bytes)
                self.metrics.counter("wal.torn_tail_dropped").inc(torn)
            if records:
                next_lsn = records[-1].lsn + 1
                next_txn = (
                    max(r.txn_id for r in records) + 1
                )
            self._records_in_log = len(records)
            self._bytes_in_log = valid_bytes
            # Commits since the last CHECKPOINT record in the surviving
            # log.  Counting only records past that LSN keeps the reopened
            # figure exact even for logs written with truncate=False (or
            # any log where commits precede a checkpoint), matching what
            # the incremental counter would have reported pre-reopen.
            last_ckpt_lsn = max(
                (r.lsn for r in records if r.rtype == CHECKPOINT),
                default=0,
            )
            self._commits_since_checkpoint = sum(
                1
                for r in records
                if r.rtype == COMMIT and r.lsn > last_ckpt_lsn
            )
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._records_in_log = 0
            self._bytes_in_log = 0
            self._commits_since_checkpoint = 0
        self._next_lsn = next_lsn
        self._next_txn = max(next_txn, 1)
        self._fh = open(self.path, "ab")

    # ------------------------------------------------------------------
    # low-level record I/O
    # ------------------------------------------------------------------

    @staticmethod
    def scan(
        path: Union[str, Path]
    ) -> Tuple[List[WALRecord], int, int]:
        """Decode ``path`` → ``(records, valid_bytes, torn_tail_bytes)``.

        Never raises on a torn tail: the longest valid record prefix is
        returned and the remainder reported as dropped bytes, which is the
        crash-recovery contract (a half-written record *is* the expected
        end state of a crash mid-append).
        """
        data = Path(path).read_bytes()
        records, valid_bytes = _decode_stream(data)
        return records, valid_bytes, len(data) - valid_bytes

    def append(self, rtype: int, payload: Any, txn_id: int = 0) -> int:
        """Frame and append one record; returns its LSN."""
        lsn = self._next_lsn
        self._next_lsn += 1
        frame = _encode(lsn, txn_id, rtype, payload)
        self._fh.write(frame)
        self._records_in_log += 1
        self._bytes_in_log += len(frame)
        self.metrics.counter("wal.appends").inc()
        self.metrics.counter("wal.bytes_appended").inc(len(frame))
        return lsn

    def flush(self) -> None:
        self._fh.flush()
        if self.fsync:
            import os

            os.fsync(self._fh.fileno())

    def records(self) -> List[WALRecord]:
        """All currently durable records (flushes, then re-reads disk)."""
        self.flush()
        records, _, _ = self.scan(self.path)
        return records

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._next_lsn - 1

    def stats(self) -> dict:
        """Log size and checkpoint recency, tracked incrementally.

        No disk re-scan: ``bytes``/``records`` follow appends and
        truncating checkpoints in memory (validated against the on-disk
        scan at open), so the health sampler can poll this per operation.
        ``commits_since_checkpoint`` is the recovery-replay backlog —
        the checkpoint age measured in committed operations.
        """
        return {
            "bytes": self._bytes_in_log,
            "records": self._records_in_log,
            "commits_since_checkpoint": self._commits_since_checkpoint,
            "last_lsn": self.last_lsn,
        }

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __getstate__(self) -> None:
        raise TypeError(
            "WriteAheadLog holds an open file and cannot be pickled; "
            "detach the WAL (VectorIndex.disable_wal) before snapshotting"
        )

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    @property
    def active_txn(self) -> Optional[WALTransaction]:
        return self._active

    def begin(self, kind: str) -> WALTransaction:
        """Open a transaction (strictly serial: nesting raises)."""
        if self._active is not None:
            raise WALProtocolError(
                f"transaction {self._active.txn_id} "
                f"({self._active.kind}) is still open"
            )
        txn = WALTransaction(self._next_txn, kind)
        self._next_txn += 1
        self.append(BEGIN, {"kind": kind}, txn.txn_id)
        self._active = txn
        return txn

    def commit(self, txn: WALTransaction) -> int:
        """Durably commit: the COMMIT record (carrying the index metadata
        after-image) is appended and flushed; only then is the mutation
        recoverable."""
        if txn is not self._active:
            raise WALProtocolError(
                "commit of a transaction that is not the open one"
            )
        lsn = self.append(
            COMMIT, {"kind": txn.kind, "meta": txn.meta}, txn.txn_id
        )
        self.flush()
        self.metrics.counter("wal.commits").inc()
        self._commits_since_checkpoint += 1
        txn.committed = True
        self._active = None
        return lsn

    def abandon(self, txn: WALTransaction) -> None:
        """Drop an open transaction without committing (error paths).

        Nothing is appended: recovery discards transactions without a
        COMMIT record, which makes in-process failure and power loss the
        same case.
        """
        if txn is self._active:
            self._active = None

    @contextmanager
    def transaction(self, kind: str) -> Iterator[WALTransaction]:
        """``with wal.transaction("insert") as txn:`` — commit on success,
        abandon on any exception (including a planned crash)."""
        txn = self.begin(kind)
        try:
            yield txn
        except BaseException:
            self.abandon(txn)
            raise
        self.commit(txn)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def checkpoint(
        self,
        snapshot_path: Union[str, Path],
        truncate: bool = True,
        generation: Optional[int] = None,
        extra: Optional[dict] = None,
    ) -> int:
        """Record that a snapshot at ``snapshot_path`` captures all state
        up to this point.

        With ``truncate`` (the default) the log is rewritten to contain
        only the CHECKPOINT record — everything earlier is reachable from
        the snapshot, so recovery work and log size stay bounded by the
        update traffic since the last checkpoint.  LSNs keep counting
        across the truncation.

        ``generation`` stamps the index generation the snapshot belongs to
        (generational reorganization, DESIGN.md §15); recovery cross-checks
        it against the snapshot manifest so an old-generation snapshot can
        never silently replay a newer generation's log.  ``extra`` rides
        along in the CHECKPOINT payload for caller-level watermarks (the
        ingest pipeline stores its oplog sequence there); the reserved
        ``snapshot``/``generation`` keys cannot be overridden.
        """
        if self._active is not None:
            raise WALProtocolError(
                "cannot checkpoint while a transaction is open"
            )
        lsn = self._next_lsn
        self._next_lsn += 1
        payload: dict = {}
        if extra:
            reserved = {"snapshot", "generation"} & set(extra)
            if reserved:
                raise WALProtocolError(
                    f"checkpoint extra payload uses reserved keys "
                    f"{sorted(reserved)}"
                )
            payload.update(extra)
        payload["snapshot"] = str(snapshot_path)
        if generation is not None:
            payload["generation"] = int(generation)
        frame = _encode(lsn, 0, CHECKPOINT, payload)
        if truncate:
            self._fh.close()
            with open(self.path, "wb") as fh:
                fh.write(frame)
            self._fh = open(self.path, "ab")
            self._records_in_log = 1
            self._bytes_in_log = len(frame)
        else:
            self._fh.write(frame)
            self._records_in_log += 1
            self._bytes_in_log += len(frame)
        self._commits_since_checkpoint = 0
        self.flush()
        self.metrics.counter("wal.checkpoints").inc()
        return lsn


class WALPageStore(PageStore):
    """A :class:`PageStore` wrapper enforcing log-before-write.

    Like :class:`~repro.storage.faults.FaultyPageStore`, the wrapper owns
    no pages: all state lives in ``inner``, so it can be attached to and
    detached from a live index (``VectorIndex.enable_wal`` /
    ``disable_wal``).  Every mutation requires an open
    :class:`WALTransaction` and is appended to the log before it is
    applied; the record's LSN is stamped onto the page.  Reads are
    delegated untouched.

    ``crashpoint`` arms a deterministic :class:`CrashPoint`;
    ``physical_writes`` counts mutations since attach (the crashpoint's
    clock).
    """

    def __init__(
        self,
        inner: PageStore,
        wal: WriteAheadLog,
        crashpoint: Optional[CrashPoint] = None,
    ) -> None:
        # Deliberately no super().__init__: all page state stays in
        # `inner` (same pattern as FaultyPageStore).
        self.inner = inner
        self.wal = wal
        self.crashpoint = crashpoint
        self.physical_writes = 0

    # -- write path ------------------------------------------------------

    def _txn_id(self) -> int:
        txn = self.wal.active_txn
        if txn is None:
            raise WALProtocolError(
                "page mutation outside a WAL transaction; wrap index "
                "updates in the index's insert()/delete() (or "
                "wal.transaction()) so they are crash-consistent"
            )
        return txn.txn_id

    def _crash_if(self, phase: str, write_no: int) -> None:
        cp = self.crashpoint
        if (
            cp is not None
            and cp.phase == phase
            and write_no == cp.at_write
        ):
            raise CrashError(
                f"simulated crash at physical page write {write_no} "
                f"({phase})"
            )

    def _log_write(self, rtype: int, payload: dict) -> int:
        """One physical write: count, maybe crash, log, maybe crash."""
        txn_id = self._txn_id()
        self.physical_writes += 1
        n = self.physical_writes
        self._crash_if("before_log", n)
        lsn = self.wal.append(rtype, payload, txn_id)
        self._crash_if("after_log", n)
        return lsn

    def allocate(self, payload: Any, size_bytes: int) -> int:
        page_id = self.inner.next_page_id
        lsn = self._log_write(
            PAGE_ALLOC,
            {
                "page_id": page_id,
                "payload": payload,
                "size_bytes": size_bytes,
            },
        )
        allocated = self.inner.allocate(payload, size_bytes)
        if allocated != page_id:  # pragma: no cover - store invariant
            raise WALProtocolError(
                f"store allocated page {allocated}, log recorded {page_id}"
            )
        self.inner.stamp_lsn(page_id, lsn)
        return page_id

    def overwrite(self, page_id: int, payload: Any, size_bytes: int) -> None:
        lsn = self._log_write(
            PAGE_WRITE,
            {
                "page_id": page_id,
                "payload": payload,
                "size_bytes": size_bytes,
            },
        )
        self.inner.overwrite(page_id, payload, size_bytes)
        self.inner.stamp_lsn(page_id, lsn)

    def free(self, page_id: int) -> None:
        self._log_write(PAGE_FREE, {"page_id": page_id})
        self.inner.free(page_id)

    # -- delegated read/introspection interface -------------------------

    @property
    def counters(self) -> CostCounters:
        return self.inner.counters

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.inner

    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    @property
    def next_page_id(self) -> int:
        return self.inner.next_page_id

    def register_pool(self, pool) -> None:
        # Delegate so free-time invalidation reaches pools registered here
        # (the FaultyPageStore regression taught us this one).
        self.inner.register_pool(pool)

    def fetch(self, page_id: int) -> Page:
        return self.inner.fetch(page_id)

    def raw_fetch(self, page_id: int) -> Page:
        return self.inner.raw_fetch(page_id)

    def read_sequential(self, page_id: int) -> Page:
        return self.inner.read_sequential(page_id)

    def install(self, page_id, payload, size_bytes, lsn=None) -> None:
        self.inner.install(page_id, payload, size_bytes, lsn)

    def discard(self, page_id: int) -> None:
        self.inner.discard(page_id)

    def stamp_lsn(self, page_id, lsn) -> None:
        self.inner.stamp_lsn(page_id, lsn)

    def corrupt_checksum(self, page_id: int, bit: int = 0) -> None:
        self.inner.corrupt_checksum(page_id, bit)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()
