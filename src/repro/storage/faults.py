"""Deterministic fault injection for the simulated storage stack.

The paper's testbed assumes a reliable disk; a production service cannot.
This module makes the failure modes of real storage reproducible on the
simulated :class:`~repro.storage.pager.PageStore`:

* **transient read errors** — a fetch raises
  :class:`~repro.storage.pager.TransientPageError`; the buffer pool's read
  path retries with bounded backoff and the query proceeds unharmed;
* **torn writes** — an allocate/overwrite lands, but the stored page image
  no longer matches its checksum, so the next buffer-pool miss raises
  :class:`~repro.storage.pager.PageCorruptionError`;
* **bit flips** — a resting page is corrupted in place at read time, with
  the same detection guarantee.

Faults come from a :class:`FaultPlan`: a seed plus per-operation
probabilities.  The plan is consumed through one private
``random.Random(seed)`` stream in operation order, so a given plan against
a given access pattern injects exactly the same faults every run — the
equivalence tests rely on this to assert that transient-only plans leave
KNN results bit-identical to a fault-free run.

Usage::

    plan = FaultPlan(seed=7, transient_read_prob=0.05)
    faulty = index.enable_faults(plan)        # wraps the index's store
    index.knn(query, k)                        # retries happen inside
    faulty.fault_metrics.counters["faults.retried"].value  # > 0

Every injection and retry is counted in the wrapper's
:class:`~repro.obs.metrics.MetricsRegistry` (``faults.injected``,
``faults.injected.<kind>``, ``faults.retried``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional, Set

from ..obs.metrics import MetricsRegistry
from .metrics import CostCounters
from .pager import (
    Page,
    PageStore,
    TransientPageError,
)

__all__ = [
    "CrashError",
    "CrashPoint",
    "FaultPlan",
    "FaultyPageStore",
    "RetryPolicy",
    "corrupt_page",
]


class CrashError(RuntimeError):
    """A simulated process crash (power loss) at a planned crashpoint.

    Raised by :class:`~repro.storage.wal.WALPageStore` when its
    :class:`CrashPoint` fires.  The in-memory index that was mutating is
    considered lost; only the write-ahead log and the last checkpoint
    snapshot survive, and :func:`repro.recovery.recover` rebuilds from
    those.  Catching this anywhere except a crash harness is a bug.
    """


@dataclass(frozen=True)
class CrashPoint:
    """Deterministic crash schedule: die at the N-th physical page write.

    ``at_write`` is 1-based and counts every page mutation (allocate,
    overwrite, free) applied through the WAL-protected store since the
    crashpoint was armed.  ``phase`` selects which side of the
    log-before-write ordering the power is cut on:

    * ``"after_log"`` (default) — the WAL record for the N-th write is
      durable but the page image never lands: the classic torn schedule
      redo-only recovery exists for;
    * ``"before_log"`` — the crash precedes even the log append, so the
      log ends at the previous record.

    Either way the interrupted transaction has no COMMIT record and is
    discarded by recovery; the two phases exist to prove that claim from
    both sides of every write.
    """

    at_write: int
    phase: str = "after_log"

    def __post_init__(self) -> None:
        if self.at_write < 1:
            raise ValueError(
                f"at_write is 1-based and must be >= 1, got {self.at_write}"
            )
        if self.phase not in ("after_log", "before_log"):
            raise ValueError(
                f"phase must be 'after_log' or 'before_log', "
                f"got {self.phase!r}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for transient read faults.

    ``max_attempts`` counts the initial try: 5 means one read plus up to
    four retries.  Backoff doubles per retry from ``backoff_s``; the
    default is 0 because simulated storage has no device to wait out —
    set it > 0 when modelling real latency.
    """

    max_attempts: int = 5
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )

    def sleep(self, attempt: int) -> None:
        """Back off before retry number ``attempt`` (1-based)."""
        if self.backoff_s > 0:
            time.sleep(self.backoff_s * (2 ** (attempt - 1)))


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of which faults to inject, and how often.

    Probabilities are per operation (per fetch for reads, per
    allocate/overwrite for writes).  ``transient_repeat`` is how many
    consecutive attempts a transient fault survives before the page reads
    clean — keep it below the retry policy's ``max_attempts`` and every
    transient fault is recoverable, which is the precondition for the
    bit-identical-results guarantee.  ``max_faults`` caps total injections
    (``None`` = unlimited).
    """

    seed: int
    transient_read_prob: float = 0.0
    torn_write_prob: float = 0.0
    bit_flip_prob: float = 0.0
    transient_repeat: int = 1
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "transient_read_prob", "torn_write_prob", "bit_flip_prob"
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.transient_repeat < 1:
            raise ValueError(
                f"transient_repeat must be >= 1, got {self.transient_repeat}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(
                f"max_faults must be >= 0, got {self.max_faults}"
            )

    @property
    def transient_only(self) -> bool:
        """True when the plan can never corrupt data (recoverable faults
        only) — the regime under which results must stay bit-identical."""
        return self.torn_write_prob == 0.0 and self.bit_flip_prob == 0.0


def corrupt_page(store: PageStore, page_id: int, bit: int = 0) -> None:
    """Flip one bit of a stored page's image (simulated at-rest bit rot).

    The flip is modelled on the page's checksum word — equivalent, for
    detection purposes, to flipping a payload bit, without having to
    rewrite a live Python payload object.  The next checksum verification
    of the page (any buffer-pool miss) raises
    :class:`~repro.storage.pager.PageCorruptionError`.

    Routed through :meth:`~repro.storage.pager.PageStore.corrupt_checksum`
    so serializing stores (mmap) persist the flip in their metadata table
    instead of on a transient deserialized Page.
    """
    store.corrupt_checksum(page_id, bit)


class FaultyPageStore(PageStore):
    """A :class:`PageStore` wrapper that injects a :class:`FaultPlan`.

    Install with :meth:`repro.index.base.VectorIndex.enable_faults` (or by
    swapping it in wherever the inner store was referenced).  The wrapper
    owns no pages — all state lives in the wrapped store, so wrapping an
    already-built index is safe and reversible.
    """

    def __init__(
        self,
        inner: PageStore,
        plan: FaultPlan,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # Deliberately no super().__init__: the wrapper delegates all page
        # state to `inner` and must never shadow it with its own dict.
        self.inner = inner
        self.plan = plan
        self.fault_metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._rng = random.Random(plan.seed)
        self._injected = 0
        # page_id -> remaining consecutive attempts that must still fail.
        self._pending_transient: dict = {}
        # Pages already hit by a bit flip (corruption is permanent).
        self._flipped: Set[int] = set()

    # -- plan bookkeeping ------------------------------------------------

    def _budget_left(self) -> bool:
        return (
            self.plan.max_faults is None
            or self._injected < self.plan.max_faults
        )

    def _draw(self, probability: float) -> bool:
        if probability <= 0.0 or not self._budget_left():
            return False
        if self._rng.random() >= probability:
            return False
        self._injected += 1
        return True

    def _count(self, kind: str) -> None:
        self.fault_metrics.counter("faults.injected").inc()
        self.fault_metrics.counter(f"faults.injected.{kind}").inc()

    @property
    def faults_injected(self) -> int:
        """Total faults injected so far (all kinds)."""
        return self._injected

    # -- delegated storage interface ------------------------------------

    @property
    def counters(self) -> CostCounters:
        return self.inner.counters

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.inner

    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    def register_pool(self, pool) -> None:
        # Must delegate: the wrapper owns no page dict, so a pool kept in a
        # shadow `_pools` list here would never see free-time invalidation
        # (the regression tests/storage/test_faults.py guards this).
        self.inner.register_pool(pool)

    @property
    def next_page_id(self) -> int:
        return self.inner.next_page_id

    def install(self, page_id, payload, size_bytes, lsn=None) -> None:
        self.inner.install(page_id, payload, size_bytes, lsn)

    def stamp_lsn(self, page_id, lsn) -> None:
        self.inner.stamp_lsn(page_id, lsn)

    def corrupt_checksum(self, page_id: int, bit: int = 0) -> None:
        self.inner.corrupt_checksum(page_id, bit)

    def discard(self, page_id: int) -> None:
        self.inner.discard(page_id)
        self._pending_transient.pop(page_id, None)
        self._flipped.discard(page_id)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def raw_fetch(self, page_id: int) -> Page:
        """Fault-free fetch (accounting replay / build internals)."""
        return self.inner.raw_fetch(page_id)

    def allocate(self, payload, size_bytes: int) -> int:
        page_id = self.inner.allocate(payload, size_bytes)
        if self._draw(self.plan.torn_write_prob):
            self._count("torn_write")
            corrupt_page(self.inner, page_id)
        return page_id

    def overwrite(self, page_id: int, payload, size_bytes: int) -> None:
        self.inner.overwrite(page_id, payload, size_bytes)
        if self._draw(self.plan.torn_write_prob):
            self._count("torn_write")
            corrupt_page(self.inner, page_id)

    def fetch(self, page_id: int) -> Page:
        pending = self._pending_transient.get(page_id, 0)
        if pending > 0:
            if pending == 1:
                del self._pending_transient[page_id]
            else:
                self._pending_transient[page_id] = pending - 1
            raise TransientPageError(
                f"injected transient read fault on page {page_id} "
                f"({pending - 1} repeats left)"
            )
        if self._draw(self.plan.transient_read_prob):
            self._count("transient")
            if self.plan.transient_repeat > 1:
                self._pending_transient[page_id] = (
                    self.plan.transient_repeat - 1
                )
            raise TransientPageError(
                f"injected transient read fault on page {page_id}"
            )
        if page_id not in self._flipped and self._draw(
            self.plan.bit_flip_prob
        ):
            self._count("bit_flip")
            self._flipped.add(page_id)
            corrupt_page(self.inner, page_id)
        return self.inner.fetch(page_id)

    def read_sequential(self, page_id: int) -> Page:
        page = self.fetch(page_id)
        self.inner.counters.count_sequential_read()
        return page

    def free(self, page_id: int) -> None:
        self.inner.free(page_id)
        self._pending_transient.pop(page_id, None)
        self._flipped.discard(page_id)
