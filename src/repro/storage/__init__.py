"""Simulated paged storage: page store, LRU buffer pool, cost accounting.

This subpackage is the substrate under every index in the reproduction.  The
paper measured disk page accesses and CPU seconds on a 2003 workstation; we
replace the disk with an in-memory :class:`PageStore` plus an LRU
:class:`BufferPool` that charge deterministic, machine-independent I/O
counts, and we time CPU work with :class:`CostCounters`.
"""

from .buffer import BufferPool
from .faults import (
    CrashError,
    CrashPoint,
    FaultPlan,
    FaultyPageStore,
    RetryPolicy,
    corrupt_page,
)
from .metrics import CostCounters, CostSnapshot
from .mmap_store import MmapPageStore
from .pager import (
    FLOAT_SIZE,
    KEY_SIZE,
    PAGE_SIZE,
    POINTER_SIZE,
    RID_SIZE,
    Page,
    PageCorruptionError,
    PageNotFoundError,
    PageOverflowError,
    PageStore,
    TransientPageError,
    page_checksum,
    pages_for_vectors,
    vector_bytes,
    verify_page,
)

from .wal import (
    WALPageStore,
    WALProtocolError,
    WALRecord,
    WALTransaction,
    WriteAheadLog,
)

__all__ = [
    "BufferPool",
    "CostCounters",
    "CostSnapshot",
    "CrashError",
    "CrashPoint",
    "FLOAT_SIZE",
    "FaultPlan",
    "FaultyPageStore",
    "KEY_SIZE",
    "MmapPageStore",
    "PAGE_SIZE",
    "POINTER_SIZE",
    "RID_SIZE",
    "Page",
    "PageCorruptionError",
    "PageNotFoundError",
    "PageOverflowError",
    "PageStore",
    "RetryPolicy",
    "TransientPageError",
    "WALPageStore",
    "WALProtocolError",
    "WALRecord",
    "WALTransaction",
    "WriteAheadLog",
    "corrupt_page",
    "page_checksum",
    "pages_for_vectors",
    "vector_bytes",
    "verify_page",
]
