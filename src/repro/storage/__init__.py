"""Simulated paged storage: page store, LRU buffer pool, cost accounting.

This subpackage is the substrate under every index in the reproduction.  The
paper measured disk page accesses and CPU seconds on a 2003 workstation; we
replace the disk with an in-memory :class:`PageStore` plus an LRU
:class:`BufferPool` that charge deterministic, machine-independent I/O
counts, and we time CPU work with :class:`CostCounters`.
"""

from .buffer import BufferPool
from .metrics import CostCounters, CostSnapshot
from .pager import (
    FLOAT_SIZE,
    KEY_SIZE,
    PAGE_SIZE,
    POINTER_SIZE,
    RID_SIZE,
    Page,
    PageOverflowError,
    PageStore,
    pages_for_vectors,
    vector_bytes,
)

__all__ = [
    "BufferPool",
    "CostCounters",
    "CostSnapshot",
    "FLOAT_SIZE",
    "KEY_SIZE",
    "PAGE_SIZE",
    "POINTER_SIZE",
    "RID_SIZE",
    "Page",
    "PageOverflowError",
    "PageStore",
    "pages_for_vectors",
    "vector_bytes",
]
