"""LRU buffer pool over a :class:`~repro.storage.pager.PageStore`.

All random page access in the reproduction goes through a buffer pool.  A
read that hits the pool counts only as a logical read; a miss additionally
counts as a physical read — the quantity the paper reports as "I/O cost"
(Figures 9a/9b) — and evicts the least-recently-used resident page if the
pool is full.

The scalability experiment (Figure 11a) relies on the same mechanism at a
coarser granularity: naive MMDR re-scans the dataset every clustering
iteration, so once the data outgrows the buffer each iteration pays physical
reads again, while Scalable MMDR streams each chunk exactly once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from .metrics import CostCounters
from .pager import Page, PageStore

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    store:
        Backing page store.
    capacity_pages:
        Maximum number of resident pages.  Must be >= 1.
    counters:
        Cost accumulator; defaults to the store's counters so one counter set
        sees both writes and reads.
    """

    def __init__(
        self,
        store: PageStore,
        capacity_pages: int,
        counters: Optional[CostCounters] = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        self.store = store
        self.capacity_pages = capacity_pages
        self.counters = counters if counters is not None else store.counters
        self._resident: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Optional :class:`~repro.obs.Tracer` feeding ``buffer.hits`` /
        #: ``buffer.misses`` counters.  ``None`` (the default) keeps the
        #: read path at a single identity check — the index's
        #: ``_measured`` wrapper installs a tracer for the duration of a
        #: traced query and restores ``None`` afterwards.
        self.tracer = None

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._resident

    def read(self, page_id: int) -> Any:
        """Read a page's payload through the pool, with I/O accounting."""
        self.counters.count_logical_read()
        page = self._resident.get(page_id)
        if page is not None:
            self.hits += 1
            self._resident.move_to_end(page_id)
            if self.tracer is not None:
                self.tracer.counter("buffer.hits").inc()
            return page.payload
        self.misses += 1
        self.counters.count_physical_read()
        if self.tracer is not None:
            self.tracer.counter("buffer.misses").inc()
        page = self.store.fetch(page_id)
        self._admit(page)
        return page.payload

    def _admit(self, page: Page) -> None:
        self._resident[page.page_id] = page
        self._resident.move_to_end(page.page_id)
        while len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool (after an overwrite or free)."""
        self._resident.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (e.g. between cold-cache query batches)."""
        self._resident.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the pool (0.0 when no reads yet).

        ``hits``/``misses`` are the pool's own split of the shared
        counters' ``logical_reads`` into cached vs ``physical_reads`` —
        kept locally because the counter set may also be fed by other
        components (sequential scans, page writes), which would skew a
        rate derived from the counters alone.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
