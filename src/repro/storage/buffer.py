"""LRU buffer pool over a :class:`~repro.storage.pager.PageStore`.

All random page access in the reproduction goes through a buffer pool.  A
read that hits the pool counts only as a logical read; a miss additionally
counts as a physical read — the quantity the paper reports as "I/O cost"
(Figures 9a/9b) — and evicts the least-recently-used resident page if the
pool is full.

The scalability experiment (Figure 11a) relies on the same mechanism at a
coarser granularity: naive MMDR re-scans the dataset every clustering
iteration, so once the data outgrows the buffer each iteration pays physical
reads again, while Scalable MMDR streams each chunk exactly once.

The miss path is also where self-healing happens (DESIGN.md §9): a fetch
that raises :class:`~repro.storage.pager.TransientPageError` is retried
under a bounded :class:`~repro.storage.faults.RetryPolicy` (each retry
counted as ``faults.retried``), and every fetched page is checksum-verified
before admission so corruption surfaces as a typed
:class:`~repro.storage.pager.PageCorruptionError` instead of a wrong answer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from .faults import RetryPolicy
from .metrics import CostCounters
from .pager import Page, PageStore, TransientPageError, verify_page

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    store:
        Backing page store.
    capacity_pages:
        Maximum number of resident pages.  Must be >= 1.
    counters:
        Cost accumulator; defaults to the store's counters so one counter set
        sees both writes and reads.
    """

    def __init__(
        self,
        store: PageStore,
        capacity_pages: int,
        counters: Optional[CostCounters] = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        self.store = store
        self.capacity_pages = capacity_pages
        self.counters = counters if counters is not None else store.counters
        self._resident: OrderedDict[int, Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Retry policy for transient read faults on the miss path.
        self.retry = RetryPolicy()
        store.register_pool(self)
        #: Optional :class:`~repro.obs.Tracer` feeding ``buffer.hits`` /
        #: ``buffer.misses`` counters.  ``None`` (the default) keeps the
        #: read path at a single identity check — the index's
        #: ``_measured`` wrapper installs a tracer for the duration of a
        #: traced query and restores ``None`` afterwards.
        self.tracer = None

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._resident

    def read(self, page_id: int) -> Any:
        """Read a page's payload through the pool, with I/O accounting."""
        self.counters.count_logical_read()
        page = self._resident.get(page_id)
        if page is not None:
            self.hits += 1
            self._resident.move_to_end(page_id)
            if self.tracer is not None:
                self.tracer.counter("buffer.hits").inc()
            return page.payload
        self.misses += 1
        self.counters.count_physical_read()
        if self.tracer is not None:
            self.tracer.counter("buffer.misses").inc()
        page = self._fetch_with_retry(page_id)
        verify_page(page)
        self._admit(page)
        return page.payload

    def _fetch_with_retry(self, page_id: int) -> Page:
        """Fetch from the store, absorbing transient faults.

        Retries are bounded by :attr:`retry`; each one increments the
        ``faults.retried`` counter on the store's fault metrics (when the
        store is a :class:`~repro.storage.faults.FaultyPageStore`) and on
        the attached tracer.  Exhausting the budget re-raises the last
        :class:`~repro.storage.pager.TransientPageError` — an unrecoverable
        read is reported, never papered over.
        """
        attempt = 1
        while True:
            try:
                return self.store.fetch(page_id)
            except TransientPageError:
                if attempt >= self.retry.max_attempts:
                    raise
                metrics = getattr(self.store, "fault_metrics", None)
                if metrics is not None:
                    metrics.counter("faults.retried").inc()
                if self.tracer is not None:
                    self.tracer.counter("faults.retried").inc()
                self.retry.sleep(attempt)
                attempt += 1

    def _admit(self, page: Page) -> None:
        self._resident[page.page_id] = page
        self._resident.move_to_end(page.page_id)
        while len(self._resident) > self.capacity_pages:
            self._resident.popitem(last=False)

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool (after an overwrite or free)."""
        self._resident.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (e.g. between cold-cache query batches)."""
        self._resident.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the pool (0.0 when no reads yet).

        ``hits``/``misses`` are the pool's own split of the shared
        counters' ``logical_reads`` into cached vs ``physical_reads`` —
        kept locally because the counter set may also be fed by other
        components (sequential scans, page writes), which would skew a
        rate derived from the counters alone.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
