"""Cost accounting shared by every storage-backed component.

The paper reports two per-query costs for each indexing scheme: page
accesses (I/O cost, Figures 9a/9b) and CPU time (Figures 10a/10b).  Both are
collected here.  Every page read in the reproduction flows through a
:class:`CostCounters` instance attached to the buffer pool, and the search
code times itself with :meth:`CostCounters.cpu_timer`, so experiment
harnesses can diff two snapshots around a query batch and report exactly what
the paper plots.

Distance-computation and key-comparison counts are also tracked.  They are
deterministic (unlike wall-clock time) and are used by the test suite to
cross-check the CPU-cost *trends* the paper claims — e.g. that the Hybrid
tree performs d-dimensional distance computations in its internal nodes while
the extended iDistance only compares 1-dimensional keys.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Iterator

__all__ = ["CostCounters", "CostSnapshot"]


@dataclass
class CostSnapshot:
    """Immutable copy of counter values at one instant.

    Produced by :meth:`CostCounters.snapshot`; two snapshots can be
    subtracted to get the cost of the work done between them.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    page_writes: int = 0
    sequential_reads: int = 0
    distance_computations: int = 0
    distance_flops: int = 0
    key_comparisons: int = 0
    cpu_seconds: float = 0.0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "CostSnapshot") -> "CostSnapshot":
        """Field-wise sum — the merge operation for parallel query workers.

        Addition is commutative field-by-field, but the parallel harness
        still folds worker deltas in chunk order so float ``cpu_seconds``
        accumulates deterministically for a given worker count.
        """
        return CostSnapshot(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_page_reads(self) -> int:
        """Physical page accesses: random (buffer misses) plus sequential."""
        return self.physical_reads + self.sequential_reads


@dataclass
class CostCounters:
    """Mutable cost accumulator.

    Attributes
    ----------
    logical_reads:
        Page read requests, whether or not they hit the buffer pool.
    physical_reads:
        Page reads that missed the buffer pool (what Figure 9 plots).
    page_writes:
        Pages written (index construction cost).
    sequential_reads:
        Pages read by streaming scans that bypass the buffer pool, e.g. the
        sequential-scan baseline of Figure 9.
    distance_computations:
        Full-vector distance evaluations (any metric, any dimensionality).
    distance_flops:
        Dimension-weighted distance work: a d-dimensional evaluation adds d.
        This is the deterministic stand-in for the CPU trends of Figure 10 —
        wall-clock time depends on the host, flops do not.
    key_comparisons:
        Single-dimensional key comparisons (B+-tree traversal).
    cpu_seconds:
        Wall-clock time accumulated inside :meth:`cpu_timer` blocks.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    page_writes: int = 0
    sequential_reads: int = 0
    distance_computations: int = 0
    distance_flops: int = 0
    key_comparisons: int = 0
    cpu_seconds: float = 0.0
    _timer_depth: int = field(default=0, repr=False)

    def count_logical_read(self, pages: int = 1) -> None:
        self.logical_reads += pages

    def count_physical_read(self, pages: int = 1) -> None:
        self.physical_reads += pages

    def count_page_write(self, pages: int = 1) -> None:
        self.page_writes += pages

    def count_sequential_read(self, pages: int = 1) -> None:
        self.sequential_reads += pages

    def count_distance(self, n: int = 1, dims: int = 1) -> None:
        self.distance_computations += n
        self.distance_flops += n * dims

    def count_key_comparison(self, n: int = 1) -> None:
        self.key_comparisons += n

    @contextmanager
    def cpu_timer(self) -> Iterator[None]:
        """Accumulate wall time for the enclosed block into ``cpu_seconds``.

        Nested use is safe: only the outermost block accumulates, so calling
        code can wrap a whole query while helpers wrap themselves too.
        """
        self._timer_depth += 1
        start = time.perf_counter() if self._timer_depth == 1 else None
        try:
            yield
        finally:
            self._timer_depth -= 1
            if start is not None:
                self.cpu_seconds += time.perf_counter() - start

    def merge(self, delta: CostSnapshot) -> None:
        """Fold a snapshot *delta* into these counters.

        Used by the batch/parallel query paths: work accounted elsewhere
        (per-query ledgers, or a forked worker's counter set) is summed and
        folded back so the index's own counters still reflect every query
        it has ever answered.
        """
        for name in _SNAPSHOT_FIELD_NAMES:
            setattr(self, name, getattr(self, name) + getattr(delta, name))

    def snapshot(self) -> CostSnapshot:
        """Copy the current counter values.

        Field-driven (``dataclasses.fields(CostSnapshot)``), so a counter
        added to both dataclass declarations is picked up automatically —
        there is no third place to keep in sync.
        """
        return CostSnapshot(
            **{name: getattr(self, name) for name in _SNAPSHOT_FIELD_NAMES}
        )

    def reset(self) -> None:
        """Zero every counter (timer nesting state is preserved)."""
        for f in fields(CostSnapshot):
            setattr(self, f.name, f.default)


# Snapshot fields are the single source of truth for snapshot()/reset();
# resolved once because snapshot() sits on the per-query hot path.
_SNAPSHOT_FIELD_NAMES = tuple(f.name for f in fields(CostSnapshot))

# Import-time sync guard: every public CostCounters field must have a
# CostSnapshot twin (and vice versa), otherwise snapshot()/__sub__ would
# silently drop the new counter.  Fails fast instead.
_counter_fields = {
    f.name for f in fields(CostCounters) if not f.name.startswith("_")
}
if _counter_fields != set(_SNAPSHOT_FIELD_NAMES):
    raise TypeError(
        "CostCounters and CostSnapshot fields out of sync: "
        f"{sorted(_counter_fields ^ set(_SNAPSHOT_FIELD_NAMES))}"
    )
