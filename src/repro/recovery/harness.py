"""Deterministic crashpoint harness (DESIGN.md §10).

Proves the durability contract end to end: for every physical page write
an update workload issues, simulate a crash at exactly that write
(:class:`~repro.storage.faults.CrashPoint`), recover from WAL + last
checkpoint, validate the recovered B+-tree's structure, and check that
KNN answers are **bit-identical** to a freshly built index over the
surviving logical state (the committed prefix of the workload replayed
through the plain ``insert``/``delete`` API — both paths are
deterministic, so equality is exact, not approximate).
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..index.base import VectorIndex
from ..storage.faults import CrashError, CrashPoint
from ..storage.wal import WriteAheadLog
from .recover import RecoveryReport, checkpoint, recover

__all__ = [
    "CrashOutcome",
    "apply_op",
    "count_update_writes",
    "crash_sweep",
    "make_update_workload",
    "run_crashpoint",
]

#: One workload op: ("insert", point, rid, beta) or ("delete", rid).
Op = Tuple


def make_update_workload(
    points: np.ndarray,
    n_bulk: int,
    rng: np.random.Generator,
    n_inserts: int = 8,
    n_deletes: int = 6,
    beta: float = 0.25,
    noise: float = 0.01,
) -> List[Op]:
    """A seeded, interleaved insert/delete op list.

    Inserts perturb rows sampled from ``points`` (so they route into real
    subspaces) and take fresh rids above ``n_bulk``; deletes pick distinct
    bulk rids.  The interleaving is a seeded shuffle — same generator
    state, same workload, forever.
    """
    points = np.asarray(points, dtype=np.float64)
    ops: List[Op] = []
    rows = rng.integers(0, points.shape[0], size=n_inserts)
    jitter = rng.normal(0.0, noise, size=(n_inserts, points.shape[1]))
    for j in range(n_inserts):
        ops.append(
            ("insert", points[rows[j]] + jitter[j], n_bulk + j, beta)
        )
    victims = rng.choice(n_bulk, size=min(n_deletes, n_bulk), replace=False)
    for rid in victims.tolist():
        ops.append(("delete", int(rid)))
    order = rng.permutation(len(ops))
    return [ops[i] for i in order]


def apply_op(index: VectorIndex, op: Op) -> None:
    if op[0] == "insert":
        _, point, rid, beta = op
        index.insert(point, rid, beta=beta)
    elif op[0] == "delete":
        index.delete(op[1])
    else:
        raise ValueError(f"unknown workload op {op[0]!r}")


@dataclass
class CrashOutcome:
    """What one crashpoint run observed."""

    crashpoint: Optional[CrashPoint]
    crashed: bool
    ops_started: int
    committed_ops: int
    report: RecoveryReport
    invariants_ok: bool
    equivalent: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.invariants_ok and self.equivalent and not self.error


def _prepare(
    build_index: Callable[[], VectorIndex],
    workdir: Path,
    crashpoint: Optional[CrashPoint],
):
    """Fresh index + fresh WAL + initial checkpoint under ``workdir``."""
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    index = build_index()
    wal = WriteAheadLog(workdir / "wal.log")
    wal_store = index.enable_wal(wal, crashpoint=crashpoint)
    checkpoint(index, workdir / "checkpoint")
    return index, wal, wal_store


def count_update_writes(
    build_index: Callable[[], VectorIndex],
    ops: Sequence[Op],
    workdir: Union[str, Path],
) -> int:
    """Physical page writes the full workload issues under WAL (the sweep
    range: crashpoints 1..N are every distinct torn schedule)."""
    index, wal, wal_store = _prepare(
        build_index, Path(workdir) / "probe", None
    )
    for op in ops:
        apply_op(index, op)
    wal.close()
    return wal_store.physical_writes


def run_crashpoint(
    build_index: Callable[[], VectorIndex],
    ops: Sequence[Op],
    workdir: Union[str, Path],
    crashpoint: Optional[CrashPoint],
    queries: np.ndarray,
    k: int,
) -> CrashOutcome:
    """Run the workload into a simulated crash, recover, and verify."""
    tag = (
        f"cp_{crashpoint.phase}_{crashpoint.at_write}"
        if crashpoint is not None
        else "cp_none"
    )
    subdir = Path(workdir) / tag
    index, wal, _ = _prepare(build_index, subdir, crashpoint)
    crashed = False
    ops_started = 0
    for op in ops:
        ops_started += 1
        try:
            apply_op(index, op)
        except CrashError:
            crashed = True
            break
    wal.close()  # the "process" is dead; only the files survive
    del index

    recovered, report = recover(subdir / "wal.log")
    committed = report.metas_applied
    error: Optional[str] = None

    invariants_ok = True
    tree = getattr(recovered, "tree", None)
    if tree is not None and hasattr(tree, "check_invariants"):
        try:
            tree.check_invariants()
        except AssertionError as exc:
            invariants_ok = False
            error = f"invariants: {exc}"

    # Reference: fresh build + the committed prefix via the plain API.
    reference = build_index()
    for op in ops[:committed]:
        apply_op(reference, op)

    equivalent = True
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    for qi, query in enumerate(queries):
        got = recovered.knn(query, k)
        want = reference.knn(query, k)
        if not (
            np.array_equal(got.ids, want.ids)
            and np.array_equal(got.distances, want.distances)
        ):
            equivalent = False
            if error is None:
                error = (
                    f"query {qi}: recovered KNN diverges from reference "
                    f"(ids {got.ids.tolist()} vs {want.ids.tolist()})"
                )
            break

    if crashed and committed != ops_started - 1:
        # A crash interrupts exactly the op in flight; anything else means
        # commits were lost or invented.
        equivalent = False
        if error is None:
            error = (
                f"crash during op {ops_started} but {committed} commits "
                "recovered"
            )
    if not crashed and committed != len(ops):
        equivalent = False
        if error is None:
            error = (
                f"no crash but only {committed}/{len(ops)} commits "
                "recovered"
            )

    return CrashOutcome(
        crashpoint=crashpoint,
        crashed=crashed,
        ops_started=ops_started,
        committed_ops=committed,
        report=report,
        invariants_ok=invariants_ok,
        equivalent=equivalent,
        error=error,
    )


def crash_sweep(
    build_index: Callable[[], VectorIndex],
    ops: Sequence[Op],
    workdir: Union[str, Path],
    queries: np.ndarray,
    k: int,
    phases: Sequence[str] = ("after_log",),
    crashpoints: Optional[Sequence[int]] = None,
) -> List[CrashOutcome]:
    """Sweep crashpoints (default: every physical write the workload
    issues) and return one :class:`CrashOutcome` per schedule."""
    workdir = Path(workdir)
    if crashpoints is None:
        total = count_update_writes(build_index, ops, workdir)
        crashpoints = range(1, total + 1)
    outcomes: List[CrashOutcome] = []
    for phase in phases:
        for n in crashpoints:
            outcomes.append(
                run_crashpoint(
                    build_index,
                    ops,
                    workdir,
                    CrashPoint(at_write=int(n), phase=phase),
                    queries,
                    k,
                )
            )
    return outcomes
