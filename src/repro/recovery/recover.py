"""Redo-only (ARIES-lite) recovery from checkpoint + write-ahead log.

The recovery contract (DESIGN.md §10):

* A **checkpoint** is a :mod:`repro.persist` snapshot of the whole index
  plus a ``CHECKPOINT`` record naming it; the log is truncated to that
  record, so recovery work is bounded by the update traffic since.
* **Analysis** scans the log (tolerating a torn tail — the expected end
  state of a crash mid-append) and collects the transactions that reached
  their ``COMMIT`` record.  Everything else is discarded: an insert or
  delete whose commit never became durable simply never happened
  (atomicity), which makes in-process failure and power loss the same
  case.
* **Redo** replays committed transactions in LSN order: physical page
  after-images are installed into the page store, gated on the page's
  stamped LSN so replay is idempotent; then each commit's index-level
  metadata after-image (delta-store entry, radii, B+-tree scalars — state
  that is not page-resident) is applied via
  ``VectorIndex._apply_recovery_meta``.  There is no undo pass — nothing
  from an uncommitted transaction is ever applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..index.base import VectorIndex
from ..obs.tracer import Tracer, ensure_tracer
from ..persist.snapshot import load_index, save_index, snapshot_generation
from ..storage.wal import (
    CHECKPOINT,
    COMMIT,
    PAGE_ALLOC,
    PAGE_FREE,
    PAGE_WRITE,
    WALError,
    WALRecord,
    WriteAheadLog,
)

__all__ = [
    "GenerationMismatchError",
    "RecoveryError",
    "RecoveryReport",
    "checkpoint",
    "recover",
]


class RecoveryError(WALError):
    """The log + snapshot pair cannot produce a consistent index (no
    checkpoint to start from, snapshot missing, or malformed records)."""


class GenerationMismatchError(RecoveryError):
    """The snapshot belongs to a different index generation than the log's
    CHECKPOINT record declares (DESIGN.md §15).  Replaying a newer
    generation's log onto an older generation's snapshot would silently
    produce a hybrid state, so the pair is rejected outright."""


@dataclass
class RecoveryReport:
    """What one :func:`recover` call saw and did."""

    wal_path: str
    snapshot_path: str
    checkpoint_lsn: int
    records_scanned: int
    torn_tail_bytes: int
    committed_txns: int
    discarded_txns: int
    pages_redone: int
    pages_skipped: int
    pages_freed: int
    metas_applied: int
    committed_kinds: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"recovered from {self.snapshot_path} + "
            f"{self.committed_txns} committed txns "
            f"({self.discarded_txns} discarded, "
            f"{self.pages_redone} pages redone, "
            f"{self.torn_tail_bytes} torn bytes dropped)"
        )


def checkpoint(
    index: VectorIndex,
    snapshot_path: Union[str, Path],
    generation: Optional[int] = None,
) -> int:
    """Snapshot a WAL-protected index and truncate its log.

    The WAL wrapper is detached around the snapshot write (an open log
    file cannot — and must not — be pickled into the snapshot), then
    reattached before the ``CHECKPOINT`` record is appended.  Returns the
    checkpoint record's LSN.

    ``generation`` stamps both the snapshot manifest and the CHECKPOINT
    record, which is what lets :func:`recover` refuse a mixed
    snapshot/log pair with :class:`GenerationMismatchError`.
    """
    wal_store = index.disable_wal()
    if wal_store is None:
        raise RecoveryError(
            "checkpoint requires WAL protection; call enable_wal first"
        )
    try:
        save_index(index, snapshot_path, generation=generation)
    finally:
        index.reattach_wal(wal_store)
    return wal_store.wal.checkpoint(
        snapshot_path, truncate=True, generation=generation
    )


def _analyze(
    records: List[WALRecord],
) -> Tuple[Optional[WALRecord], List[WALRecord], int]:
    """Find the last checkpoint, the committed COMMIT records after it
    (in LSN order), and the count of discarded (uncommitted) txns."""
    ckpt: Optional[WALRecord] = None
    for record in records:
        if record.rtype == CHECKPOINT:
            ckpt = record
    after = [
        r for r in records if ckpt is None or r.lsn > ckpt.lsn
    ]
    commits = [r for r in after if r.rtype == COMMIT]
    committed_ids = {r.txn_id for r in commits}
    seen_ids = {r.txn_id for r in after if r.txn_id != 0}
    return ckpt, commits, len(seen_ids - committed_ids)


def recover(
    wal_path: Union[str, Path],
    snapshot_path: Optional[Union[str, Path]] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[VectorIndex, RecoveryReport]:
    """Rebuild a crash-consistent index from ``wal_path``.

    The baseline state comes from the snapshot the log's last
    ``CHECKPOINT`` record names (override with ``snapshot_path`` when the
    snapshot directory moved).  Returns the recovered index — WAL
    *detached*; the caller re-enables it to resume mutating — plus a
    :class:`RecoveryReport`.
    """
    wal_path = Path(wal_path)
    if not wal_path.is_file():
        raise RecoveryError(f"no write-ahead log at {wal_path}")
    tracer = ensure_tracer(tracer)
    records, _, torn = WriteAheadLog.scan(wal_path)
    ckpt, commits, discarded = _analyze(records)
    if ckpt is None and snapshot_path is None:
        raise RecoveryError(
            f"log {wal_path} holds no CHECKPOINT record and no snapshot "
            "path was given; there is no baseline state to recover onto"
        )
    if snapshot_path is None:
        snapshot_path = ckpt.payload["snapshot"]
    checkpoint_lsn = ckpt.lsn if ckpt is not None else 0

    # Generation cross-check (DESIGN.md §15): a CHECKPOINT stamped with a
    # generation only ever replays onto a snapshot stamped with the same
    # one.  An unstamped snapshot (pre-generation format) paired with a
    # stamped log is equally refused — it cannot prove it matches.
    wal_generation = (
        ckpt.payload.get("generation") if ckpt is not None else None
    )
    if wal_generation is not None:
        snap_generation = snapshot_generation(snapshot_path)
        if snap_generation != wal_generation:
            raise GenerationMismatchError(
                f"log {wal_path} checkpoints generation "
                f"{wal_generation}, but snapshot {snapshot_path} is "
                f"generation {snap_generation}; replaying would build a "
                "hybrid of two generations"
            )

    with tracer.span(
        "recovery.run",
        records=len(records),
        committed=len(commits),
        discarded=discarded,
    ):
        with tracer.span("recovery.load_snapshot"):
            index = load_index(snapshot_path)
        store = index.store
        committed_ids = {r.txn_id for r in commits}
        pages_redone = pages_skipped = pages_freed = 0
        with tracer.span("recovery.redo_pages"):
            for record in records:
                if record.lsn <= checkpoint_lsn:
                    continue
                if record.txn_id not in committed_ids:
                    continue
                if record.rtype in (PAGE_ALLOC, PAGE_WRITE):
                    body = record.payload
                    page_id = body["page_id"]
                    if page_id in store:
                        lsn = store.raw_fetch(page_id).lsn
                        if lsn is not None and lsn >= record.lsn:
                            pages_skipped += 1
                            continue
                    store.install(
                        page_id,
                        body["payload"],
                        body["size_bytes"],
                        lsn=record.lsn,
                    )
                    pages_redone += 1
                elif record.rtype == PAGE_FREE:
                    store.discard(record.payload["page_id"])
                    pages_freed += 1
        metas_applied = 0
        kinds: List[str] = []
        with tracer.span("recovery.redo_meta"):
            for commit in commits:
                meta = commit.payload.get("meta")
                if meta is None:
                    raise RecoveryError(
                        f"COMMIT lsn={commit.lsn} carries no metadata "
                        "after-image; the mutator failed to set_meta"
                    )
                index._apply_recovery_meta(meta)
                metas_applied += 1
                kinds.append(commit.payload.get("kind", "?"))
        # The snapshot's buffer pool may cache pre-crash page objects that
        # redo just replaced — recovery ends with a cold pool.
        index.reset_cache()

    report = RecoveryReport(
        wal_path=str(wal_path),
        snapshot_path=str(snapshot_path),
        checkpoint_lsn=checkpoint_lsn,
        records_scanned=len(records),
        torn_tail_bytes=torn,
        committed_txns=len(commits),
        discarded_txns=discarded,
        pages_redone=pages_redone,
        pages_skipped=pages_skipped,
        pages_freed=pages_freed,
        metas_applied=metas_applied,
        committed_kinds=kinds,
    )
    return index, report
