"""Crash recovery for WAL-protected indexes (DESIGN.md §10).

:func:`recover` rebuilds a crash-consistent index from the last checkpoint
snapshot plus the write-ahead log's committed transactions (redo-only,
ARIES-lite); :func:`checkpoint` writes the snapshot + CHECKPOINT record
pair that bounds recovery work.  :mod:`repro.recovery.harness` sweeps
deterministic crashpoints over an update workload and proves equivalence
with a freshly built index.
"""

from .recover import (
    GenerationMismatchError,
    RecoveryError,
    RecoveryReport,
    checkpoint,
    recover,
)
from .harness import (
    CrashOutcome,
    apply_op,
    count_update_writes,
    crash_sweep,
    make_update_workload,
    run_crashpoint,
)

__all__ = [
    "CrashOutcome",
    "GenerationMismatchError",
    "RecoveryError",
    "RecoveryReport",
    "apply_op",
    "checkpoint",
    "count_update_writes",
    "crash_sweep",
    "make_update_workload",
    "recover",
    "run_crashpoint",
]
