"""The MMDR algorithm (Figure 4): Generate Ellipsoid + Dimensionality
Optimization.

`Generate Ellipsoid` works *multi-level*: it projects the current point set
onto a small ``s_dim``-dimensional PCA subspace, runs elliptical k-means
there, and then checks each discovered semi-ellipsoid by restoring its
members to the original space, fitting a *local* PCA, and measuring the mean
projection error (MPE) at ``s_dim``.  A semi-ellipsoid whose MPE is within
``MaxMPE`` is a genuine ellipsoid — its subspace carries enough information —
otherwise its members are recursively re-clustered at ``2·s_dim``.  The
divide-lower-before-conquer-upper order is the paper's key trick: clusters
separable in a 1- or 2-dimensional projection never pay for high-dimensional
distance computations.

`Dimensionality Optimization` then shrinks each accepted ellipsoid's retained
dimensionality one component at a time while the MPE barely changes, and
finally applies the β threshold: members whose ``ProjDist_r`` exceeds β are
outliers and stay in the original space.

Pseudocode clarifications applied here (details in DESIGN.md): the recursion
guard is ``2·s_dim <= d`` and recurses on the semi-ellipsoid's own data; a
semi-ellipsoid that still fails at the deepest level is accepted anyway and
left for the β filter to prune; groups below ``min_cluster_size`` go straight
to the outlier set; and the number of accepted ellipsoids is capped at MaxEC
by merging the smallest groups into their nearest survivor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster.elliptical import EllipticalKMeans
from ..linalg.mahalanobis import estimate_covariance
from ..linalg.pca import PCAModel, fit_pca, project
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..storage.metrics import CostCounters
from .config import DEFAULT_CONFIG, MMDRConfig
from .geometry import ellipticity, projection_distances
from .subspace import EllipticalSubspace, MMDRModel, MMDRStats, OutlierSet

__all__ = ["MMDR", "CandidateEllipsoid"]


@dataclass(eq=False)
class CandidateEllipsoid:
    """A group accepted by `Generate Ellipsoid`, awaiting optimization."""

    member_ids: np.ndarray
    s_dim: int
    pca: PCAModel
    mpe_at_s_dim: float


class MMDR:
    """Multi-level Mahalanobis-based Dimensionality Reduction.

    Example
    -------
    >>> import numpy as np
    >>> from repro import MMDR, MMDRConfig
    >>> from repro.data import generate_correlated_clusters, SyntheticSpec
    >>> spec = SyntheticSpec(n_points=2000, dimensionality=16, n_clusters=3)
    >>> dataset = generate_correlated_clusters(spec, np.random.default_rng(7))
    >>> model = MMDR().fit(dataset.points, np.random.default_rng(7))
    >>> model.n_subspaces >= 1
    True
    """

    def __init__(self, config: MMDRConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        # Effective minimum group size; fit() raises it to xi*N.
        self._min_group = config.min_cluster_size

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def fit(
        self,
        data: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        counters: Optional[CostCounters] = None,
        tracer: Optional[Tracer] = None,
    ) -> MMDRModel:
        """Discover elliptical subspaces in ``(n, d)`` data.

        ``rng`` seeds the clustering; pass a seeded generator for exact
        reproducibility.  ``counters`` (optional) accumulates distance
        computation counts for the cost experiments.  ``tracer``
        (optional) records the fit's two phases — ``mmdr.generate_ellipsoid``
        and ``mmdr.dimensionality_optimization`` — as spans, with nested
        per-level and per-k-means-iteration spans; it never changes the
        fit itself.
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if n == 0:
            raise ValueError("cannot fit MMDR on an empty dataset")
        rng = rng if rng is not None else np.random.default_rng()
        counters = counters if counters is not None else CostCounters()
        tracer = ensure_tracer(tracer)
        # Table 1's xi (outlier percentage) doubles as the noise floor:
        # groups smaller than xi*N cannot be meaningful clusters at this
        # data size, which keeps the recursion from shaving off thin slices
        # of real ellipsoids and accepting them as separate subspaces.
        self._min_group = max(
            self.config.min_cluster_size,
            int(self.config.outlier_fraction * n),
        )

        start = time.perf_counter()
        before = counters.snapshot()
        stats = MMDRStats()

        candidates: List[CandidateEllipsoid] = []
        outlier_pool: List[np.ndarray] = []
        with tracer.span(
            "mmdr.generate_ellipsoid", counters=counters, n_points=n, dims=d
        ):
            self._generate_ellipsoid(
                data,
                np.arange(n, dtype=np.int64),
                min(self.config.initial_subspace_dim, d),
                candidates,
                outlier_pool,
                rng,
                counters,
                stats,
                tracer,
            )
        return self.finalize(
            data,
            candidates,
            outlier_pool,
            stats,
            counters,
            before,
            start,
            tracer,
        )

    def finalize(
        self,
        data: np.ndarray,
        candidates: List[CandidateEllipsoid],
        outlier_pool: List[np.ndarray],
        stats: MMDRStats,
        counters: CostCounters,
        before,
        start: float,
        tracer: Tracer = NULL_TRACER,
    ) -> MMDRModel:
        """Shared back half of the pipeline: cap the ellipsoid count, merge
        compatible groups, run Dimensionality Optimization, and assemble the
        model.  Also used by :class:`~repro.core.scalable.ScalableMMDR`."""
        n, d = data.shape
        # MPE-respecting merges first (they undo over-segmentation without
        # polluting clusters); only then force the MaxEC cap on whatever is
        # genuinely incompatible.
        with tracer.span(
            "mmdr.merge_candidates",
            counters=counters,
            candidates=len(candidates),
        ):
            if self.config.merge_compatible:
                candidates = self._merge_compatible(data, candidates)
            candidates = self._enforce_max_clusters(data, candidates)

        subspaces: List[EllipticalSubspace] = []
        with tracer.span(
            "mmdr.dimensionality_optimization",
            counters=counters,
            candidates=len(candidates),
        ):
            for candidate in sorted(
                candidates, key=lambda c: c.member_ids.size, reverse=True
            ):
                subspace, rejected = self._optimize_dimensionality(
                    data, candidate, len(subspaces)
                )
                if rejected.size:
                    outlier_pool.append(rejected)
                if subspace is not None:
                    subspaces.append(subspace)

        outlier_ids = (
            np.sort(np.concatenate(outlier_pool))
            if outlier_pool
            else np.zeros(0, dtype=np.int64)
        )
        subspaces, outlier_ids = self._reclaim_outliers(
            data, subspaces, outlier_ids
        )
        outliers = OutlierSet(
            member_ids=outlier_ids,
            points=data[outlier_ids] if outlier_ids.size else np.zeros((0, d)),
        )

        diff = counters.snapshot() - before
        stats.fit_seconds = time.perf_counter() - start
        stats.distance_computations = diff.distance_computations
        if tracer.enabled:
            dims_hist = tracer.histogram(
                "mmdr.retained_dims", buckets=tuple(range(1, 129))
            )
            for subspace in subspaces:
                dims_hist.observe(subspace.reduced_dim)
            tracer.gauge("mmdr.n_subspaces").set(len(subspaces))
            tracer.gauge("mmdr.outlier_fraction").set(
                outlier_ids.size / n if n else 0.0
            )
        return MMDRModel(
            subspaces=subspaces,
            outliers=outliers,
            n_points=n,
            dimensionality=d,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Generate Ellipsoid (recursive multi-level discovery)
    # ------------------------------------------------------------------

    def _generate_ellipsoid(
        self,
        data: np.ndarray,
        ids: np.ndarray,
        s_dim: int,
        candidates: List[CandidateEllipsoid],
        outlier_pool: List[np.ndarray],
        rng: np.random.Generator,
        counters: CostCounters,
        stats: MMDRStats,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        d = data.shape[1]
        if ids.size < self._min_group:
            outlier_pool.append(ids)
            return
        stats.levels_used.append(s_dim)

        with tracer.span(
            "mmdr.generate_level",
            counters=counters,
            s_dim=int(min(s_dim, d)),
            points=int(ids.size),
        ):
            self._generate_level(
                data,
                ids,
                s_dim,
                candidates,
                outlier_pool,
                rng,
                counters,
                stats,
                tracer,
            )

    def _generate_level(
        self,
        data: np.ndarray,
        ids: np.ndarray,
        s_dim: int,
        candidates: List[CandidateEllipsoid],
        outlier_pool: List[np.ndarray],
        rng: np.random.Generator,
        counters: CostCounters,
        stats: MMDRStats,
        tracer: Tracer,
    ) -> None:
        d = data.shape[1]
        subset = data[ids]
        pca = fit_pca(subset)
        s_dim = min(s_dim, d)

        # Discover the ellipsoid "as soon as the shape can be identified"
        # (§4.1): a subset that is already well represented by its own
        # s_dim-dimensional subspace IS a single ellipsoid — clustering it
        # further only fragments it.
        whole_mpe = projection_distances(subset, pca, s_dim).mpe
        if whole_mpe <= self.config.max_mpe:
            candidates.append(
                CandidateEllipsoid(
                    member_ids=ids,
                    s_dim=s_dim,
                    pca=pca,
                    mpe_at_s_dim=whole_mpe,
                )
            )
            return

        projections = project(subset, pca, s_dim)

        semi_groups = self._cluster_projections(
            projections, ids, rng, counters, stats, tracer
        )
        for group_ids in semi_groups:
            if group_ids.size < self._min_group:
                outlier_pool.append(group_ids)
                continue
            # Restore the semi-ellipsoid's own data and re-project locally
            # (Figure 4 lines 5-7): the subspace must describe *this* group.
            group_data = data[group_ids]
            local_pca = fit_pca(group_data)
            dists = projection_distances(group_data, local_pca, s_dim)
            mpe = dists.mpe
            if mpe <= self.config.max_mpe:
                candidates.append(
                    CandidateEllipsoid(
                        member_ids=group_ids,
                        s_dim=s_dim,
                        pca=local_pca,
                        mpe_at_s_dim=mpe,
                    )
                )
            elif 2 * s_dim <= d:
                self._generate_ellipsoid(
                    data,
                    group_ids,
                    2 * s_dim,
                    candidates,
                    outlier_pool,
                    rng,
                    counters,
                    stats,
                    tracer,
                )
            else:
                # Deepest level reached and the group is still poorly
                # represented: accept it and let β prune bad members later.
                candidates.append(
                    CandidateEllipsoid(
                        member_ids=group_ids,
                        s_dim=min(max(s_dim, self.config.max_dim), d),
                        pca=local_pca,
                        mpe_at_s_dim=mpe,
                    )
                )

    def _cluster_projections(
        self,
        projections: np.ndarray,
        ids: np.ndarray,
        rng: np.random.Generator,
        counters: CostCounters,
        stats: MMDRStats,
        tracer: Tracer = NULL_TRACER,
    ) -> List[np.ndarray]:
        """Elliptical k-means in the projected subspace (Figure 4 line 2).

        The cluster count scales down with the subset size: small subsets
        split coarsely (binary) so that a genuinely mixed group separates
        over successive levels without fragmenting below
        ``min_cluster_size`` — the entry check in ``_generate_ellipsoid``
        already guarantees this subset is *not* a single ellipsoid.
        """
        n = projections.shape[0]
        k = min(
            self.config.max_clusters,
            max(2, n // (4 * self._min_group)),
        )
        if n < 2 * self._min_group:
            return [ids]
        estimator = EllipticalKMeans(
            n_clusters=k,
            normalization=self.config.normalization,
            use_lookup=self.config.use_lookup,
            lookup_k=self.config.lookup_k,
            use_activity=self.config.use_activity,
            activity_threshold=self.config.activity_threshold,
            max_outer_iterations=self.config.max_outer_iterations,
            max_inner_iterations=self.config.max_inner_iterations,
        )
        result = estimator.fit(projections, rng, counters, tracer)
        stats.clustering_inner_iterations += result.inner_iterations
        stats.clustering_outer_iterations += result.outer_iterations
        return [
            ids[result.members(cluster)]
            for cluster in range(result.n_clusters)
            if result.members(cluster).size > 0
        ]

    def _enforce_max_clusters(
        self, data: np.ndarray, candidates: List[CandidateEllipsoid]
    ) -> List[CandidateEllipsoid]:
        """Cap the ellipsoid count at MaxEC by merging the smallest groups
        into the nearest (by centroid) surviving group."""
        if len(candidates) <= self.config.max_clusters:
            return candidates
        ranked = sorted(
            candidates, key=lambda c: c.member_ids.size, reverse=True
        )
        survivors = ranked[: self.config.max_clusters]
        for extra in ranked[self.config.max_clusters:]:
            extra_centroid = data[extra.member_ids].mean(axis=0)
            nearest_idx = min(
                range(len(survivors)),
                key=lambda i: float(
                    np.linalg.norm(
                        data[survivors[i].member_ids].mean(axis=0)
                        - extra_centroid
                    )
                ),
            )
            nearest = survivors[nearest_idx]
            merged_ids = np.concatenate(
                [nearest.member_ids, extra.member_ids]
            )
            merged_data = data[merged_ids]
            merged_pca = fit_pca(merged_data)
            s_dim = max(nearest.s_dim, extra.s_dim)
            dists = projection_distances(merged_data, merged_pca, s_dim)
            survivors[nearest_idx] = CandidateEllipsoid(
                member_ids=merged_ids,
                s_dim=s_dim,
                pca=merged_pca,
                mpe_at_s_dim=dists.mpe,
            )
        return survivors

    def _reclaim_outliers(
        self,
        data: np.ndarray,
        subspaces: List[EllipticalSubspace],
        outlier_ids: np.ndarray,
    ):
        """Give pooled outliers one more chance against the final subspaces.

        Figure 4 lines 21-22 define membership purely by ``ProjDist <= β``;
        points that fell out of the recursion early (e.g. fragments below
        ``min_cluster_size``) may still be well represented by a subspace
        that was completed later, so each outlier joins the subspace with
        the smallest ProjDist_r, provided that distance is within β.
        """
        if not subspaces or outlier_ids.size == 0:
            return subspaces, outlier_ids
        points = data[outlier_ids]
        dists = np.stack(
            [s.proj_dist_r(points) for s in subspaces], axis=1
        )
        best = np.argmin(dists, axis=1)
        best_dist = dists[np.arange(outlier_ids.size), best]
        reclaimable = best_dist <= self.config.beta
        if not np.any(reclaimable):
            return subspaces, outlier_ids

        rebuilt: List[EllipticalSubspace] = []
        for idx, subspace in enumerate(subspaces):
            extra = outlier_ids[reclaimable & (best == idx)]
            if extra.size == 0:
                rebuilt.append(subspace)
                continue
            member_ids = np.concatenate([subspace.member_ids, extra])
            member_data = data[member_ids]
            projections = subspace.project(member_data)
            proj_dist_r = subspace.proj_dist_r(member_data)
            proj_dist_e = np.linalg.norm(projections, axis=1)
            rebuilt.append(
                EllipticalSubspace(
                    subspace_id=subspace.subspace_id,
                    mean=subspace.mean,
                    basis=subspace.basis,
                    covariance=estimate_covariance(member_data),
                    member_ids=member_ids,
                    projections=projections,
                    discovered_at_dim=subspace.discovered_at_dim,
                    mpe=float(proj_dist_r.mean()),
                    ellipticity=ellipticity(proj_dist_r, proj_dist_e),
                )
            )
        remaining = outlier_ids[~reclaimable]
        return rebuilt, remaining

    def _merge_compatible(
        self, data: np.ndarray, candidates: List[CandidateEllipsoid]
    ) -> List[CandidateEllipsoid]:
        """Greedily merge ellipsoids whose union still passes the MPE test.

        Elliptical k-means at each recursion level happily over-segments a
        single elongated cluster into several co-planar pieces; two pieces of
        the same true ellipsoid merge into a group whose local subspace still
        has MPE <= MaxMPE, while pieces of *different* ellipsoids do not.
        The pass is quadratic in the ellipsoid count, which `MaxEC` already
        caps at a small constant.
        """
        groups = list(candidates)
        if len(groups) <= 1:
            return groups
        # Stable keys let us memoize failed pairs: a pair is only retried if
        # one of its groups was itself replaced by a merge since the attempt.
        next_key = 0
        keyed = []
        for g in groups:
            keyed.append((next_key, g))
            next_key += 1
        failed: set = set()

        merged = True
        while merged and len(keyed) > 1:
            merged = False
            centroids = np.vstack(
                [data[g.member_ids].mean(axis=0) for _, g in keyed]
            )
            order = sorted(
                (float(np.linalg.norm(centroids[i] - centroids[j])), i, j)
                for i in range(len(keyed))
                for j in range(i + 1, len(keyed))
            )
            for _, i, j in order:
                key_i, group_i = keyed[i]
                key_j, group_j = keyed[j]
                pair = (min(key_i, key_j), max(key_i, key_j))
                if pair in failed:
                    continue
                union = self._try_merge(data, group_i, group_j)
                if union is None:
                    failed.add(pair)
                    continue
                keyed = [
                    entry for idx, entry in enumerate(keyed)
                    if idx not in (i, j)
                ]
                keyed.append((next_key, union))
                next_key += 1
                merged = True
                break
        return [g for _, g in keyed]

    def _try_merge(
        self,
        data: np.ndarray,
        a: CandidateEllipsoid,
        b: CandidateEllipsoid,
    ) -> Optional[CandidateEllipsoid]:
        """The merged candidate if the union is one ellipsoid, else ``None``.

        Two gates run before the expensive joint PCA:

        * *proximity*: the groups' extents must overlap (centroid distance
          at most the sum of their radii).  Fragments of one ellipsoid
          always overlap; well-separated clusters never do, which stops the
          level escalation below from gluing distinct clusters whose union
          happens to fit in a higher-dimensional subspace.
        * *representability*: each group's centroid must be roughly
          representable by the other's subspace.

        The union's MPE is then tested at escalating levels
        ``max(s_a, s_b), 2·max, ...`` capped at ``min(2·max, d)`` — a
        cluster over-segmented at a low level (e.g. thin k-means slices)
        re-merges at the level its full shape actually needs.
        """
        a_points = data[a.member_ids]
        b_points = data[b.member_ids]
        centroid_a = a_points.mean(axis=0)
        centroid_b = b_points.mean(axis=0)
        gap = float(np.linalg.norm(centroid_a - centroid_b))
        radius_a = float(
            np.linalg.norm(a_points - centroid_a, axis=1).max()
        )
        radius_b = float(
            np.linalg.norm(b_points - centroid_b, axis=1).max()
        )
        if gap > radius_a + radius_b:
            return None
        # Mutual representability: each group's centroid must be roughly
        # representable by the other's subspace.  Requiring BOTH directions
        # matters — accepting a one-sided fit lets one broad group
        # chain-absorb its neighbours (observed on the sparse histogram
        # data, where a wide theme's subspace passes near every centroid).
        # The bound is slack (MaxMPE + 2*beta) because a thin fragment's
        # low-dimensional basis sits up to ~beta away from its sibling's
        # centroid along directions its own slice did not sample.
        bound = self.config.max_mpe + 2 * self.config.beta
        if self._subspace_residual(centroid_b, a) > bound:
            return None
        if self._subspace_residual(centroid_a, b) > bound:
            return None

        ids = np.concatenate([a.member_ids, b.member_ids])
        union_data = data[ids]
        pca = fit_pca(union_data)
        d = data.shape[1]
        base = min(max(a.s_dim, b.s_dim), d)
        for s_dim in (base, min(2 * base, d)):
            mpe = projection_distances(union_data, pca, s_dim).mpe
            if mpe <= self.config.max_mpe:
                return CandidateEllipsoid(
                    member_ids=ids, s_dim=s_dim, pca=pca, mpe_at_s_dim=mpe
                )
        return None

    @staticmethod
    def _subspace_residual(
        point: np.ndarray, candidate: CandidateEllipsoid
    ) -> float:
        """Distance from ``point`` to the candidate's retained subspace."""
        centered = point - candidate.pca.mean
        basis = candidate.pca.basis(candidate.s_dim)
        residual = centered - basis @ (basis.T @ centered)
        return float(np.linalg.norm(residual))

    # ------------------------------------------------------------------
    # Dimensionality Optimization (Figure 4 lines 12-24)
    # ------------------------------------------------------------------

    def _optimize_dimensionality(
        self, data: np.ndarray, candidate: CandidateEllipsoid, subspace_id: int
    ):
        """Shrink d_r while MPE barely changes, then apply the β filter.

        Returns ``(subspace_or_None, rejected_ids)``.
        """
        group_data = data[candidate.member_ids]
        pca = candidate.pca
        d = pca.dimensionality

        d_r = min(self.config.max_dim, candidate.s_dim, d)
        current = projection_distances(group_data, pca, d_r)
        while d_r > 1:
            lower = projection_distances(group_data, pca, d_r - 1)
            if lower.mpe - current.mpe >= self.config.mpe_change_threshold:
                break
            d_r -= 1
            current = lower
        member_mask = current.proj_dist_r <= self.config.beta
        rejected = candidate.member_ids[~member_mask]
        kept = candidate.member_ids[member_mask]
        if kept.size < self._min_group:
            # Too little survives β: the whole group is uncorrelated noise.
            return None, candidate.member_ids

        kept_data = data[kept]
        kept_dists = projection_distances(kept_data, pca, d_r)
        mean = pca.mean
        basis = pca.basis(d_r)
        subspace = EllipticalSubspace(
            subspace_id=subspace_id,
            mean=mean,
            basis=basis,
            covariance=estimate_covariance(kept_data),
            member_ids=kept,
            projections=(kept_data - mean) @ basis,
            discovered_at_dim=candidate.s_dim,
            mpe=kept_dists.mpe,
            ellipticity=kept_dists.ellipticity,
        )
        return subspace, rejected
