"""MMDR configuration — Table 1 of the paper, as a frozen dataclass.

Symbols map as follows (Table 1 defaults in parentheses):

===========  =========================  =======================================
Paper        Field                      Meaning
===========  =========================  =======================================
β (0.1)      ``beta``                   ProjDist_r threshold: points whose
                                        distance to their cluster's retained
                                        subspace exceeds β become outliers
MaxMPE       ``max_mpe``                max mean projection error for a
(0.05)                                  semi-ellipsoid to count as discovered
MaxEC (10)   ``max_clusters``           max elliptical clusters
MaxDim (20)  ``max_dim``                max retained dimensionality
ε (0.005)    ``stream_fraction``        data-stream size as a share of N
ξ (0.005)    ``outlier_fraction``       expected share of uncorrelated noise
                                        (used by workload generators and as a
                                        sanity bound in diagnostics)
k (3)        ``lookup_k``               candidate IDs per lookup-table entry
===========  =========================  =======================================

Parameters the paper mentions but leaves unnumbered get explicit fields with
conservative defaults: the Dimensionality Optimization "change of MPE"
threshold (§4.1 line 15), the initial subspace dimensionality the multi-level
recursion starts from, the activity threshold (§6.3 uses 10), and clustering
iteration caps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..linalg.mahalanobis import Normalization

__all__ = ["MMDRConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class MMDRConfig:
    """All knobs of the MMDR pipeline.  Instances are immutable; derive
    variants with :meth:`with_overrides`."""

    # --- Table 1 symbols -------------------------------------------------
    beta: float = 0.1
    max_mpe: float = 0.05
    max_clusters: int = 10
    max_dim: int = 20
    stream_fraction: float = 0.005
    outlier_fraction: float = 0.005
    lookup_k: int = 3

    # --- unnumbered paper parameters -------------------------------------
    #: s_dim the Generate Ellipsoid recursion starts from (§4.1 starts "with
    #: a small subspace dimensionality"; the worked example uses 1).
    initial_subspace_dim: int = 1
    #: "change of MPE < threshold" in Dimensionality Optimization line 15.
    #: Must sit between the MPE jump from dropping a *noise* direction
    #: (tiny) and from dropping a *signal* direction (>= its sigma scale).
    mpe_change_threshold: float = 0.005
    #: Iterations without a membership change before a point is inactive
    #: (§6.3 fixes this to 10).
    activity_threshold: int = 10

    # --- engineering parameters ------------------------------------------
    #: Groups smaller than this are routed to the outlier set instead of
    #: being fitted as ellipsoids (a covariance from a handful of points in
    #: a high-dimensional space is meaningless).
    min_cluster_size: int = 30
    #: Distance normalization for elliptical k-means; "gaussian" is the
    #: Sung–Poggio form, "paper" the verbatim Definition 3.2 formula.
    normalization: Normalization = "gaussian"
    #: Whether elliptical k-means uses the §4.2 lookup table / activity
    #: optimizations (switchable for the ablation benchmarks).
    use_lookup: bool = True
    use_activity: bool = True
    #: Merge discovered ellipsoids whose union still passes MaxMPE — undoes
    #: the over-segmentation elliptical k-means produces on one true cluster.
    merge_compatible: bool = True
    max_outer_iterations: int = 10
    max_inner_iterations: int = 25

    def __post_init__(self) -> None:
        if not 0.0 < self.beta:
            raise ValueError(f"beta must be > 0, got {self.beta}")
        if not 0.0 < self.max_mpe:
            raise ValueError(f"max_mpe must be > 0, got {self.max_mpe}")
        if self.max_clusters < 1:
            raise ValueError(
                f"max_clusters must be >= 1, got {self.max_clusters}"
            )
        if self.max_dim < 1:
            raise ValueError(f"max_dim must be >= 1, got {self.max_dim}")
        if not 0.0 < self.stream_fraction <= 1.0:
            raise ValueError(
                f"stream_fraction must be in (0, 1], got {self.stream_fraction}"
            )
        if not 0.0 <= self.outlier_fraction < 1.0:
            raise ValueError(
                f"outlier_fraction must be in [0, 1), got {self.outlier_fraction}"
            )
        if self.lookup_k < 1:
            raise ValueError(f"lookup_k must be >= 1, got {self.lookup_k}")
        if self.initial_subspace_dim < 1:
            raise ValueError(
                "initial_subspace_dim must be >= 1, "
                f"got {self.initial_subspace_dim}"
            )
        if self.mpe_change_threshold < 0.0:
            raise ValueError(
                "mpe_change_threshold must be >= 0, "
                f"got {self.mpe_change_threshold}"
            )
        if self.min_cluster_size < 2:
            raise ValueError(
                f"min_cluster_size must be >= 2, got {self.min_cluster_size}"
            )

    def with_overrides(self, **changes: Any) -> "MMDRConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)


#: The paper's defaults, ready to import.
DEFAULT_CONFIG = MMDRConfig()
