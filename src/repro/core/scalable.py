"""Scalable MMDR for datasets larger than the buffer (paper §4.3).

Naive MMDR re-scans the whole dataset on every clustering iteration; once
the data outgrows the buffer pool each iteration pays physical I/O again.
Scalable MMDR instead:

1. splits the dataset into *data streams* of ε·N points read in index order,
2. runs `Generate Ellipsoid` on one stream at a time, keeping only the
   resulting small ellipsoids' centroids (and sizes) in an in-memory
   *Ellipsoid Array*,
3. after all streams are consumed, runs `Generate Ellipsoid` once more over
   the Ellipsoid Array itself, merging small ellipsoids into the final
   clusters, and
4. makes one more sequential pass to route every point to its merged cluster
   (nearest constituent small-ellipsoid centroid) before the per-cluster
   Dimensionality Optimization.

The bulk data is therefore scanned sequentially a constant number of times
regardless of how many iterations the per-stream clustering needs — which is
why Figure 11a shows no response-time jump when the data passes the 500 K
buffer limit.  I/O is charged through :class:`~repro.storage.CostCounters`
as sequential page reads so the experiment can report it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..linalg.pca import fit_pca
from ..obs.tracer import NULL_TRACER, Tracer, ensure_tracer
from ..storage.metrics import CostCounters
from ..storage.pager import pages_for_vectors
from .config import DEFAULT_CONFIG, MMDRConfig
from .geometry import projection_distances
from .mmdr import MMDR, CandidateEllipsoid
from .subspace import EllipticalSubspace, MMDRModel, MMDRStats, OutlierSet

__all__ = ["ScalableMMDR", "EllipsoidArrayEntry"]


@dataclass
class EllipsoidArrayEntry:
    """One small ellipsoid produced from a single data stream."""

    centroid: np.ndarray
    size: int
    s_dim: int


class ScalableMMDR:
    """Data-stream variant of :class:`~repro.core.mmdr.MMDR`.

    Parameters
    ----------
    config:
        Shared MMDR configuration; ``stream_fraction`` (ε) sets the stream
        size.
    min_stream_points:
        Lower bound on the stream size so tiny datasets still form sane
        streams (ε·N can be smaller than ``min_cluster_size``).
    """

    def __init__(
        self,
        config: MMDRConfig = DEFAULT_CONFIG,
        min_stream_points: int = 256,
    ) -> None:
        self.config = config
        self.min_stream_points = min_stream_points

    def fit(
        self,
        data: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        counters: Optional[CostCounters] = None,
        tracer: Optional[Tracer] = None,
    ) -> MMDRModel:
        """Fit on ``(n, d)`` data using bounded memory per step.

        ``tracer`` (optional) records one ``scalable.stream`` span per data
        chunk plus ``scalable.merge_array`` / ``scalable.route_points``
        phase spans; it never changes the fit.
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, d = data.shape
        if n == 0:
            raise ValueError("cannot fit Scalable MMDR on an empty dataset")
        rng = rng if rng is not None else np.random.default_rng()
        counters = counters if counters is not None else CostCounters()
        tracer = ensure_tracer(tracer)
        start = time.perf_counter()
        before = counters.snapshot()
        stats = MMDRStats()

        stream_size = max(
            self.min_stream_points,
            int(np.ceil(self.config.stream_fraction * n)),
        )
        inner = MMDR(self.config)

        # --- phase 1: per-stream Generate Ellipsoid -> Ellipsoid Array ---
        array: List[EllipsoidArrayEntry] = []
        for lo in range(0, n, stream_size):
            hi = min(lo + stream_size, n)
            stream = data[lo:hi]
            with tracer.span(
                "scalable.stream",
                counters=counters,
                stream=stats.streams_processed,
                points=hi - lo,
            ):
                counters.count_sequential_read(
                    pages_for_vectors(hi - lo, d)
                )
                candidates: List[CandidateEllipsoid] = []
                leftovers: List[np.ndarray] = []
                inner._generate_ellipsoid(
                    stream,
                    np.arange(hi - lo, dtype=np.int64),
                    min(self.config.initial_subspace_dim, d),
                    candidates,
                    leftovers,
                    rng,
                    counters,
                    stats,
                    tracer,
                )
            for candidate in candidates:
                array.append(
                    EllipsoidArrayEntry(
                        centroid=stream[candidate.member_ids].mean(axis=0),
                        size=candidate.member_ids.size,
                        s_dim=candidate.s_dim,
                    )
                )
            # Stream-local leftovers too small to shape: represent them by
            # their own centroid so their mass is not lost before the merge.
            for ids in leftovers:
                if ids.size:
                    array.append(
                        EllipsoidArrayEntry(
                            centroid=stream[ids].mean(axis=0),
                            size=ids.size,
                            s_dim=min(
                                self.config.initial_subspace_dim, d
                            ),
                        )
                    )
            stats.streams_processed += 1

        if not array:
            raise RuntimeError(
                "no ellipsoids were produced from any data stream"
            )

        # --- phase 2: merge small ellipsoids via GE on the array ---------
        centroids = np.vstack([entry.centroid for entry in array])
        with tracer.span(
            "scalable.merge_array", counters=counters, entries=len(array)
        ):
            merge_groups = self._merge_array(
                centroids, inner, rng, counters, stats, tracer
            )

        # --- phase 3: one sequential pass routes points to merged groups -
        with tracer.span(
            "scalable.route_points",
            counters=counters,
            groups=len(merge_groups),
        ):
            entry_to_group = np.zeros(len(array), dtype=np.int64)
            for group_idx, entry_ids in enumerate(merge_groups):
                entry_to_group[entry_ids] = group_idx
            counters.count_sequential_read(pages_for_vectors(n, d))
            nearest_entry = self._nearest_centroid(data, centroids, counters)
            point_group = entry_to_group[nearest_entry]

        # --- phase 4: shared finalization (cap, merge, optimize) ---------
        # Each merged group becomes a candidate ellipsoid; the shared
        # `finalize` then caps the count at MaxEC, merges compatible groups,
        # and runs Dimensionality Optimization exactly as in-memory MMDR.
        candidates: List[CandidateEllipsoid] = []
        outlier_pool: List[np.ndarray] = []
        for group_idx in range(len(merge_groups)):
            member_ids = np.flatnonzero(point_group == group_idx)
            if member_ids.size < self.config.min_cluster_size:
                if member_ids.size:
                    outlier_pool.append(member_ids)
                continue
            group_data = data[member_ids]
            pca = fit_pca(group_data)
            s_dim = min(
                max(
                    (array[e].s_dim for e in merge_groups[group_idx]),
                    default=1,
                ),
                d,
            )
            dists = projection_distances(group_data, pca, s_dim)
            candidates.append(
                CandidateEllipsoid(
                    member_ids=member_ids,
                    s_dim=s_dim,
                    pca=pca,
                    mpe_at_s_dim=dists.mpe,
                )
            )
        if not candidates and outlier_pool:
            # Degenerate case: everything landed in sub-minimum groups.
            # Treat the union as one candidate so the model is usable.
            member_ids = np.sort(np.concatenate(outlier_pool))
            outlier_pool = []
            group_data = data[member_ids]
            pca = fit_pca(group_data)
            s_dim = min(self.config.initial_subspace_dim, d)
            candidates.append(
                CandidateEllipsoid(
                    member_ids=member_ids,
                    s_dim=s_dim,
                    pca=pca,
                    mpe_at_s_dim=projection_distances(
                        group_data, pca, s_dim
                    ).mpe,
                )
            )
        # Raise the noise floor to the full-dataset scale before the
        # shared finalization (per-stream GE used the small default).
        inner._min_group = max(
            self.config.min_cluster_size,
            int(self.config.outlier_fraction * n),
        )
        return inner.finalize(
            data,
            candidates,
            outlier_pool,
            stats,
            counters,
            before,
            start,
            tracer,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _merge_array(
        self,
        centroids: np.ndarray,
        inner: MMDR,
        rng: np.random.Generator,
        counters: CostCounters,
        stats: MMDRStats,
        tracer: Tracer = NULL_TRACER,
    ) -> List[np.ndarray]:
        """Run Generate Ellipsoid over the Ellipsoid Array's centroids.

        The array is tiny (one entry per stream-level ellipsoid), so the
        per-group minimum size is relaxed to 1 entry for this pass.
        """
        merge_config = self.config.with_overrides(min_cluster_size=2)
        merger = MMDR(merge_config)
        candidates: List[CandidateEllipsoid] = []
        leftovers: List[np.ndarray] = []
        merger._generate_ellipsoid(
            centroids,
            np.arange(centroids.shape[0], dtype=np.int64),
            min(self.config.initial_subspace_dim, centroids.shape[1]),
            candidates,
            leftovers,
            rng,
            counters,
            stats,
            tracer,
        )
        groups = [c.member_ids for c in candidates]
        groups.extend(ids for ids in leftovers if ids.size)
        if not groups:
            groups = [np.arange(centroids.shape[0], dtype=np.int64)]
        return groups

    @staticmethod
    def _nearest_centroid(
        data: np.ndarray,
        centroids: np.ndarray,
        counters: CostCounters,
        batch: int = 8192,
    ) -> np.ndarray:
        """Index of each point's nearest array centroid, batched to keep the
        working set bounded (this is the 'one more scan' of phase 3)."""
        n = data.shape[0]
        out = np.empty(n, dtype=np.int64)
        c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
        for lo in range(0, n, batch):
            hi = min(lo + batch, n)
            block = data[lo:hi]
            dist = (
                np.einsum("ij,ij->i", block, block)[:, None]
                + c_sq
                - 2.0 * block @ centroids.T
            )
            out[lo:hi] = np.argmin(dist, axis=1)
            counters.count_distance(
                (hi - lo) * centroids.shape[0], dims=data.shape[1]
            )
        return out
